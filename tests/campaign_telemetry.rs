//! Telemetry contracts: the event stream, the Prometheus exposition and
//! the latency registry are **pure observers** of the campaign engine.
//!
//! The engine promises that turning `--events` and `--prom` on changes
//! nothing about the computation — the `CampaignResult` stays bit-identical
//! across every kernel, thread count and estimator. It further promises
//! that the `--events` JSONL stream is replayable provenance: every
//! `chunk_merged` line carries the chunk's Welford triple as IEEE-754 bit
//! patterns, and folding those triples in chunk order rebuilds the final
//! SSF estimate to the bit. Every line must validate against the checked-in
//! `schemas/events.schema.json`, carry a monotonic `seq`, and the stream
//! must stay well-formed even when the campaign is aborted mid-flight.

use std::path::PathBuf;
use std::sync::OnceLock;
use xlmc::estimator::{
    run_campaign_observed, run_campaign_with, CampaignKernel, CampaignOptions, EstimatorKind,
    StopReason,
};
use xlmc::flow::FaultRunner;
use xlmc::json::f64_from_bits_str;
use xlmc::sampling::{
    baseline_distribution, ExperimentConfig, ImportanceSampling, RandomSampling, SamplingStrategy,
};
use xlmc::stats::RunningStats;
use xlmc::telemetry::{
    validate_against_schema, CampaignObserver, JsonValue, ObserverAction, ProgressEvent,
};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_soc::workloads;

const SEED: u64 = 0x7E1E;

struct Fixture {
    model: SystemModel,
    write_eval: Evaluation,
    prechar: Precharacterization,
    cfg: ExperimentConfig,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let model = SystemModel::with_defaults().unwrap();
        let write_eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let cfg = ExperimentConfig {
            t_max: 16,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            write_eval,
            prechar,
            cfg,
        }
    })
}

fn runner(f: &Fixture) -> FaultRunner<'_> {
    FaultRunner {
        model: &f.model,
        eval: &f.write_eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    }
}

/// A scratch path under the system temp dir, unique to this process so
/// parallel `cargo test` invocations cannot collide.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xlmc-telemetry-{}-{name}", std::process::id()))
}

/// Clone `base` with fresh `--events` / `--prom` output paths tagged by
/// `tag`; returns the options plus both paths (pre-cleared).
fn with_telemetry(base: &CampaignOptions, tag: &str) -> (CampaignOptions, PathBuf, PathBuf) {
    let events = scratch(&format!("{tag}.events.jsonl"));
    let prom = scratch(&format!("{tag}.prom"));
    let _ = std::fs::remove_file(&events);
    let _ = std::fs::remove_file(&prom);
    let opts = CampaignOptions {
        events_path: Some(events.clone()),
        prom_path: Some(prom.clone()),
        ..base.clone()
    };
    (opts, events, prom)
}

/// Parse every non-empty line of an events file.
fn read_events(path: &PathBuf) -> Vec<JsonValue> {
    let src = std::fs::read_to_string(path).expect("read events file");
    src.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| {
            JsonValue::parse(l).unwrap_or_else(|e| panic!("line {} is not JSON: {e}", i + 1))
        })
        .collect()
}

fn events_schema() -> &'static JsonValue {
    static SCHEMA: OnceLock<JsonValue> = OnceLock::new();
    SCHEMA.get_or_init(|| {
        let path =
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../schemas/events.schema.json");
        JsonValue::parse(&std::fs::read_to_string(&path).expect("read events schema"))
            .expect("events schema parses")
    })
}

fn event_name(ev: &JsonValue) -> &str {
    ev.get("event")
        .and_then(JsonValue::as_str)
        .expect("event field")
}

/// Validate every line against the schema and check the stream-level
/// invariants: `seq` counts up from 0, `elapsed_s` never goes backwards,
/// the stream opens with `campaign_started` and closes with
/// `campaign_finished`.
fn check_stream(events: &[JsonValue], tag: &str) {
    assert!(events.len() >= 2, "{tag}: stream too short");
    let schema = events_schema();
    let mut last_elapsed = 0.0f64;
    for (i, ev) in events.iter().enumerate() {
        validate_against_schema(ev, schema)
            .unwrap_or_else(|e| panic!("{tag}: line {} fails schema: {e}", i + 1));
        assert_eq!(
            ev.get("seq").and_then(JsonValue::as_u64),
            Some(i as u64),
            "{tag}: seq not monotonic at line {}",
            i + 1
        );
        let elapsed = ev
            .get("elapsed_s")
            .and_then(JsonValue::as_f64)
            .expect("elapsed_s");
        assert!(
            elapsed >= last_elapsed,
            "{tag}: elapsed_s went backwards at line {}",
            i + 1
        );
        last_elapsed = elapsed;
    }
    assert_eq!(event_name(&events[0]), "campaign_started", "{tag}");
    assert_eq!(
        event_name(events.last().unwrap()),
        "campaign_finished",
        "{tag}"
    );
}

fn bits_field(ev: &JsonValue, key: &str) -> f64 {
    f64_from_bits_str(ev.get(key).unwrap_or_else(|| panic!("missing {key}")), key)
        .unwrap_or_else(|e| panic!("{key}: {e}"))
}

/// Fold the `chunk_merged` Welford triples in chunk order and return the
/// rebuilt point estimate — the same merge the engine performs, so the
/// result must match `CampaignResult::ssf` to the bit.
fn rebuild_ssf(events: &[JsonValue], estimator: EstimatorKind) -> f64 {
    let mut single = RunningStats::new();
    let mut level0 = RunningStats::new();
    let mut level1_diff = RunningStats::new();
    let mut expect_chunk = 0u64;
    for ev in events.iter().filter(|e| event_name(e) == "chunk_merged") {
        assert_eq!(
            ev.get("chunk").and_then(JsonValue::as_u64),
            Some(expect_chunk),
            "chunk_merged events out of order"
        );
        expect_chunk += 1;
        let count = ev.get("count").and_then(JsonValue::as_u64).expect("count");
        let stats = RunningStats::from_raw(
            count,
            bits_field(ev, "mean_bits"),
            bits_field(ev, "m2_bits"),
        );
        let level = ev.get("level").and_then(JsonValue::as_u64).expect("level");
        match estimator {
            EstimatorKind::Single => single.merge(&stats),
            EstimatorKind::Mlmc if level == 0 => level0.merge(&stats),
            EstimatorKind::Mlmc => level1_diff.merge(&stats),
        }
    }
    assert!(expect_chunk > 0, "no chunk_merged events");
    match estimator {
        EstimatorKind::Single => single.mean(),
        EstimatorKind::Mlmc => {
            assert!(level0.count() > 0, "no level-0 chunks in the stream");
            level0.mean() + level1_diff.mean()
        }
    }
}

/// Telemetry must not perturb the campaign: with `--events` and `--prom`
/// on, the whole `CampaignResult` — estimate, variance, counters,
/// attribution — is bit-identical to the bare run, across all three
/// kernels, one and four threads, and both estimators.
#[test]
fn telemetry_is_a_pure_observer_across_kernels_threads_estimators() {
    let f = fixture();
    let r = runner(f);
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    for kernel in [
        CampaignKernel::Scalar,
        CampaignKernel::Batched,
        CampaignKernel::Compiled,
    ] {
        for threads in [1usize, 4] {
            for estimator in [EstimatorKind::Single, EstimatorKind::Mlmc] {
                // MLMC needs its 4-chunk pilot plus planned chunks.
                let n = match estimator {
                    EstimatorKind::Single => 2_048,
                    EstimatorKind::Mlmc => 3_072,
                };
                let tag = format!("pure-{kernel:?}-t{threads}-{estimator:?}");
                let base = CampaignOptions {
                    threads,
                    estimator,
                    ..CampaignOptions::with_kernel(kernel)
                };
                let bare = run_campaign_with(&r, &strategy, n, SEED, &base);
                let (opts, events, prom) = with_telemetry(&base, &tag);
                let observed = run_campaign_with(&r, &strategy, n, SEED, &opts);
                assert_eq!(
                    observed, bare,
                    "{tag}: telemetry perturbed the campaign result"
                );
                assert!(events.exists(), "{tag}: events file missing");
                assert!(prom.exists(), "{tag}: prom file missing");
                check_stream(&read_events(&events), &tag);
                let _ = std::fs::remove_file(&events);
                let _ = std::fs::remove_file(&prom);
            }
        }
    }
}

/// The lifecycle stream of a checkpointed campaign: schema-valid lines,
/// a `campaign_started` header carrying the run parameters, one
/// `chunk_merged` per chunk, `checkpoint_written` at the cadence, and a
/// `campaign_finished` trailer whose `ssf_bits` is the exact result.
#[test]
fn events_stream_is_schema_valid_and_ordered() {
    let f = fixture();
    let r = runner(f);
    let strategy = ImportanceSampling::new(
        baseline_distribution(&f.model, &f.cfg),
        &f.model,
        &f.prechar,
        f.cfg.alpha,
        f.cfg.beta,
        f.cfg.radius_options.clone(),
    );
    let n = 2_560; // 5 chunks of 512
    let ck = scratch("stream.ckpt");
    let _ = std::fs::remove_file(&ck);
    let base = CampaignOptions {
        threads: 4,
        checkpoint_path: Some(ck.clone()),
        checkpoint_every_runs: 1_024,
        ..CampaignOptions::default()
    };
    let (opts, events_path, prom) = with_telemetry(&base, "stream");
    let result = run_campaign_with(&r, &strategy, n, SEED, &opts);
    assert_eq!(result.stop, StopReason::Completed);

    let events = read_events(&events_path);
    check_stream(&events, "stream");

    let started = &events[0];
    assert_eq!(started.get("seed").and_then(JsonValue::as_u64), Some(SEED));
    assert_eq!(
        started.get("requested_runs").and_then(JsonValue::as_u64),
        Some(n as u64)
    );
    assert_eq!(
        started.get("kernel").and_then(JsonValue::as_str),
        Some("compiled")
    );
    assert_eq!(
        started.get("estimator").and_then(JsonValue::as_str),
        Some("single")
    );
    assert_eq!(started.get("threads").and_then(JsonValue::as_u64), Some(4));
    assert_eq!(
        started.get("resumed_runs").and_then(JsonValue::as_u64),
        Some(0)
    );

    let merged: Vec<&JsonValue> = events
        .iter()
        .filter(|e| event_name(e) == "chunk_merged")
        .collect();
    assert_eq!(merged.len(), 5, "one chunk_merged per chunk");
    assert_eq!(
        merged
            .last()
            .unwrap()
            .get("runs_done")
            .and_then(JsonValue::as_u64),
        Some(n as u64)
    );
    assert!(
        events.iter().any(|e| event_name(e) == "checkpoint_written"),
        "no checkpoint_written event at the cadence"
    );

    let finished = events.last().unwrap();
    assert_eq!(
        finished.get("stop_reason").and_then(JsonValue::as_str),
        Some("completed")
    );
    assert_eq!(
        finished.get("n").and_then(JsonValue::as_u64),
        Some(n as u64)
    );
    assert_eq!(
        bits_field(finished, "ssf_bits").to_bits(),
        result.ssf.to_bits(),
        "campaign_finished ssf_bits is not the exact result"
    );

    let _ = std::fs::remove_file(&ck);
    let _ = std::fs::remove_file(&events_path);
    let _ = std::fs::remove_file(&prom);
}

/// Replaying the `chunk_merged` Welford triples in chunk order rebuilds
/// the final SSF **bit-for-bit** — the event stream is complete enough to
/// audit the estimate without rerunning the campaign. Checked under both
/// estimators at four worker threads (merge order, not arrival order,
/// defines the stream).
#[test]
fn final_ssf_rebuilds_from_chunk_merged_events_bit_for_bit() {
    let f = fixture();
    let r = runner(f);
    let strategy = ImportanceSampling::new(
        baseline_distribution(&f.model, &f.cfg),
        &f.model,
        &f.prechar,
        f.cfg.alpha,
        f.cfg.beta,
        f.cfg.radius_options.clone(),
    );
    for estimator in [EstimatorKind::Single, EstimatorKind::Mlmc] {
        let n = match estimator {
            EstimatorKind::Single => 2_560,
            EstimatorKind::Mlmc => 3_072,
        };
        let tag = format!("rebuild-{estimator:?}");
        let base = CampaignOptions {
            threads: 4,
            estimator,
            ..CampaignOptions::default()
        };
        let (opts, events_path, prom) = with_telemetry(&base, &tag);
        let result = run_campaign_with(&r, &strategy, n, SEED, &opts);
        assert_eq!(result.stop, StopReason::Completed, "{tag}");

        let events = read_events(&events_path);
        let rebuilt = rebuild_ssf(&events, estimator);
        assert_eq!(
            rebuilt.to_bits(),
            result.ssf.to_bits(),
            "{tag}: rebuilt SSF {rebuilt} != campaign SSF {} (bit-exact)",
            result.ssf
        );

        let _ = std::fs::remove_file(&events_path);
        let _ = std::fs::remove_file(&prom);
    }
}

/// The `--prom` exposition is well-formed Prometheus text: `xlmc_`-prefixed
/// families with TYPE comments, the campaign labels on every sample, and
/// the latency digests as summaries with quantile labels.
#[test]
fn prom_exposition_has_expected_families_and_labels() {
    let f = fixture();
    let r = runner(f);
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    let base = CampaignOptions {
        threads: 2,
        ..CampaignOptions::default()
    };
    let (opts, events_path, prom) = with_telemetry(&base, "prom");
    let result = run_campaign_with(&r, &strategy, 1_024, SEED, &opts);
    assert_eq!(result.stop, StopReason::Completed);

    let text = std::fs::read_to_string(&prom).expect("read prom file");
    assert!(text.contains("# TYPE xlmc_runs_total counter"), "{text}");
    assert!(text.contains("xlmc_runs_total{"), "{text}");
    assert!(text.contains("# TYPE xlmc_ssf gauge"), "{text}");
    assert!(
        text.contains("# TYPE xlmc_chunk_wall_seconds summary"),
        "{text}"
    );
    assert!(text.contains("quantile=\"0.99\""), "{text}");
    assert!(text.contains("kernel=\"compiled\""), "{text}");
    assert!(text.contains("estimator=\"single\""), "{text}");
    assert!(
        text.contains(&format!("strategy=\"{}\"", strategy.name())),
        "{text}"
    );
    // The final snapshot agrees with the result.
    let runs_line = text
        .lines()
        .find(|l| l.starts_with("xlmc_runs_total{"))
        .expect("runs_total sample");
    let value: f64 = runs_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(value as usize, result.n);

    let _ = std::fs::remove_file(&events_path);
    let _ = std::fs::remove_file(&prom);
}

/// Aborts the campaign at the first chunk boundary at or past `at_runs`.
struct AbortAt {
    at_runs: usize,
}

impl CampaignObserver for AbortAt {
    fn on_progress(&mut self, event: &ProgressEvent) -> ObserverAction {
        if event.runs_done >= self.at_runs {
            ObserverAction::Abort
        } else {
            ObserverAction::Continue
        }
    }
}

/// An aborted campaign still leaves a well-formed stream: every line
/// parses and validates, and the trailer records the `aborted` stop — the
/// crash-safety contract (each line flushed as written) observed through
/// the same path a monitoring tail would use.
#[test]
fn aborted_campaign_leaves_a_valid_events_stream() {
    let f = fixture();
    let r = runner(f);
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    let base = CampaignOptions {
        threads: 4,
        ..CampaignOptions::default()
    };
    let (opts, events_path, prom) = with_telemetry(&base, "abort");
    let result = run_campaign_observed(
        &r,
        &strategy,
        4_096,
        SEED,
        &opts,
        &mut AbortAt { at_runs: 1_024 },
    );
    assert_eq!(result.stop, StopReason::Aborted);
    assert!(result.n < 4_096);

    let events = read_events(&events_path);
    check_stream(&events, "abort");
    assert_eq!(
        events
            .last()
            .unwrap()
            .get("stop_reason")
            .and_then(JsonValue::as_str),
        Some("aborted")
    );

    let _ = std::fs::remove_file(&events_path);
    let _ = std::fs::remove_file(&prom);
}
