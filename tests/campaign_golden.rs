//! Statistical golden test: pinned-seed campaign results per strategy.
//!
//! The campaign engine promises bit-identical results for a fixed
//! `(seed, n, strategy)` regardless of thread count and kernel choice.
//! These tests pin the exact `(ssf, sample_variance)` pair of a small
//! campaign for each sampling strategy, so any unintended change to the
//! sampling streams, the strike kernels, the cross-level conclusion or the
//! Chan merge shows up as a bit-level diff — not as a silent statistical
//! drift that a tolerance-based assertion would absorb.
//!
//! The goldens were recorded from this tree at the pinned seed. A change
//! that *intends* to alter the streams (new RNG layout, different chunk
//! partition, resampled distributions) must re-record them; the assertion
//! message prints the observed bits for exactly that purpose.

use std::sync::OnceLock;
use xlmc::estimator::{run_campaign_with, CampaignKernel, CampaignOptions};
use xlmc::flow::FaultRunner;
use xlmc::sampling::{
    baseline_distribution, ConeSampling, ExperimentConfig, ImportanceSampling, RandomSampling,
    SamplingStrategy,
};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_soc::workloads;

const RUNS: usize = 4_000;
const SEED: u64 = 0x90_1D;

struct Fixture {
    model: SystemModel,
    write_eval: Evaluation,
    prechar: Precharacterization,
    cfg: ExperimentConfig,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let model = SystemModel::with_defaults().unwrap();
        let write_eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let cfg = ExperimentConfig {
            t_max: 16,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            write_eval,
            prechar,
            cfg,
        }
    })
}

/// Run the pinned campaign and compare against the recorded golden.
///
/// Runs all three kernels: the goldens must hold for the default compiled
/// kernel, the batched kernel *and* the scalar reference, which keeps the
/// recording itself honest (a golden that only one kernel reproduces means
/// the equivalence contract broke, not the statistics).
fn check(strategy: &dyn SamplingStrategy, golden_ssf: u64, golden_var: u64) {
    let f = fixture();
    let runner = FaultRunner {
        model: &f.model,
        eval: &f.write_eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    };
    for kernel in [
        CampaignKernel::Compiled,
        CampaignKernel::Batched,
        CampaignKernel::Scalar,
    ] {
        for fast_forward in [true, false] {
            let opts = CampaignOptions {
                fast_forward,
                ..CampaignOptions::with_kernel(kernel)
            };
            let r = run_campaign_with(&runner, strategy, RUNS, SEED, &opts);
            assert!(r.ssf.is_finite() && r.sample_variance.is_finite());
            assert_eq!(
                (r.ssf.to_bits(), r.sample_variance.to_bits()),
                (golden_ssf, golden_var),
                "{} ({kernel:?}, fast_forward {fast_forward}): got ssf {} ({:#018x}), \
                 variance {:.6e} ({:#018x}) \
                 — if the sampling streams changed intentionally, re-record the goldens",
                strategy.name(),
                r.ssf,
                r.ssf.to_bits(),
                r.sample_variance,
                r.sample_variance.to_bits(),
            );
        }
    }
    // Tracing must be a pure observer: the same campaign run with span
    // recording and provenance capture enabled reproduces the golden bits.
    let dir = std::env::temp_dir().join(format!(
        "xlmc-golden-trace-{}-{}",
        std::process::id(),
        strategy.name()
    ));
    let opts = CampaignOptions {
        trace_path: Some(dir.join("trace.json")),
        ..CampaignOptions::with_kernel(CampaignKernel::Compiled)
    };
    let r = run_campaign_with(&runner, strategy, RUNS, SEED, &opts);
    assert_eq!(
        (r.ssf.to_bits(), r.sample_variance.to_bits()),
        (golden_ssf, golden_var),
        "{} (traced): tracing changed the campaign result",
        strategy.name(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uniform_random_campaign_matches_golden() {
    let f = fixture();
    // ssf 0.017999999999999995, variance 1.768042e-2
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    check(&strategy, 0x3f926e978d4fdf3a, 0x3f921ad0e885c382);
}

#[test]
fn correlation_cone_campaign_matches_golden() {
    let f = fixture();
    let strategy = ConeSampling::new(
        baseline_distribution(&f.model, &f.cfg),
        &f.prechar,
        f.cfg.radius_options.clone(),
    );
    // ssf 0.018433593750000008, variance 1.089590e-2
    check(&strategy, 0x3f92e04189374bc9, 0x3f865096a541acff);
}

/// MLMC golden: the multilevel estimator's per-level executors are scalar,
/// so the same pinned bits must hold under every kernel, fast-forward
/// setting *and* thread count — and the folded correction term is pinned
/// alongside the point estimate, so a drift hidden inside the telescoped
/// sum (level-0 bias moving one way, correction the other) still trips.
#[test]
fn mlmc_importance_campaign_matches_golden() {
    use xlmc::estimator::EstimatorKind;
    let f = fixture();
    let strategy = ImportanceSampling::new(
        baseline_distribution(&f.model, &f.cfg),
        &f.model,
        &f.prechar,
        f.cfg.alpha,
        f.cfg.beta,
        f.cfg.radius_options.clone(),
    );
    let runner = FaultRunner {
        model: &f.model,
        eval: &f.write_eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    };
    // ssf 0.018154774746748918, variance 7.159919e-3, correction mean 0.0
    // (the static SetToSeuMap is exact on this fixture, so the pinned
    // correction is the zero bit pattern — a nonzero value here is itself
    // a signal that the map lost fidelity).
    const GOLDEN_SSF: u64 = 0x3f92972a4f36d16e;
    const GOLDEN_VAR: u64 = 0x3f7d53b8375bf36d;
    const GOLDEN_MEAN1_DIFF: u64 = 0x0000000000000000;
    for kernel in [
        CampaignKernel::Compiled,
        CampaignKernel::Batched,
        CampaignKernel::Scalar,
    ] {
        for fast_forward in [true, false] {
            for threads in [1, 4] {
                let opts = CampaignOptions {
                    fast_forward,
                    threads,
                    estimator: EstimatorKind::Mlmc,
                    ..CampaignOptions::with_kernel(kernel)
                };
                let r = run_campaign_with(&runner, &strategy, RUNS, SEED, &opts);
                let m = r.mlmc.as_ref().expect("mlmc summary present");
                assert!(r.ssf.is_finite() && r.sample_variance.is_finite());
                assert_eq!(
                    (
                        r.ssf.to_bits(),
                        r.sample_variance.to_bits(),
                        m.mean1_diff.to_bits(),
                    ),
                    (GOLDEN_SSF, GOLDEN_VAR, GOLDEN_MEAN1_DIFF),
                    "mlmc ({kernel:?}, fast_forward {fast_forward}, threads {threads}): \
                     got ssf {} ({:#018x}), variance {:.6e} ({:#018x}), \
                     mean1_diff {:.6e} ({:#018x}) \
                     — if the sampling streams changed intentionally, re-record the goldens",
                    r.ssf,
                    r.ssf.to_bits(),
                    r.sample_variance,
                    r.sample_variance.to_bits(),
                    m.mean1_diff,
                    m.mean1_diff.to_bits(),
                );
            }
        }
    }
}

#[test]
fn full_importance_campaign_matches_golden() {
    let f = fixture();
    let strategy = ImportanceSampling::new(
        baseline_distribution(&f.model, &f.cfg),
        &f.model,
        &f.prechar,
        f.cfg.alpha,
        f.cfg.beta,
        f.cfg.radius_options.clone(),
    );
    // ssf 0.01776518304420538, variance 5.365679e-3
    check(&strategy, 0x3f92310940bab100, 0x3f75fa526b7cde96);
}

/// The double-glitch campaign keeps the engine's determinism contract:
/// the secondary strike's entropy word is split off each run's own stream,
/// so the full `(ssf, variance, successes)` triple is bit-identical across
/// all three kernels and both thread counts. The first configuration acts
/// as the reference — a kernel- or thread-dependent divergence in either
/// strike draw shows up as a bit diff here.
#[test]
fn double_glitch_campaign_is_bit_identical_across_kernels_and_threads() {
    let f = fixture();
    let fd = baseline_distribution(&f.model, &f.cfg);
    let glitch = xlmc_fault::DoubleGlitch::new(fd.spatial.clone(), fd.radius.clone());
    let strategy = ImportanceSampling::new(
        fd,
        &f.model,
        &f.prechar,
        f.cfg.alpha,
        f.cfg.beta,
        f.cfg.radius_options.clone(),
    );
    let runner = FaultRunner {
        model: &f.model,
        eval: &f.write_eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: Some(&glitch),
    };
    let mut reference: Option<(u64, u64, usize)> = None;
    for kernel in [
        CampaignKernel::Compiled,
        CampaignKernel::Batched,
        CampaignKernel::Scalar,
    ] {
        for threads in [1usize, 4] {
            let opts = CampaignOptions {
                threads,
                ..CampaignOptions::with_kernel(kernel)
            };
            let r = run_campaign_with(&runner, &strategy, RUNS, SEED, &opts);
            assert!(r.ssf.is_finite() && r.sample_variance.is_finite());
            let triple = (r.ssf.to_bits(), r.sample_variance.to_bits(), r.successes);
            match reference {
                None => reference = Some(triple),
                Some(want) => assert_eq!(
                    triple, want,
                    "double glitch ({kernel:?}, threads {threads}) diverged from the \
                     compiled single-thread reference"
                ),
            }
        }
    }
    // The mode must actually engage: at this pinned seed the widened
    // error sets change the estimate relative to the single-spot campaign.
    let single = FaultRunner {
        multi_fault: None,
        ..runner
    };
    let base = run_campaign_with(&single, &strategy, RUNS, SEED, &CampaignOptions::default());
    let (dg_ssf, _, _) = reference.unwrap();
    assert_ne!(
        dg_ssf,
        base.ssf.to_bits(),
        "double glitch left the estimate untouched — the mode never engaged"
    );
}
