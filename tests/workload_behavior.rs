//! Behavioral invariants of the golden runs of every shipped workload.

use xlmc_soc::golden::GoldenRun;
use xlmc_soc::workloads::{self, ATTACK_VALUE, LEAK_ADDR, SECRET_ADDR, SECRET_VALUE};
use xlmc_soc::Master;

fn record(w: &workloads::Workload) -> GoldenRun {
    GoldenRun::record(&w.program, 20_000, 32)
}

#[test]
fn all_workloads_terminate() {
    for w in [
        workloads::illegal_write(),
        workloads::illegal_read(),
        workloads::dma_exfiltration(),
        workloads::synthetic_precharacterization(),
    ] {
        let run = record(&w);
        assert!(run.final_soc.halted(), "{} did not halt", w.name);
        assert!(run.cycles > 100, "{} too short: {}", w.name, run.cycles);
        assert!(run.cycles < 10_000, "{} too long: {}", w.name, run.cycles);
    }
}

#[test]
fn golden_runs_are_deterministic() {
    for w in [
        workloads::illegal_write(),
        workloads::illegal_read(),
        workloads::dma_exfiltration(),
    ] {
        let a = record(&w);
        let b = record(&w);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.violation_cycles, b.violation_cycles);
        assert_eq!(a.final_soc, b.final_soc);
    }
}

#[test]
fn every_checkpoint_replays_to_the_same_final_state() {
    let w = workloads::illegal_write();
    let run = record(&w);
    for ckpt in &run.checkpoints {
        let mut soc = ckpt.clone();
        soc.run_until_halt(run.cycles + 100);
        assert_eq!(
            soc, run.final_soc,
            "checkpoint at cycle {} diverged",
            ckpt.cycle
        );
    }
}

#[test]
fn write_benchmark_security_invariants() {
    let w = workloads::illegal_write();
    let run = record(&w);
    let soc = &run.final_soc;
    // The protected word still holds the planted secret, not the attack
    // marker; the process was isolated; the sticky status points at the
    // offending access.
    assert_eq!(soc.mem_word(SECRET_ADDR), SECRET_VALUE);
    assert_ne!(soc.mem_word(SECRET_ADDR), ATTACK_VALUE);
    assert_eq!(soc.core.isolated, 1);
    assert!(soc.mpu.sticky_violation);
    assert_eq!(soc.mpu.sticky_addr, SECRET_ADDR);
    // Exactly one violating access: the attack itself.
    let blocked: Vec<_> = run.access_trace.iter().filter(|a| !a.allowed).collect();
    assert_eq!(blocked.len(), 1);
    assert_eq!(blocked[0].req.addr, SECRET_ADDR);
    assert_eq!(blocked[0].master, Master::Core);
}

#[test]
fn read_benchmark_security_invariants() {
    let w = workloads::illegal_read();
    let run = record(&w);
    let soc = &run.final_soc;
    assert_ne!(
        soc.mem_word(LEAK_ADDR),
        SECRET_VALUE,
        "secret must not leak"
    );
    assert_eq!(soc.core.isolated, 1);
    let blocked: Vec<_> = run.access_trace.iter().filter(|a| !a.allowed).collect();
    assert_eq!(blocked.len(), 1);
    assert_eq!(blocked[0].req.addr, SECRET_ADDR);
}

#[test]
fn synthetic_benchmark_exercises_everything() {
    let w = workloads::synthetic_precharacterization();
    let run = record(&w);
    // Core and DMA traffic, allowed and blocked accesses, reconfiguration.
    assert!(run
        .access_trace
        .iter()
        .any(|a| a.master == Master::Core && a.allowed));
    assert!(run
        .access_trace
        .iter()
        .any(|a| a.master == Master::Core && !a.allowed));
    assert!(run
        .access_trace
        .iter()
        .any(|a| a.master == Master::Dma && !a.allowed));
    let cfg_writes = run
        .stimulus
        .iter()
        .filter(|s| s.cfg_write.is_some())
        .count();
    assert!(
        cfg_writes >= 10,
        "setup plus two reconfiguration phases expected, saw {cfg_writes}"
    );
    // Violations occur across a wide portion of the run (good signature
    // coverage for the pre-characterization).
    let first = *run.violation_cycles.first().unwrap();
    let last = *run.violation_cycles.last().unwrap();
    assert!(last - first > run.cycles / 3);
}

#[test]
fn dma_benchmark_evaluates_end_to_end() {
    // The peripheral-path benchmark drops straight into the full pipeline:
    // the flow prices an enable-bit SEU against it like any other attack.
    use rand::SeedableRng;
    use xlmc::flow::FaultRunner;
    use xlmc::{Evaluation, Precharacterization, SystemModel};
    use xlmc_fault::AttackSample;
    use xlmc_soc::MpuBit;

    let model = SystemModel::with_defaults().unwrap();
    let eval = Evaluation::new(workloads::dma_exfiltration()).unwrap();
    let prechar = Precharacterization::run(&model, 8, 0.0);
    let runner = FaultRunner {
        model: &model,
        eval: &eval,
        prechar: &prechar,
        hardening: None,
        multi_fault: None,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let out = runner.run(
        &AttackSample {
            t: 6,
            center: model.mpu.dff(MpuBit::Enable),
            radius: 0.0,
            phase: 0,
        },
        &mut rng,
    );
    assert!(out.success, "enable SEU defeats the peripheral check too");
}

#[test]
fn target_cycle_is_the_single_blocked_access_resolution() {
    use xlmc::Evaluation;
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();
    let blocked: Vec<_> = eval
        .golden
        .access_trace
        .iter()
        .filter(|a| !a.allowed)
        .collect();
    assert_eq!(blocked.len(), 1);
    assert_eq!(blocked[0].cycle, eval.target_cycle);
}
