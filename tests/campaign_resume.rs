//! Crash-safe checkpoint/resume and adaptive-stopping contracts.
//!
//! The campaign engine promises that interrupting a checkpointed campaign
//! and resuming it from disk yields the **bit-identical** `CampaignResult`
//! of an uninterrupted run — same estimate, variance, trace, class counts
//! and attribution — under both kernels and any thread count. It likewise
//! promises that `--target-eps` early stopping picks the same chunk
//! boundary regardless of parallelism, because stopping is decided while
//! folding chunks in order.
//!
//! These tests interrupt a campaign through the observer hook (the same
//! path a SIGKILL exercises: the last durable state is the checkpoint
//! file), resume it, and compare whole results with `assert_eq!` — every
//! `f64` must match to the bit. The metrics files produced along the way
//! are validated against the checked-in `schemas/metrics.schema.json`.

use std::path::PathBuf;
use std::sync::OnceLock;
use xlmc::estimator::{
    run_campaign_observed, run_campaign_with, CampaignKernel, CampaignOptions, CampaignResult,
    StopReason, EARLY_STOP_MIN_RUNS,
};
use xlmc::flow::FaultRunner;
use xlmc::sampling::{
    baseline_distribution, ExperimentConfig, ImportanceSampling, RandomSampling, SamplingStrategy,
};
use xlmc::telemetry::{
    validate_against_schema, CampaignObserver, JsonValue, NullObserver, ObserverAction,
    ProgressEvent,
};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_soc::workloads;

const SEED: u64 = 0x5E5A;

struct Fixture {
    model: SystemModel,
    write_eval: Evaluation,
    prechar: Precharacterization,
    cfg: ExperimentConfig,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let model = SystemModel::with_defaults().unwrap();
        let write_eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let cfg = ExperimentConfig {
            t_max: 16,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            write_eval,
            prechar,
            cfg,
        }
    })
}

fn runner(f: &Fixture) -> FaultRunner<'_> {
    FaultRunner {
        model: &f.model,
        eval: &f.write_eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    }
}

/// A scratch path under the system temp dir, unique to this process so
/// parallel `cargo test` invocations cannot collide.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xlmc-{}-{name}", std::process::id()))
}

/// Aborts the campaign at the first chunk boundary at or past `at_runs`
/// — the in-process stand-in for killing the process mid-campaign.
struct AbortAt {
    at_runs: usize,
}

impl CampaignObserver for AbortAt {
    fn on_progress(&mut self, event: &ProgressEvent) -> ObserverAction {
        if event.runs_done >= self.at_runs {
            ObserverAction::Abort
        } else {
            ObserverAction::Continue
        }
    }
}

/// Parse `path` and validate it against the checked-in metrics schema.
fn check_metrics_schema(path: &PathBuf) -> JsonValue {
    let schema_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../schemas/metrics.schema.json");
    let schema = JsonValue::parse(&std::fs::read_to_string(&schema_path).expect("read schema"))
        .expect("schema parses");
    let doc = JsonValue::parse(&std::fs::read_to_string(path).expect("read metrics"))
        .expect("metrics parses");
    validate_against_schema(&doc, &schema).expect("metrics matches schema");
    doc
}

/// Parse the checkpoint file and validate it against the checked-in
/// checkpoint schema.
fn check_checkpoint_schema(path: &PathBuf) -> JsonValue {
    let schema_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../schemas/checkpoint.schema.json");
    let schema = JsonValue::parse(&std::fs::read_to_string(&schema_path).expect("read schema"))
        .expect("schema parses");
    let doc = JsonValue::parse(&std::fs::read_to_string(path).expect("read checkpoint"))
        .expect("checkpoint parses");
    validate_against_schema(&doc, &schema).expect("checkpoint matches schema");
    doc
}

/// Interrupt a checkpointed campaign partway, resume it from the file,
/// and demand the bit-identical result of an uninterrupted run.
fn check_resume_equivalence(
    strategy: &dyn SamplingStrategy,
    kernel: CampaignKernel,
    threads: usize,
) {
    let f = fixture();
    let r = runner(f);
    let n = 2_560; // 5 chunks of 512
    let tag = format!("{}-{kernel:?}-t{threads}", strategy.name());
    let ck = scratch(&format!("resume-{tag}.ckpt"));
    let metrics = scratch(&format!("resume-{tag}.metrics.json"));
    let _ = std::fs::remove_file(&ck);
    let _ = std::fs::remove_file(&metrics);

    let base_opts = CampaignOptions {
        threads,
        ..CampaignOptions::with_kernel(kernel)
    };
    let reference = run_campaign_with(&r, strategy, n, SEED, &base_opts);
    assert_eq!(reference.stop, StopReason::Completed);
    assert_eq!(reference.n, n);

    // First leg: checkpoint every 1024 runs, abort at the 1536-run
    // boundary. The last durable checkpoint is at 1024 runs.
    let ck_opts = CampaignOptions {
        checkpoint_path: Some(ck.clone()),
        checkpoint_every_runs: 1_024,
        metrics_path: Some(metrics.clone()),
        ..base_opts.clone()
    };
    let partial = run_campaign_observed(
        &r,
        strategy,
        n,
        SEED,
        &ck_opts,
        &mut AbortAt { at_runs: 1_536 },
    );
    assert_eq!(partial.stop, StopReason::Aborted, "{tag}");
    assert!(
        partial.n < n,
        "{tag}: abort should leave a partial campaign"
    );
    assert!(
        ck.exists(),
        "{tag}: checkpoint file should exist after abort"
    );
    check_checkpoint_schema(&ck);

    // Second leg: same options, no abort — resumes from the file and must
    // land exactly where the uninterrupted run did.
    let resumed = run_campaign_observed(&r, strategy, n, SEED, &ck_opts, &mut NullObserver);
    assert_eq!(
        resumed, reference,
        "{tag}: resumed result differs from the uninterrupted run"
    );

    // The metrics file from the resumed leg matches the schema and agrees
    // with the result.
    let doc = check_metrics_schema(&metrics);
    assert_eq!(
        doc.get("stop_reason").and_then(JsonValue::as_str),
        Some("completed")
    );
    assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(n as u64));
    assert_eq!(
        doc.get("successes").and_then(JsonValue::as_u64),
        Some(reference.successes as u64)
    );

    let _ = std::fs::remove_file(&ck);
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn resume_is_bit_identical_scalar_kernel() {
    let f = fixture();
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    for threads in [1, 4] {
        check_resume_equivalence(&strategy, CampaignKernel::Scalar, threads);
    }
}

#[test]
fn resume_is_bit_identical_batched_kernel() {
    let f = fixture();
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    for threads in [1, 4] {
        check_resume_equivalence(&strategy, CampaignKernel::Batched, threads);
    }
}

#[test]
fn resume_is_bit_identical_compiled_kernel() {
    let f = fixture();
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    for threads in [1, 4] {
        check_resume_equivalence(&strategy, CampaignKernel::Compiled, threads);
    }
}

#[test]
fn resume_is_bit_identical_under_importance_sampling() {
    // Importance sampling exercises the weighted path: non-unit weights,
    // ESS accumulation and per-register attribution all round-trip
    // through the checkpoint.
    let f = fixture();
    let strategy = ImportanceSampling::new(
        baseline_distribution(&f.model, &f.cfg),
        &f.model,
        &f.prechar,
        f.cfg.alpha,
        f.cfg.beta,
        f.cfg.radius_options.clone(),
    );
    check_resume_equivalence(&strategy, CampaignKernel::Compiled, 4);
    check_resume_equivalence(&strategy, CampaignKernel::Batched, 4);
    check_resume_equivalence(&strategy, CampaignKernel::Scalar, 1);
}

/// MLMC mixed-level resume: interrupt a multilevel campaign once with the
/// last durable checkpoint *inside* the pilot (no frozen plan on disk) and
/// once *past* it (the file carries the frozen allocation plus all four
/// pilot chunks), at one and four worker threads — and demand the
/// bit-identical result of the uninterrupted run. The whole-struct
/// `assert_eq!` covers the `MlmcSummary`: per-level Welford states, the
/// plan ratio and the chunk-level tags all round-trip through the
/// `xlmc-checkpoint-v3` file.
#[test]
fn mlmc_resume_is_bit_identical_across_levels() {
    use xlmc::estimator::EstimatorKind;
    let f = fixture();
    let r = runner(f);
    let strategy = ImportanceSampling::new(
        baseline_distribution(&f.model, &f.cfg),
        &f.model,
        &f.prechar,
        f.cfg.alpha,
        f.cfg.beta,
        f.cfg.radius_options.clone(),
    );
    let n = 3_072; // 6 chunks: the 4-chunk pilot plus 2 planned chunks
    for threads in [1usize, 4] {
        for abort_at in [1_536usize, 2_560] {
            let tag = format!("mlmc-t{threads}-abort{abort_at}");
            let ck = scratch(&format!("resume-{tag}.ckpt"));
            let metrics = scratch(&format!("resume-{tag}.metrics.json"));
            let _ = std::fs::remove_file(&ck);
            let _ = std::fs::remove_file(&metrics);

            let base_opts = CampaignOptions {
                estimator: EstimatorKind::Mlmc,
                threads,
                ..CampaignOptions::default()
            };
            let reference = run_campaign_with(&r, &strategy, n, SEED, &base_opts);
            assert_eq!(reference.stop, StopReason::Completed);
            let m = reference.mlmc.as_ref().expect("mlmc summary present");
            assert_eq!(&m.chunk_levels[..4], &[1, 0, 1, 0], "{tag}: pilot order");
            assert!(m.plan_ratio.is_some(), "{tag}: plan frozen");

            // Checkpoint every 1024 runs; aborting at 1536 leaves the
            // 1024-run (mid-pilot) snapshot on disk, aborting at 2560
            // leaves the 2048-run (post-pilot, plan frozen) one.
            let ck_opts = CampaignOptions {
                checkpoint_path: Some(ck.clone()),
                checkpoint_every_runs: 1_024,
                metrics_path: Some(metrics.clone()),
                ..base_opts.clone()
            };
            let partial = run_campaign_observed(
                &r,
                &strategy,
                n,
                SEED,
                &ck_opts,
                &mut AbortAt { at_runs: abort_at },
            );
            assert_eq!(partial.stop, StopReason::Aborted, "{tag}");
            assert!(ck.exists(), "{tag}: checkpoint file missing after abort");
            let ck_doc = check_checkpoint_schema(&ck);
            assert_eq!(
                ck_doc.get("estimator").and_then(JsonValue::as_str),
                Some("mlmc"),
                "{tag}"
            );
            let plan_bits = ck_doc
                .get("mlmc")
                .and_then(|m| m.get("plan_ratio_bits"))
                .expect("mlmc state in checkpoint");
            if abort_at <= 1_536 {
                assert_eq!(plan_bits, &JsonValue::Null, "{tag}: plan not yet frozen");
            } else {
                assert!(
                    plan_bits.as_str().is_some(),
                    "{tag}: frozen plan serialized as bits"
                );
            }

            let resumed =
                run_campaign_observed(&r, &strategy, n, SEED, &ck_opts, &mut NullObserver);
            assert_eq!(
                resumed, reference,
                "{tag}: resumed result differs from the uninterrupted run"
            );

            let doc = check_metrics_schema(&metrics);
            assert_eq!(
                doc.get("estimator").and_then(JsonValue::as_str),
                Some("mlmc")
            );
            let mj = doc.get("mlmc").expect("mlmc object in metrics");
            let n0 = mj.get("n0").and_then(JsonValue::as_u64).unwrap();
            let n1 = mj.get("n1").and_then(JsonValue::as_u64).unwrap();
            assert_eq!((n0 + n1) as usize, n, "{tag}: every run accounted");

            let _ = std::fs::remove_file(&ck);
            let _ = std::fs::remove_file(&metrics);
        }
    }
}

#[test]
fn target_eps_stop_is_deterministic_across_threads_and_kernels() {
    let f = fixture();
    let r = runner(f);
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    let n = 4_096;
    let eps = 0.05;

    let mut results: Vec<(String, CampaignResult)> = Vec::new();
    for kernel in [
        CampaignKernel::Scalar,
        CampaignKernel::Batched,
        CampaignKernel::Compiled,
    ] {
        for threads in [1, 4] {
            let metrics = scratch(&format!("earlystop-{kernel:?}-t{threads}.json"));
            let _ = std::fs::remove_file(&metrics);
            let opts = CampaignOptions {
                threads,
                target_eps: Some(eps),
                target_confidence: 0.95,
                metrics_path: Some(metrics.clone()),
                ..CampaignOptions::with_kernel(kernel)
            };
            let res = run_campaign_with(&r, &strategy, n, SEED, &opts);
            assert_eq!(res.stop, StopReason::TargetEps, "{kernel:?} t{threads}");
            assert!(res.n < n, "{kernel:?} t{threads}: should stop early");
            assert!(res.n >= EARLY_STOP_MIN_RUNS);
            assert!(
                res.lln_bound(eps) <= 1.0 - 0.95 + 1e-12,
                "{kernel:?} t{threads}: bound {} not met",
                res.lln_bound(eps)
            );

            let doc = check_metrics_schema(&metrics);
            assert_eq!(
                doc.get("stop_reason").and_then(JsonValue::as_str),
                Some("target_eps")
            );
            assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(res.n as u64));
            let _ = std::fs::remove_file(&metrics);

            results.push((format!("{kernel:?} t{threads}"), res));
        }
    }
    let (ref first_tag, ref first) = results[0];
    for (tag, res) in &results[1..] {
        // Kernel-shape counters (lane occupancy, batch-wide worklist
        // visits) legitimately differ between kernels; everything else —
        // including the kernel-invariant hot-path counters — must match.
        let mut res = res.clone();
        res.kernel_counters = first.kernel_counters;
        assert_eq!(
            &res, first,
            "early stop diverged between {first_tag} and {tag}"
        );
    }
}
