//! RTL fast-forward soundness: the checkpoint cache, the golden-
//! reconvergence early exit and the shared conclusion memo are pure
//! accelerations — for any strike, on any workload, the concluded verdict
//! must be bit-identical to the plain run-to-halt reference.
//!
//! Three layers of evidence:
//! 1. a property test drawing randomized attack samples across all three
//!    workloads and comparing a fast-forwarding scratch against a disabled
//!    one fed the identical RNG stream;
//! 2. a direct check of non-analytic verdicts against an independent
//!    run-to-halt RTL reference (the same oracle `analytic_vs_rtl` uses);
//! 3. a campaign-level equality of full `CampaignResult`s with fast-forward
//!    on and off, for both kernels.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use xlmc::estimator::{run_campaign_with, CampaignKernel, CampaignOptions};
use xlmc::flow::{FaultRunner, FlowScratch, StrikeClass};
use xlmc::sampling::{baseline_distribution, ExperimentConfig, RandomSampling};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_soc::{workloads, MpuBit, Soc};

/// One expensive fixture for every test: the system model, the golden runs
/// of all three attack workloads and the shared pre-characterization.
struct Fixture {
    model: SystemModel,
    evals: Vec<Evaluation>,
    prechar: Precharacterization,
    cfg: ExperimentConfig,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let model = SystemModel::with_defaults().unwrap();
        let evals = vec![
            Evaluation::new(workloads::illegal_write()).unwrap(),
            Evaluation::new(workloads::illegal_read()).unwrap(),
            Evaluation::new(workloads::dma_exfiltration()).unwrap(),
        ];
        let cfg = ExperimentConfig {
            t_max: 16,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            evals,
            prechar,
            cfg,
        }
    })
}

/// The independent oracle: restore the nearest golden checkpoint, step to
/// the injection cycle, apply the error set and run to halt — no caches, no
/// early exit, no memo.
fn run_to_halt_reference(eval: &Evaluation, bits: &[MpuBit], te: u64) -> bool {
    let mut soc: Soc = eval.golden.nearest_checkpoint(te).clone();
    while soc.cycle < te {
        soc.step();
    }
    soc.step();
    for &b in bits {
        soc.mpu.toggle_bit(b);
    }
    soc.run_until_halt(eval.max_cycles);
    eval.workload.goal.succeeded(&soc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For randomized strikes across all workloads, a fast-forwarding
    /// scratch and a disabled one fed the identical RNG stream agree on
    /// every observable field of the outcome, and every non-analytic
    /// verdict equals the independent run-to-halt reference.
    #[test]
    fn early_exit_verdicts_equal_run_to_halt_verdicts(
        workload_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let eval = &f.evals[workload_idx];
        let runner = FaultRunner {
            model: &f.model,
            eval,
            prechar: &f.prechar,
            hardening: None,
            multi_fault: None,
        };
        let fd = baseline_distribution(&f.model, &f.cfg);
        let mut ff_on = FlowScratch::default();
        let mut ff_off = FlowScratch::default();
        ff_off.set_fast_forward(false);

        let mut sampler = StdRng::seed_from_u64(seed);
        for i in 0..48u64 {
            let sample = fd.sample(&mut sampler);
            let mut rng_on = StdRng::seed_from_u64(seed ^ i.wrapping_mul(0x9e37_79b9));
            let mut rng_off = rng_on.clone();

            let on = runner.run_with(&sample, &mut rng_on, &mut ff_on).to_outcome();
            let off = runner.run_with(&sample, &mut rng_off, &mut ff_off).to_outcome();

            prop_assert_eq!(on.success, off.success, "sample {:?}", sample);
            prop_assert_eq!(on.class, off.class, "sample {:?}", sample);
            prop_assert_eq!(on.analytic, off.analytic, "sample {:?}", sample);
            prop_assert_eq!(&on.faulty_bits, &off.faulty_bits, "sample {:?}", sample);
            prop_assert_eq!(on.injection_cycle, off.injection_cycle, "sample {:?}", sample);

            // Non-analytic, non-masked conclusions came from an RTL resume:
            // both must equal the oracle.
            if !on.analytic && on.class != StrikeClass::Masked {
                let te = on.injection_cycle.expect("resumed runs have a cycle");
                let oracle = run_to_halt_reference(eval, &on.faulty_bits, te);
                prop_assert_eq!(
                    on.success, oracle,
                    "fast-forward diverged from run-to-halt at te {}", te
                );
            }
        }

        let stats = ff_on.fast_forward_stats();
        prop_assert!(stats.enabled);
        let off_stats = ff_off.fast_forward_stats();
        prop_assert!(!off_stats.enabled);
        prop_assert_eq!(off_stats.checkpoint_cache_hits, 0);
        prop_assert_eq!(off_stats.early_exits, 0);
    }
}

/// Driving one workload hard enough shows the accelerator actually engages:
/// resumes happen, the exact-cycle snapshot cache gets hits, and disabling
/// it never records any.
#[test]
fn fast_forward_engages_on_repeated_strikes() {
    let f = fixture();
    let eval = &f.evals[0];
    let runner = FaultRunner {
        model: &f.model,
        eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    };
    let fd = baseline_distribution(&f.model, &f.cfg);
    let mut scratch = FlowScratch::default();
    let mut sampler = StdRng::seed_from_u64(0xFF_0051);
    for i in 0..600u64 {
        let sample = fd.sample(&mut sampler);
        let mut rng = StdRng::seed_from_u64(i);
        let _ = runner.run_with(&sample, &mut rng, &mut scratch);
    }
    let stats = scratch.fast_forward_stats();
    assert!(stats.enabled);
    assert!(stats.rtl_resumes > 0, "no strike reached an RTL resume");
    assert!(
        stats.checkpoint_cache_hits > 0,
        "repeated injection cycles never hit the snapshot cache: {stats:?}"
    );
    assert!(stats.checkpoint_hit_rate() > 0.0);
}

/// Campaign-level equality: the full `CampaignResult` — estimate, variance,
/// class split, attribution, convergence trace — is bit-identical with
/// fast-forward on and off, for both kernels and a multi-worker schedule.
#[test]
fn campaign_results_match_with_fast_forward_off() {
    let f = fixture();
    let eval = &f.evals[2];
    let runner = FaultRunner {
        model: &f.model,
        eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    };
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    for kernel in [
        CampaignKernel::Compiled,
        CampaignKernel::Batched,
        CampaignKernel::Scalar,
    ] {
        let mut on = CampaignOptions::with_kernel(kernel);
        on.threads = 2;
        let off = CampaignOptions {
            fast_forward: false,
            ..on.clone()
        };
        let accelerated = run_campaign_with(&runner, &strategy, 2_000, 0x00D3_C0DE, &on);
        let reference = run_campaign_with(&runner, &strategy, 2_000, 0x00D3_C0DE, &off);
        assert_eq!(
            accelerated, reference,
            "fast-forward changed the campaign result ({kernel:?})"
        );
    }
}
