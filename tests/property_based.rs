//! Property-based tests over the core data structures and invariants,
//! spanning the netlist, simulation, ISA and fault-model crates.

use proptest::prelude::*;
use std::collections::HashMap;
use xlmc_gatesim::bitparallel::{evaluate_combinational, PackedTraces};
use xlmc_gatesim::cycle::CycleSim;
use xlmc_netlist::{CellKind, GateId, Netlist, Placement, Topology, UnrolledNetlist};
use xlmc_soc::isa::{Csr, Instr, Reg};

// ---------------------------------------------------------------------------
// Random-netlist machinery
// ---------------------------------------------------------------------------

/// A construction plan for one gate, with fanins as seeds resolved against
/// the ids that already exist (guaranteeing acyclicity).
#[derive(Debug, Clone)]
enum GatePlan {
    Comb(u8, [usize; 3]),
    Dff(usize),
}

fn gate_plan() -> impl Strategy<Value = GatePlan> {
    prop_oneof![
        8 => (0u8..9, [any::<usize>(), any::<usize>(), any::<usize>()]).prop_map(
            |(k, f)| GatePlan::Comb(k, f)
        ),
        2 => any::<usize>().prop_map(GatePlan::Dff),
    ]
}

/// Materialize a plan into a valid sequential netlist with 3 primary
/// inputs and one named output.
fn build_netlist(plans: &[GatePlan]) -> Netlist {
    let mut n = Netlist::new();
    let mut ids: Vec<GateId> = (0..3).map(|i| n.add_input(format!("in{i}"))).collect();
    let mut dffs = 0;
    for plan in plans {
        let pick = |seed: usize| ids[seed % ids.len()];
        let id = match plan {
            GatePlan::Comb(kind, f) => {
                let kinds = [
                    CellKind::Buf,
                    CellKind::Not,
                    CellKind::And,
                    CellKind::Or,
                    CellKind::Nand,
                    CellKind::Nor,
                    CellKind::Xor,
                    CellKind::Xnor,
                    CellKind::Mux,
                ];
                let kind = kinds[(*kind as usize) % kinds.len()];
                let fanin: Vec<GateId> = match kind.fixed_arity() {
                    Some(1) => vec![pick(f[0])],
                    Some(3) => vec![pick(f[0]), pick(f[1]), pick(f[2])],
                    _ => vec![pick(f[0]), pick(f[1])],
                };
                n.add_gate(kind, &fanin)
            }
            GatePlan::Dff(seed) => {
                dffs += 1;
                n.add_dff(format!("r{dffs}"), pick(*seed))
            }
        };
        ids.push(id);
    }
    n.add_output("out", *ids.last().unwrap());
    n
}

fn netlist_strategy() -> impl Strategy<Value = Netlist> {
    prop::collection::vec(gate_plan(), 1..40).prop_map(|p| build_netlist(&p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated netlist is structurally valid.
    #[test]
    fn random_netlists_validate(n in netlist_strategy()) {
        prop_assert_eq!(n.validate(), Ok(()));
    }

    /// The topological order places every combinational gate after all of
    /// its fanins, and levels are consistent.
    #[test]
    fn topological_order_respects_fanins(n in netlist_strategy()) {
        let topo = Topology::new(&n).unwrap();
        let pos: HashMap<GateId, usize> = topo
            .order()
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i))
            .collect();
        for &id in topo.order() {
            let gate = n.gate(id);
            for &f in &gate.fanin {
                let fk = n.gate(f).kind;
                if fk.is_combinational() {
                    prop_assert!(pos[&f] < pos[&id], "{f} !before {id}");
                }
                prop_assert!(topo.level(f) < topo.level(id));
            }
        }
    }

    /// Placement covers every placeable cell exactly once.
    #[test]
    fn placement_is_total_and_injective(n in netlist_strategy()) {
        let p = Placement::new(&n);
        let mut seen = std::collections::HashSet::new();
        for &g in p.placeable() {
            let pt = p.position(g).expect("placeable cell placed");
            prop_assert!(seen.insert((pt.x.to_bits(), pt.y.to_bits())));
        }
    }

    /// Radius queries are monotone in the radius and always contain the
    /// center.
    #[test]
    fn radius_queries_are_monotone(n in netlist_strategy(), seed in any::<usize>()) {
        let p = Placement::new(&n);
        let center = p.placeable()[seed % p.placeable().len()];
        let mut last: Vec<GateId> = Vec::new();
        for r in [0.0, 1.0, 2.0, 4.0] {
            let cells = p.cells_within(center, r);
            prop_assert!(cells.contains(&center));
            for g in &last {
                prop_assert!(cells.contains(g), "shrunk at r={r}");
            }
            last = cells;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequential cycle simulation agrees with the explicit time-frame
    /// unrolling on random circuits and random stimulus.
    #[test]
    fn unrolling_matches_sequential_simulation(
        n in netlist_strategy(),
        stim in prop::collection::vec(any::<[bool; 3]>(), 3),
    ) {
        let frames = stim.len() as u32;
        let unrolled = UnrolledNetlist::new(&n, frames);
        let sim = CycleSim::new(&n).unwrap();

        // Sequential run from all-zero state.
        let init = vec![false; n.dffs().len()];
        let seq = sim.run(&n, &init, frames as usize, |c| stim[c].to_vec());

        // Unrolled combinational evaluation (frame f = cycle frames-1-f).
        let un = unrolled.netlist();
        let usim = CycleSim::new(un).unwrap();
        let mut values: HashMap<GateId, bool> = HashMap::new();
        for (cycle, bits) in stim.iter().enumerate() {
            let frame = frames - 1 - cycle as u32;
            for (i, &b) in bits.iter().enumerate() {
                let src = n.resolve(&format!("in{i}")).unwrap();
                values.insert(unrolled.resolve(src, frame).unwrap(), b);
            }
        }
        for &(_, init_input) in unrolled.initial_state_inputs() {
            values.insert(init_input, false);
        }
        let inputs: Vec<bool> = un
            .inputs()
            .iter()
            .map(|g| *values.get(g).expect("all unrolled inputs assigned"))
            .collect();
        let cv = usim.eval(un, &[], &inputs);

        // Every original gate's value in every cycle must agree.
        for cycle in 0..frames {
            let frame = frames - 1 - cycle;
            for (id, gate) in n.iter() {
                if gate.kind == CellKind::Output {
                    continue;
                }
                let uid = unrolled.resolve(id, frame).unwrap();
                prop_assert_eq!(
                    seq[cycle as usize].value(id),
                    cv.value(uid),
                    "gate {} cycle {}", id, cycle
                );
            }
        }
    }

    /// Bit-parallel trace evaluation agrees with scalar simulation.
    #[test]
    fn bitparallel_matches_scalar(
        n in netlist_strategy(),
        seed in any::<u64>(),
    ) {
        let sim = CycleSim::new(&n).unwrap();
        let cycles = 70usize; // crosses the 64-bit word boundary
        let stim: Vec<Vec<bool>> = (0..cycles)
            .map(|c| {
                (0..3)
                    .map(|i| (seed.wrapping_mul(c as u64 * 3 + i + 1)).is_multiple_of(3))
                    .collect()
            })
            .collect();
        let init = vec![false; n.dffs().len()];
        let trace = sim.run(&n, &init, cycles, |c| stim[c].clone());

        let mut packed = PackedTraces::zeroed(&n, cycles);
        for c in 0..cycles {
            for (i, &pi) in n.inputs().iter().enumerate() {
                packed.set_value(pi, c, stim[c][i]);
            }
            for &d in n.dffs() {
                packed.set_value(d, c, trace[c].value(d));
            }
        }
        evaluate_combinational(&n, &mut packed).unwrap();
        for (c, cv) in trace.iter().enumerate() {
            for (id, _) in n.iter() {
                prop_assert_eq!(packed.value(id, c), cv.value(id));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ISA properties
// ---------------------------------------------------------------------------

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg)
}

fn imm_strategy() -> impl Strategy<Value = i32> {
    -(1i32 << 17)..(1i32 << 17)
}

fn csr_strategy() -> impl Strategy<Value = Csr> {
    prop_oneof![
        Just(Csr::Status),
        Just(Csr::Epc),
        Just(Csr::Cause),
        Just(Csr::Tvec),
        Just(Csr::Isolated),
        Just(Csr::Scratch),
    ]
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (reg_strategy(), reg_strategy(), reg_strategy()).prop_map(|(a, b, c)| Instr::Add(a, b, c)),
        (reg_strategy(), reg_strategy(), reg_strategy()).prop_map(|(a, b, c)| Instr::Sub(a, b, c)),
        (reg_strategy(), reg_strategy(), reg_strategy()).prop_map(|(a, b, c)| Instr::Xor(a, b, c)),
        (reg_strategy(), reg_strategy(), reg_strategy()).prop_map(|(a, b, c)| Instr::Sltu(a, b, c)),
        (reg_strategy(), reg_strategy(), imm_strategy()).prop_map(|(a, b, i)| Instr::Addi(a, b, i)),
        (reg_strategy(), imm_strategy()).prop_map(|(a, i)| Instr::Li(a, i)),
        (reg_strategy(), reg_strategy(), imm_strategy()).prop_map(|(a, b, i)| Instr::Lw(a, b, i)),
        (reg_strategy(), reg_strategy(), imm_strategy()).prop_map(|(a, b, i)| Instr::Sw(a, b, i)),
        (reg_strategy(), reg_strategy(), imm_strategy()).prop_map(|(a, b, i)| Instr::Beq(a, b, i)),
        (reg_strategy(), reg_strategy(), imm_strategy()).prop_map(|(a, b, i)| Instr::Bltu(a, b, i)),
        (reg_strategy(), imm_strategy()).prop_map(|(a, i)| Instr::Jal(a, i)),
        (reg_strategy(), csr_strategy(), reg_strategy())
            .prop_map(|(a, c, b)| Instr::Csrrw(a, c, b)),
        Just(Instr::Ecall),
        Just(Instr::Mret),
        Just(Instr::Halt),
        Just(Instr::Nop),
    ]
}

proptest! {
    /// Every instruction round-trips through its encoding.
    #[test]
    fn instruction_encoding_roundtrips(i in instr_strategy()) {
        prop_assert_eq!(Instr::decode(i.encode()), Ok(i));
    }

    /// Decoding never panics on arbitrary words.
    #[test]
    fn decode_is_total(w in any::<u32>()) {
        let _ = Instr::decode(w);
    }
}

// ---------------------------------------------------------------------------
// Fault-model properties
// ---------------------------------------------------------------------------

proptest! {
    /// Uniform temporal distributions are normalized and stay in support.
    #[test]
    fn temporal_distribution_is_normalized(lo in -50i64..50, len in 1i64..80) {
        use xlmc_fault::TemporalDist;
        let d = TemporalDist::uniform(lo, lo + len - 1);
        let total: f64 = (lo..lo + len).map(|t| d.pmf(t)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert_eq!(d.pmf(lo - 1), 0.0);
        prop_assert_eq!(d.pmf(lo + len), 0.0);
    }

    /// The joint attacker pmf is normalized for arbitrary component sizes.
    #[test]
    fn joint_attacker_pmf_is_normalized(
        t_len in 1i64..20,
        cells in 1u32..30,
        radii in prop::collection::hash_set(0u32..6, 1..4),
    ) {
        use xlmc_fault::sample::PHASE_BINS;
        use xlmc_fault::{AttackDistribution, AttackSample, RadiusDist, SpatialDist, TemporalDist};
        let cell_ids: Vec<GateId> = (0..cells).map(GateId).collect();
        let radius_opts: Vec<f64> = radii.iter().map(|&r| f64::from(r)).collect();
        let f = AttackDistribution {
            temporal: TemporalDist::uniform(1, t_len),
            spatial: SpatialDist::UniformOverCells(cell_ids.clone()),
            radius: RadiusDist::uniform(radius_opts.clone()),
        };
        let mut total = 0.0;
        for t in 1..=t_len {
            for &c in &cell_ids {
                for &r in &radius_opts {
                    for phase in 0..PHASE_BINS {
                        total += f.pmf(&AttackSample { t, center: c, radius: r, phase });
                    }
                }
            }
        }
        prop_assert!((total - 1.0).abs() < 1e-9, "total {}", total);
    }
}

// ---------------------------------------------------------------------------
// Transient-model properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Striking nothing latches nothing; direct register strikes always
    /// upset exactly the struck registers.
    #[test]
    fn strike_basics(n in netlist_strategy(), seed in any::<u64>()) {
        use xlmc_gatesim::transient::{TransientConfig, TransientSim};
        let sim = CycleSim::new(&n).unwrap();
        let init = vec![false; n.dffs().len()];
        let stim: Vec<bool> = (0..3).map(|i| seed >> i & 1 == 1).collect();
        let cv = sim.eval(&n, &init, &stim);
        let ts = TransientSim::new(&n, TransientConfig::default()).unwrap();

        let empty = ts.strike(&n, &cv, &[], 100.0);
        prop_assert!(empty.is_masked());

        if !n.dffs().is_empty() {
            let d = n.dffs()[(seed as usize) % n.dffs().len()];
            let out = ts.strike(&n, &cv, &[d], 100.0);
            prop_assert_eq!(out.upset_dffs.clone(), vec![d]);
            prop_assert!(out.faulty_registers().contains(&d));
        }
    }
}

// ---------------------------------------------------------------------------
// Campaign-engine determinism
// ---------------------------------------------------------------------------

/// Shared expensive fixture for the campaign determinism property: the
/// full system model, golden run and pre-characterization, built once.
struct CampaignFixture {
    model: xlmc::SystemModel,
    eval: xlmc::Evaluation,
    prechar: xlmc::Precharacterization,
    cfg: xlmc::sampling::ExperimentConfig,
}

fn campaign_fixture() -> &'static CampaignFixture {
    use std::sync::OnceLock;
    static FIX: OnceLock<CampaignFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let model = xlmc::SystemModel::with_defaults().unwrap();
        let eval = xlmc::Evaluation::new(xlmc_soc::workloads::illegal_write()).unwrap();
        let cfg = xlmc::sampling::ExperimentConfig {
            t_max: 16,
            ..Default::default()
        };
        let prechar = xlmc::Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        CampaignFixture {
            model,
            eval,
            prechar,
            cfg,
        }
    })
}

fn strategy_for(
    f: &'static CampaignFixture,
    idx: usize,
) -> Box<dyn xlmc::sampling::SamplingStrategy> {
    use xlmc::sampling::{baseline_distribution, ConeSampling, ImportanceSampling, RandomSampling};
    let fd = baseline_distribution(&f.model, &f.cfg);
    match idx {
        0 => Box::new(RandomSampling::new(fd)),
        1 => Box::new(ConeSampling::new(
            fd,
            &f.prechar,
            f.cfg.radius_options.clone(),
        )),
        _ => Box::new(ImportanceSampling::new(
            fd,
            &f.model,
            &f.prechar,
            f.cfg.alpha,
            f.cfg.beta,
            f.cfg.radius_options.clone(),
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cross-level exactness of the SET → SEU map: whenever the map
    /// declares a drawn sample exactly representable at RTL (radius-0
    /// strike, register target, single register class), the cheap level-0
    /// verdict must equal the gate-accurate verdict — this is the
    /// invariant that lets the MLMC correction term skip such samples
    /// without bias.
    #[test]
    fn exactly_representable_samples_agree_across_levels(
        seed in any::<u64>(),
        strategy_idx in 0usize..3,
    ) {
        use std::sync::OnceLock;
        use xlmc::fastforward::SharedConclusionMemo;
        use xlmc::flow::FaultRunner;
        use xlmc::multilevel::{coupled_run_with, MlmcScratch, SetToSeuMap};
        use xlmc::rng::SplitMix64;

        let f = campaign_fixture();
        static MAP: OnceLock<SetToSeuMap> = OnceLock::new();
        let map = MAP.get_or_init(|| SetToSeuMap::build(&f.model, &f.eval, &f.prechar));
        let runner = FaultRunner {
            model: &f.model,
            eval: &f.eval,
            prechar: &f.prechar,
            hardening: None,
            multi_fault: None,
        };
        let strategy = strategy_for(f, strategy_idx);
        let memo = SharedConclusionMemo::default();
        let mut scratch = MlmcScratch::default();
        let mut checked = 0usize;
        for i in 0..192u64 {
            // Re-draw the engine's sample for run i to test the guard,
            // then evaluate both levels under the exact per-run streams.
            let mut rng = SplitMix64::for_run(seed, i);
            let sample = strategy.draw(&mut rng);
            if !map.exactly_representable(&sample) {
                continue;
            }
            let rec = coupled_run_with(
                &runner,
                map,
                strategy.as_ref(),
                seed,
                i,
                &mut scratch,
                &memo,
            );
            prop_assert_eq!(
                rec.gate_success, rec.rtl_success,
                "run {} ({:?}): levels disagree on an exactly representable sample",
                i, sample
            );
            checked += 1;
        }
        prop_assert!(checked > 0, "no exactly representable sample in 192 draws");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The sharded campaign engine is a pure scheduling choice: for any
    /// strategy, run count and seed, a 4-worker campaign returns the
    /// bit-identical result of the sequential one — estimate, variance,
    /// class split, attribution and convergence trace included.
    #[test]
    fn campaign_is_bit_identical_across_thread_counts(
        strategy_idx in 0usize..3,
        n in 1usize..220,
        seed in any::<u64>(),
    ) {
        use xlmc::estimator::{run_campaign_with, CampaignOptions};
        use xlmc::flow::FaultRunner;
        use xlmc::sampling::{
            baseline_distribution, ConeSampling, ImportanceSampling, RandomSampling,
            SamplingStrategy,
        };

        let f = campaign_fixture();
        let runner = FaultRunner {
            model: &f.model,
            eval: &f.eval,
            prechar: &f.prechar,
            hardening: None,
            multi_fault: None,
        };
        let fd = baseline_distribution(&f.model, &f.cfg);
        let strategy: Box<dyn SamplingStrategy> = match strategy_idx {
            0 => Box::new(RandomSampling::new(fd)),
            1 => Box::new(ConeSampling::new(fd, &f.prechar, f.cfg.radius_options.clone())),
            _ => Box::new(ImportanceSampling::new(
                fd,
                &f.model,
                &f.prechar,
                f.cfg.alpha,
                f.cfg.beta,
                f.cfg.radius_options.clone(),
            )),
        };

        let sequential =
            run_campaign_with(&runner, strategy.as_ref(), n, seed, &CampaignOptions::with_threads(1));
        let sharded =
            run_campaign_with(&runner, strategy.as_ref(), n, seed, &CampaignOptions::with_threads(4));
        prop_assert_eq!(sequential, sharded);
    }
}
