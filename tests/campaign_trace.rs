//! Tracing, hot-path counters, and provenance/replay contracts.
//!
//! The trace subsystem promises three things. First, it is a **pure
//! observer**: a campaign run with span recording, counters and provenance
//! capture enabled returns the bit-identical `CampaignResult` of an
//! untraced run. Second, the hot-path counters are **schedule-invariant**:
//! defined chunk-locally, their totals are a pure function of
//! `(seed, n, strategy)` — identical between the scalar and batched kernels
//! and at any thread count (only the kernel-shape counters differ by
//! kernel). Third, provenance **replays**: any recorded run, re-derived
//! solo from `SplitMix64::for_run(seed, i)`, reproduces the campaign's
//! verdict for that run.
//!
//! The trace file written along the way is validated against the
//! checked-in `schemas/trace.schema.json`.

use std::path::PathBuf;
use std::sync::OnceLock;
use xlmc::estimator::{replay_run, run_campaign_with, CampaignKernel, CampaignOptions};
use xlmc::flow::FaultRunner;
use xlmc::sampling::{baseline_distribution, ExperimentConfig, RandomSampling};
use xlmc::telemetry::{validate_against_schema, JsonValue};
use xlmc::trace::TraceSink;
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_soc::workloads;

const SEED: u64 = 0x7247;
const RUNS: usize = 1_024; // two full chunks

struct Fixture {
    model: SystemModel,
    write_eval: Evaluation,
    prechar: Precharacterization,
    cfg: ExperimentConfig,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let model = SystemModel::with_defaults().unwrap();
        let write_eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let cfg = ExperimentConfig {
            t_max: 16,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            write_eval,
            prechar,
            cfg,
        }
    })
}

fn runner(f: &Fixture) -> FaultRunner<'_> {
    FaultRunner {
        model: &f.model,
        eval: &f.write_eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    }
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xlmc-trace-{}-{name}", std::process::id()))
}

#[test]
fn warm_campaign_hits_both_memo_layers() {
    // Over two chunks of a t_max = 16 campaign, the per-chunk cycle-value
    // memo and conclusion memo must both see repeats: the timing window is
    // far smaller than the chunk, so T_e values and (T_e, error-pattern)
    // pairs recur within a chunk by pigeonhole.
    let f = fixture();
    let r = runner(f);
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    let res = run_campaign_with(&r, &strategy, RUNS, SEED, &CampaignOptions::default());
    assert!(
        res.counters.cycle_memo_hits > 0,
        "no cycle-value memo hits: {:?}",
        res.counters
    );
    assert!(
        res.counters.conclusion_memo_hits > 0,
        "no conclusion memo hits: {:?}",
        res.counters
    );
    // Internal consistency: every non-out-of-run run does one cycle-memo
    // lookup; every concluded pattern is analytic or RTL.
    assert_eq!(
        res.counters.cycle_memo_hits + res.counters.cycle_memo_misses + res.counters.out_of_run,
        RUNS
    );
    assert_eq!(
        res.counters.conclusions_analytic + res.counters.conclusions_rtl,
        res.counters.conclusion_memo_misses
    );
}

#[test]
fn counter_totals_are_kernel_and_thread_invariant() {
    let f = fixture();
    let r = runner(f);
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    let mut results = Vec::new();
    for kernel in [
        CampaignKernel::Scalar,
        CampaignKernel::Batched,
        CampaignKernel::Compiled,
    ] {
        for threads in [1usize, 4] {
            let opts = CampaignOptions {
                threads,
                ..CampaignOptions::with_kernel(kernel)
            };
            let res = run_campaign_with(&r, &strategy, RUNS, SEED, &opts);
            results.push((format!("{kernel:?} t{threads}"), res));
        }
    }
    let (ref first_tag, ref first) = results[0];
    for (tag, res) in &results[1..] {
        assert_eq!(
            res.counters, first.counters,
            "hot-path counters diverged between {first_tag} and {tag}"
        );
        assert_eq!(
            res.first_success, first.first_success,
            "first_success diverged between {first_tag} and {tag}"
        );
    }
    // The kernel-shape counters DO describe the batched kernel: a full
    // batched campaign packs lanes and groups frames.
    let batched = &results.last().unwrap().1;
    assert!(batched.kernel_counters.lane_batches > 0);
    // Every run that lands inside the benchmark occupies a lane.
    assert_eq!(
        batched.kernel_counters.lanes_occupied + batched.counters.out_of_run,
        RUNS
    );
    assert!(batched.kernel_counters.frame_groups >= batched.kernel_counters.lane_batches);
    assert!(batched.kernel_counters.mean_lane_occupancy() > 1.0);
}

#[test]
fn tracing_is_a_pure_observer_and_the_file_validates() {
    let f = fixture();
    let r = runner(f);
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    let untraced = run_campaign_with(&r, &strategy, RUNS, SEED, &CampaignOptions::default());

    let trace_path = scratch("observer.json");
    let _ = std::fs::remove_file(&trace_path);
    let opts = CampaignOptions {
        trace_path: Some(trace_path.clone()),
        threads: 4,
        ..CampaignOptions::default()
    };
    let traced = run_campaign_with(&r, &strategy, RUNS, SEED, &opts);
    assert_eq!(traced, untraced, "tracing changed the campaign result");

    // The written document validates against the checked-in schema and
    // carries every section.
    let schema_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../schemas/trace.schema.json");
    let schema = JsonValue::parse(&std::fs::read_to_string(&schema_path).expect("read schema"))
        .expect("schema parses");
    let doc = JsonValue::parse(&std::fs::read_to_string(&trace_path).expect("read trace"))
        .expect("trace parses");
    validate_against_schema(&doc, &schema).expect("trace matches schema");

    let events = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
    // One chunk span per chunk, plus the per-batch phase spans inside.
    let chunk_spans = events
        .iter()
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("chunk"))
        .count();
    assert_eq!(chunk_spans, RUNS / 512);
    for phase in ["draw", "strike", "conclude", "fold"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(JsonValue::as_str) == Some(phase)),
            "no {phase:?} span in the trace"
        );
    }

    // Provenance: the ring holds the tail of the campaign and the success
    // log matches the result's success count.
    let ring = doc
        .get("provenance")
        .and_then(|p| p.get("ring"))
        .and_then(JsonValue::as_arr)
        .unwrap();
    assert!(!ring.is_empty());
    let last = ring.last().unwrap();
    assert_eq!(
        last.get("run_index").and_then(JsonValue::as_u64),
        Some(RUNS as u64 - 1)
    );
    let successes = doc
        .get("provenance")
        .and_then(|p| p.get("successes"))
        .and_then(JsonValue::as_arr)
        .unwrap();
    assert_eq!(successes.len(), traced.successes);

    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn recorded_runs_replay_to_the_same_verdict() {
    let f = fixture();
    let r = runner(f);
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    let res = run_campaign_with(&r, &strategy, RUNS, SEED, &CampaignOptions::default());
    let first = res
        .first_success
        .expect("a 1k-run campaign at this seed has at least one success");
    // The first success and an arbitrary mid-campaign run both re-derive
    // solo to self-consistent records.
    let rec = replay_run(&r, &strategy, SEED, first, &TraceSink::disabled());
    assert_eq!(rec.run_index, first);
    assert!(rec.success, "replay of the first success did not succeed");
    let mid = replay_run(&r, &strategy, SEED, RUNS as u64 / 2, &TraceSink::disabled());
    assert_eq!(mid.run_index, RUNS as u64 / 2);
    // Replaying is deterministic: doing it twice gives identical records.
    let again = replay_run(&r, &strategy, SEED, first, &TraceSink::disabled());
    assert_eq!(rec, again);
}

#[test]
fn replay_flag_cross_checks_the_campaign_record() {
    // End-to-end `--replay` path: run a traced campaign with
    // `replay = Some(i)`; the engine asserts internally that the solo
    // re-execution matches the provenance record, so reaching the result
    // is the pass condition.
    let f = fixture();
    let r = runner(f);
    let strategy = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
    let probe = run_campaign_with(&r, &strategy, RUNS, SEED, &CampaignOptions::default());
    let target = probe.first_success.expect("campaign has a success");
    let opts = CampaignOptions {
        replay: Some(target),
        ..CampaignOptions::default()
    };
    let res = run_campaign_with(&r, &strategy, RUNS, SEED, &opts);
    assert_eq!(res, probe, "replay changed the campaign result");
}
