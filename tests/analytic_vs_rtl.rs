//! Soundness of the analytical memory-type evaluator against full RTL
//! fault simulation, across both benchmarks, several injection cycles and
//! multi-bit error sets.

use xlmc::analytic::{evaluate, AnalyticVerdict};
use xlmc::Evaluation;
use xlmc_soc::workloads;
use xlmc_soc::{MpuBit, Soc};

fn rtl_reference(eval: &Evaluation, bits: &[MpuBit], te: u64) -> bool {
    let mut soc: Soc = eval.golden.nearest_checkpoint(te).clone();
    while soc.cycle < te {
        soc.step();
    }
    soc.step();
    for &b in bits {
        soc.mpu.toggle_bit(b);
    }
    soc.run_until_halt(eval.max_cycles);
    eval.workload.goal.succeeded(&soc)
}

fn check_all_config_bits(eval: &Evaluation, te: u64) {
    let mut checked = 0;
    for bit in MpuBit::all() {
        if !bit.is_config() {
            continue;
        }
        let verdict = evaluate(eval, &[bit], te);
        if verdict == AnalyticVerdict::NotApplicable {
            continue;
        }
        let rtl = rtl_reference(eval, &[bit], te);
        assert_eq!(
            verdict == AnalyticVerdict::Success,
            rtl,
            "{}: {bit:?} at T_e={te}",
            eval.workload.name
        );
        checked += 1;
    }
    assert!(checked > 100, "too few applicable bits ({checked})");
}

#[test]
fn single_bit_agreement_write_benchmark() {
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();
    for te in [eval.target_cycle - 3, eval.target_cycle - 40] {
        check_all_config_bits(&eval, te);
    }
}

#[test]
fn single_bit_agreement_read_benchmark() {
    let eval = Evaluation::new(workloads::illegal_read()).unwrap();
    check_all_config_bits(&eval, eval.target_cycle - 10);
}

#[test]
fn multi_bit_agreement() {
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();
    let te = eval.target_cycle - 8;
    // Pairs and triples mixing hole-openers, shrinkers and inert bits.
    let sets: Vec<Vec<MpuBit>> = vec![
        vec![MpuBit::Enable, MpuBit::Base(2, 3)],
        vec![MpuBit::Limit(0, 13), MpuBit::Limit(0, 14)],
        vec![
            MpuBit::Limit(0, 13),
            MpuBit::Base(3, 0),
            MpuBit::Perms(2, 1),
        ],
        vec![MpuBit::Base(0, 13), MpuBit::Limit(0, 13)],
        vec![MpuBit::Perms(1, 1), MpuBit::Limit(1, 12)],
        vec![MpuBit::StickyViol, MpuBit::Limit(0, 13)],
    ];
    for bits in sets {
        let verdict = evaluate(&eval, &bits, te);
        if verdict == AnalyticVerdict::NotApplicable {
            continue;
        }
        let rtl = rtl_reference(&eval, &bits, te);
        assert_eq!(
            verdict == AnalyticVerdict::Success,
            rtl,
            "error set {bits:?}"
        );
    }
}

#[test]
fn read_attack_needs_the_leak_path_too() {
    // Extending the read-only region 1 over the secret allows the read but
    // the leak store stays legal through region 0, so the attack succeeds;
    // the analytic evaluator and RTL must both see it.
    let eval = Evaluation::new(workloads::illegal_read()).unwrap();
    let te = eval.target_cycle - 10;
    // limit1: 0x60ff -> set bit 12 -> 0x70ff covers the secret (read-only).
    let bits = [MpuBit::Limit(1, 12)];
    let verdict = evaluate(&eval, &bits, te);
    let rtl = rtl_reference(&eval, &bits, te);
    assert_eq!(verdict == AnalyticVerdict::Success, rtl);
    assert_eq!(
        verdict,
        AnalyticVerdict::Success,
        "read attack through a read-only hole"
    );
}

#[test]
fn the_same_hole_does_not_help_the_write_attack() {
    // The read-only hole lets the secret be read but not written: for the
    // write benchmark the same flip must fail.
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();
    let te = eval.target_cycle - 10;
    let bits = [MpuBit::Limit(1, 12)];
    let verdict = evaluate(&eval, &bits, te);
    let rtl = rtl_reference(&eval, &bits, te);
    assert_eq!(verdict == AnalyticVerdict::Success, rtl);
    assert_eq!(verdict, AnalyticVerdict::Failure);
}
