//! Cross-level consistency: the property the whole framework stands on.
//!
//! The cross-level flow switches freely between the RTL model and the gate
//! netlist of the MPU; these tests prove the two views agree on real
//! workload traffic (not just random stimulus) and that a fault latched at
//! gate level acts on the RTL exactly like the corresponding architectural
//! bit flip.

use xlmc::{Evaluation, SystemModel};
use xlmc_gatesim::cycle::CycleSim;
use xlmc_soc::workloads;
use xlmc_soc::MpuBit;

/// Renders the per-bit diff between the RTL-recorded state and the
/// gate-simulated state, naming each architectural bit, so a divergence
/// failure shows *which* registers split instead of two opaque vectors.
fn state_diff_table(model: &SystemModel, rtl: &[bool], gate: &[bool]) -> String {
    let mut table = String::from("bit                         rtl    gate\n");
    for (pos, &dff) in model.mpu.netlist().dffs().iter().enumerate() {
        if rtl[pos] != gate[pos] {
            let name = model
                .mpu
                .bit_of(dff)
                .map(|b| format!("{b:?}"))
                .unwrap_or_else(|| format!("dff #{pos}"));
            table.push_str(&format!("{name:<28}{:<7}{}\n", rtl[pos], gate[pos]));
        }
    }
    table
}

/// Replaying the write-benchmark golden stimulus through the gate netlist
/// reproduces the recorded RTL MPU state cycle for cycle.
#[test]
fn gate_netlist_tracks_rtl_through_the_attack_benchmark() {
    let model = SystemModel::with_defaults().unwrap();
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();
    let sim = CycleSim::new(model.mpu.netlist()).unwrap();

    let mut state = model.mpu.state_vector(&eval.golden.mpu_states[0]);
    for c in 0..eval.golden.cycles as usize {
        let expect = model.mpu.state_vector(&eval.golden.mpu_states[c]);
        assert!(
            state == expect,
            "state diverged at cycle {c}:\n{}",
            state_diff_table(&model, &expect, &state)
        );
        let stim = &eval.golden.stimulus[c];
        let inputs = model.mpu.input_values(stim.request, stim.cfg_write);
        let cv = sim.eval(model.mpu.netlist(), &state, &inputs);
        assert_eq!(
            cv.value(model.mpu.responding_signal()),
            stim.viol_comb,
            "responding signal mismatch at cycle {c}"
        );
        state = cv.next_state().to_vec();
    }
}

/// The same check for the synthetic pre-characterization stimulus, which
/// exercises reconfiguration and DMA traffic.
#[test]
fn gate_netlist_tracks_rtl_through_the_synthetic_benchmark() {
    let model = SystemModel::with_defaults().unwrap();
    let w = workloads::synthetic_precharacterization();
    let golden = xlmc_soc::GoldenRun::record(&w.program, 20_000, 64);
    let sim = CycleSim::new(model.mpu.netlist()).unwrap();

    let mut state = model.mpu.state_vector(&golden.mpu_states[0]);
    for c in 0..golden.cycles as usize {
        let expect = model.mpu.state_vector(&golden.mpu_states[c]);
        assert!(
            state == expect,
            "state diverged at cycle {c}:\n{}",
            state_diff_table(&model, &expect, &state)
        );
        let stim = &golden.stimulus[c];
        let inputs = model.mpu.input_values(stim.request, stim.cfg_write);
        let cv = sim.eval(model.mpu.netlist(), &state, &inputs);
        state = cv.next_state().to_vec();
    }
}

/// A transient latched into a flip-flop at gate level and the architectural
/// bit flip written back into RTL state produce identical downstream
/// behavior: the write-back in the flow is exact, not approximate.
#[test]
fn gate_level_latched_fault_equals_rtl_bit_flip() {
    let model = SystemModel::with_defaults().unwrap();
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();
    let sim = CycleSim::new(model.mpu.netlist()).unwrap();
    let te = eval.target_cycle - 5;

    for bit in [MpuBit::Enable, MpuBit::Violation, MpuBit::Limit(0, 13)] {
        // Gate level: simulate the injection cycle, flip the chosen DFF's
        // latched next-state bit, then continue at gate level for a few
        // cycles.
        let state = model.mpu.state_vector(&eval.golden.mpu_states[te as usize]);
        let stim = &eval.golden.stimulus[te as usize];
        let inputs = model.mpu.input_values(stim.request, stim.cfg_write);
        let cv = sim.eval(model.mpu.netlist(), &state, &inputs);
        let mut gate_state = cv.next_state().to_vec();
        let dff_pos = model
            .mpu
            .netlist()
            .dffs()
            .iter()
            .position(|&d| d == model.mpu.dff(bit))
            .unwrap();
        gate_state[dff_pos] = !gate_state[dff_pos];

        // RTL level: step the SoC through the same cycle and toggle the
        // architectural bit.
        let mut soc = eval.golden.nearest_checkpoint(te).clone();
        while soc.cycle < te {
            soc.step();
        }
        soc.step();
        soc.mpu.toggle_bit(bit);

        // The two must agree now and for every subsequent cycle (driving
        // the netlist from the faulty RTL's own stimulus).
        for k in 0..20 {
            assert_eq!(
                gate_state,
                model.mpu.state_vector(&soc.mpu),
                "{bit:?}: divergence {k} cycles after injection"
            );
            let ev = soc.step();
            let inputs = model
                .mpu
                .input_values(ev.issued.map(|(_, r)| r), ev.cfg_write);
            let cv = sim.eval(model.mpu.netlist(), &gate_state, &inputs);
            gate_state = cv.next_state().to_vec();
        }
    }
}

/// The responding signal of the elaboration is the same net the
/// pre-characterization cones, the sampling distributions and the SoC trap
/// logic all refer to: suppressing it at the right moment defeats both the
/// commit gating and the trap.
#[test]
fn responding_signal_suppression_is_the_canonical_attack() {
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();

    // Flip the violation register exactly when the golden run latches the
    // verdict (end of T_t - 1).
    let te = eval.target_cycle - 1;
    let mut soc = eval.golden.nearest_checkpoint(te).clone();
    while soc.cycle < te {
        soc.step();
    }
    soc.step();
    assert!(soc.mpu.violation, "the verdict must be latched here");
    soc.mpu.toggle_bit(MpuBit::Violation);
    soc.run_until_halt(eval.max_cycles);
    assert!(
        eval.workload.goal.succeeded(&soc),
        "suppressing the responding signal must defeat the mechanism"
    );
}

/// All three levels of the estimator hierarchy pinned against each other on
/// one batch of coupled campaign runs: the analytic level-0 multi-SEU
/// verdict (SetToSeuMap, no netlist), the run-to-halt RTL resume, and the
/// gate-accurate fast-forward flow. Two invariants hold for every run, and
/// a violation fails with the full per-level diff table rather than a bare
/// assert:
///
/// 1. gate (fast-forward) == RTL (run-to-halt): fast-forward is an exact
///    scheduling optimization, never an approximation;
/// 2. analytic == gate wherever the map declares the sample exactly
///    representable — the runs whose MLMC correction term is provably zero.
#[test]
fn three_level_verdict_matrix_stays_pinned() {
    use xlmc::fastforward::SharedConclusionMemo;
    use xlmc::flow::{FaultRunner, FlowScratch};
    use xlmc::multilevel::{coupled_run_with, MlmcScratch, SetToSeuMap};
    use xlmc::rng::SplitMix64;
    use xlmc::sampling::{baseline_distribution, ImportanceSampling, SamplingStrategy};
    use xlmc::Precharacterization;

    const RUNS: u64 = 768;
    const SEED: u64 = 0x3_1EE7;

    let model = SystemModel::with_defaults().unwrap();
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();
    let cfg = xlmc::sampling::ExperimentConfig {
        t_max: 16,
        ..Default::default()
    };
    let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
    let map = SetToSeuMap::build(&model, &eval, &prechar);
    let strategy = ImportanceSampling::new(
        baseline_distribution(&model, &cfg),
        &model,
        &prechar,
        cfg.alpha,
        cfg.beta,
        cfg.radius_options.clone(),
    );
    let runner = FaultRunner {
        model: &model,
        eval: &eval,
        prechar: &prechar,
        hardening: None,
        multi_fault: None,
    };
    let memo = SharedConclusionMemo::default();
    let mut coupled = MlmcScratch::default();
    let mut halt = FlowScratch::default();
    halt.set_fast_forward(false);

    struct Row {
        run: u64,
        analytic: bool,
        rtl_halt: bool,
        gate: bool,
        exact: bool,
    }
    let mut broken: Vec<Row> = Vec::new();
    let (mut exact_runs, mut successes) = (0usize, 0usize);
    for i in 0..RUNS {
        // The engine's sample for run i, re-drawn to query the map.
        let mut rng = SplitMix64::for_run(SEED, i);
        let sample = strategy.draw(&mut rng);
        let exact = map.exactly_representable(&sample);

        // Level 0 (analytic multi-SEU) and the gate level come from the
        // coupled pair; the RTL level is an independent run-to-halt resume
        // of the identical per-run stream.
        let rec = coupled_run_with(&runner, &map, &strategy, SEED, i, &mut coupled, &memo);
        let out = runner.run_with(&sample, &mut rng, &mut halt);

        exact_runs += exact as usize;
        successes += out.success as usize;
        let row = Row {
            run: i,
            analytic: rec.rtl_success,
            rtl_halt: out.success,
            gate: rec.gate_success,
            exact,
        };
        let ff_exact = row.gate == row.rtl_halt;
        let map_exact = !row.exact || row.analytic == row.gate;
        if !(ff_exact && map_exact) {
            broken.push(row);
        }
    }

    // The matrix must actually exercise every level on this batch.
    assert!(exact_runs > 0, "no exactly representable run in the batch");
    assert!(successes > 0, "no successful attack in the batch");

    if !broken.is_empty() {
        let mut table = String::from("run    analytic  rtl-halt  gate   exactly-representable\n");
        for r in &broken {
            table.push_str(&format!(
                "{:<7}{:<10}{:<10}{:<7}{}\n",
                r.run, r.analytic, r.rtl_halt, r.gate, r.exact
            ));
        }
        panic!(
            "{} of {RUNS} runs break the cross-level verdict matrix:\n{table}",
            broken.len()
        );
    }
}

/// The elaborated MPU survives a structural-Verilog round trip: the parsed
/// netlist behaves identically on real workload stimulus. This is the
/// "export for external EDA tools" feature proving itself against the
/// cross-level traces.
#[test]
fn mpu_netlist_survives_verilog_roundtrip() {
    let model = SystemModel::with_defaults().unwrap();
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();
    let text = xlmc_netlist::to_verilog(model.mpu.netlist(), "mpu");
    let parsed = xlmc_netlist::from_verilog(&text).expect("emitted subset must parse");
    assert_eq!(parsed.dffs().len(), model.mpu.netlist().dffs().len());
    assert_eq!(parsed.inputs().len(), model.mpu.netlist().inputs().len());

    // Drive both netlists with the golden stimulus; all flop states must
    // agree every cycle. Input/dff orders are preserved by construction
    // (declaration order round-trips).
    let orig_sim = CycleSim::new(model.mpu.netlist()).unwrap();
    let parsed_sim = CycleSim::new(&parsed).unwrap();
    let mut a = model.mpu.state_vector(&eval.golden.mpu_states[0]);
    let mut b = a.clone();
    for c in 0..eval.golden.cycles.min(150) as usize {
        let stim = &eval.golden.stimulus[c];
        let inputs = model.mpu.input_values(stim.request, stim.cfg_write);
        let cva = orig_sim.eval(model.mpu.netlist(), &a, &inputs);
        let cvb = parsed_sim.eval(&parsed, &b, &inputs);
        a = cva.next_state().to_vec();
        b = cvb.next_state().to_vec();
        assert_eq!(a, b, "verilog round trip diverged at cycle {c}");
    }
}
