//! End-to-end pipeline tests: model → golden run → pre-characterization →
//! sampling → campaign, across all three strategies and both benchmarks.

use std::sync::OnceLock;
use xlmc::estimator::run_campaign;
use xlmc::flow::FaultRunner;
use xlmc::sampling::{
    baseline_distribution, ConeSampling, ExperimentConfig, ImportanceSampling, RandomSampling,
    SamplingStrategy,
};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_soc::workloads;

struct Fixture {
    model: SystemModel,
    write_eval: Evaluation,
    read_eval: Evaluation,
    prechar: Precharacterization,
    cfg: ExperimentConfig,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let model = SystemModel::with_defaults().unwrap();
        let write_eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let read_eval = Evaluation::new(workloads::illegal_read()).unwrap();
        let cfg = ExperimentConfig {
            t_max: 16,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            write_eval,
            read_eval,
            prechar,
            cfg,
        }
    })
}

fn strategies(f: &Fixture) -> Vec<Box<dyn SamplingStrategy>> {
    let fd = baseline_distribution(&f.model, &f.cfg);
    vec![
        Box::new(RandomSampling::new(fd.clone())),
        Box::new(ConeSampling::new(
            fd.clone(),
            &f.prechar,
            f.cfg.radius_options.clone(),
        )),
        Box::new(ImportanceSampling::new(
            fd,
            &f.model,
            &f.prechar,
            f.cfg.alpha,
            f.cfg.beta,
            f.cfg.radius_options.clone(),
        )),
    ]
}

#[test]
fn all_strategies_agree_on_the_write_benchmark() {
    let f = fixture();
    let runner = FaultRunner {
        model: &f.model,
        eval: &f.write_eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    };
    let results: Vec<_> = strategies(f)
        .iter()
        .map(|s| run_campaign(&runner, s.as_ref(), 900, 31))
        .collect();
    for r in &results {
        assert!(r.ssf > 0.0, "{}: no successes", r.strategy);
        assert!(r.ssf < 0.5, "{}: implausibly large SSF", r.strategy);
    }
    // Unbiasedness: estimates within a factor of each other.
    let max = results.iter().map(|r| r.ssf).fold(f64::MIN, f64::max);
    let min = results.iter().map(|r| r.ssf).fold(f64::MAX, f64::min);
    assert!(
        max / min < 4.0,
        "estimates disagree: {:?}",
        results.iter().map(|r| r.ssf).collect::<Vec<_>>()
    );
}

#[test]
fn importance_sampling_reduces_variance_on_both_benchmarks() {
    let f = fixture();
    for eval in [&f.write_eval, &f.read_eval] {
        let runner = FaultRunner {
            model: &f.model,
            eval,
            prechar: &f.prechar,
            hardening: None,
            multi_fault: None,
        };
        let strats = strategies(f);
        let random = run_campaign(&runner, strats[0].as_ref(), 1_200, 77);
        let importance = run_campaign(&runner, strats[2].as_ref(), 1_200, 78);
        assert!(
            importance.sample_variance < random.sample_variance,
            "{}: importance {:.3e} !< random {:.3e}",
            eval.workload.name,
            importance.sample_variance,
            random.sample_variance,
        );
    }
}

#[test]
fn read_benchmark_has_nonzero_ssf_too() {
    let f = fixture();
    let runner = FaultRunner {
        model: &f.model,
        eval: &f.read_eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    };
    let strats = strategies(f);
    let r = run_campaign(&runner, strats[2].as_ref(), 900, 5);
    assert!(r.ssf > 0.0, "read attack must be possible");
    assert!(!r.attribution.is_empty());
}

#[test]
fn campaigns_are_reproducible_end_to_end() {
    let f = fixture();
    let runner = FaultRunner {
        model: &f.model,
        eval: &f.write_eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    };
    let strats = strategies(f);
    let a = run_campaign(&runner, strats[2].as_ref(), 400, 123);
    let b = run_campaign(&runner, strats[2].as_ref(), 400, 123);
    assert_eq!(a.ssf, b.ssf);
    assert_eq!(a.successes, b.successes);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn hardening_reduces_ssf_end_to_end() {
    use xlmc::harden::{select_top_registers, HardenedSet, HardenedVariant, HardeningModel};
    let f = fixture();
    let runner = FaultRunner {
        model: &f.model,
        eval: &f.write_eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    };
    let strats = strategies(f);
    let baseline = run_campaign(&runner, strats[2].as_ref(), 1_200, 9);
    assert!(baseline.ssf > 0.0);

    let total = f.model.mpu.netlist().dffs().len();
    let (bits, coverage) = select_top_registers(&baseline.attribution, total, 0.05);
    assert!(coverage > 0.3, "top registers should cover real SSF mass");
    let hardened = HardenedVariant::Uniform(HardenedSet::new(bits, HardeningModel::default()));
    assert!(hardened.area_overhead(&f.model) < 0.10);

    let hardened_runner = FaultRunner {
        hardening: Some(&hardened),
        multi_fault: None,
        ..runner
    };
    let after = run_campaign(&hardened_runner, strats[2].as_ref(), 1_200, 9);
    assert!(
        after.ssf < baseline.ssf,
        "hardening must reduce SSF: {} !< {}",
        after.ssf,
        baseline.ssf
    );
}
