//! Statistical acceptance harness for the multilevel estimator.
//!
//! Two obligations, per ISSUE 7:
//!
//! 1. **Unbiasedness (3σ z-test).** On every workload × hardening variant,
//!    the MLMC point estimate must sit within three combined standard
//!    errors of a run-to-halt oracle campaign over the *same* `(seed, n)`
//!    sample stream — the single estimator with the fast-forward
//!    accelerations disabled, so every non-analytic verdict comes from an
//!    RTL resume that runs to halt.
//! 2. **Correction-term provenance.** The folded level-1 statistics must
//!    reproduce *bit-exactly* from the raw paired records: re-derive the
//!    coupled run indices from `MlmcSummary::chunk_levels`, re-evaluate
//!    every pair solo with [`coupled_run_with`], and replay the engine's
//!    own Welford-push / Chan-merge order.

use std::sync::OnceLock;

use xlmc::estimator::{run_campaign_with, CampaignOptions, EstimatorKind, CHUNK_RUNS};
use xlmc::fastforward::SharedConclusionMemo;
use xlmc::flow::FaultRunner;
use xlmc::harden::{HardenedSet, HardenedVariant, HardeningModel};
use xlmc::multilevel::{coupled_run_with, MlmcScratch, SetToSeuMap};
use xlmc::sampling::{baseline_distribution, ExperimentConfig, ImportanceSampling};
use xlmc::stats::RunningStats;
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_soc::{workloads, MpuBit};

/// Six chunks: the four-chunk pilot plus two planned chunks, so the frozen
/// allocation is exercised on every fixture.
const RUNS: usize = 6 * CHUNK_RUNS;
const SEED: u64 = 0xACCE;

/// The model, pre-characterization and sampling config are
/// workload-independent; build them once for the whole harness.
struct Fixture {
    model: SystemModel,
    prechar: Precharacterization,
    cfg: ExperimentConfig,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let model = SystemModel::with_defaults().unwrap();
        let cfg = ExperimentConfig {
            t_max: 16,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            prechar,
            cfg,
        }
    })
}

fn importance(f: &Fixture) -> ImportanceSampling {
    ImportanceSampling::new(
        baseline_distribution(&f.model, &f.cfg),
        &f.model,
        &f.prechar,
        f.cfg.alpha,
        f.cfg.beta,
        f.cfg.radius_options.clone(),
    )
}

fn mlmc_options() -> CampaignOptions {
    CampaignOptions {
        estimator: EstimatorKind::Mlmc,
        ..CampaignOptions::with_threads(2)
    }
}

/// The run-to-halt oracle: the paper's single estimator with every
/// fast-forward acceleration off, so nothing short-circuits the RTL
/// resume.
fn oracle_options() -> CampaignOptions {
    CampaignOptions {
        fast_forward: false,
        ..CampaignOptions::with_threads(2)
    }
}

/// Paired-sample z-test of the MLMC estimate against the oracle on one
/// runner. Both campaigns consume the same per-run `SplitMix64` streams,
/// so the gate marginal of every coupled chunk is bit-identical to the
/// oracle's verdicts on those indices — the discrepancy is pure level-0
/// sampling noise, and the independent-variance band below is
/// conservative.
fn assert_within_three_sigma(runner: &FaultRunner<'_>, label: &str) {
    let f = fixture();
    let strategy = importance(f);
    let mlmc = run_campaign_with(runner, &strategy, RUNS, SEED, &mlmc_options());
    let oracle = run_campaign_with(runner, &strategy, RUNS, SEED, &oracle_options());

    assert_eq!(mlmc.estimator, EstimatorKind::Mlmc);
    let m = mlmc.mlmc.as_ref().expect("mlmc summary present");
    assert!(m.n0 > 0 && m.n1 > 0, "{label}: both levels sampled");
    assert_eq!((m.n0 + m.n1) as usize, RUNS, "{label}: every run folded");
    assert!(
        m.plan_ratio.is_some(),
        "{label}: allocation frozen after the pilot"
    );

    let se = (m.estimator_variance() + oracle.sample_variance / oracle.n as f64)
        .sqrt()
        .max(1e-9);
    let diff = (mlmc.ssf - oracle.ssf).abs();
    assert!(
        diff <= 3.0 * se,
        "{label}: |{:.6} - {:.6}| = {diff:.3e} exceeds 3σ = {:.3e} \
         (s0² {:.3e}, s1² {:.3e}, oracle s² {:.3e})",
        mlmc.ssf,
        oracle.ssf,
        3.0 * se,
        m.var0,
        m.var1_diff,
        oracle.sample_variance,
    );
}

fn hardened_set() -> HardenedVariant {
    HardenedVariant::Uniform(HardenedSet::new(
        [MpuBit::Violation, MpuBit::Enable],
        HardeningModel::default(),
    ))
}

#[test]
fn mlmc_matches_oracle_on_illegal_write() {
    let f = fixture();
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();
    let hardened = hardened_set();
    for (label, hardening) in [
        ("illegal_write", None),
        ("illegal_write+hard", Some(&hardened)),
    ] {
        let runner = FaultRunner {
            model: &f.model,
            eval: &eval,
            prechar: &f.prechar,
            hardening,
            multi_fault: None,
        };
        assert_within_three_sigma(&runner, label);
    }
}

#[test]
fn mlmc_matches_oracle_on_illegal_read() {
    let f = fixture();
    let eval = Evaluation::new(workloads::illegal_read()).unwrap();
    let hardened = hardened_set();
    for (label, hardening) in [
        ("illegal_read", None),
        ("illegal_read+hard", Some(&hardened)),
    ] {
        let runner = FaultRunner {
            model: &f.model,
            eval: &eval,
            prechar: &f.prechar,
            hardening,
            multi_fault: None,
        };
        assert_within_three_sigma(&runner, label);
    }
}

#[test]
fn mlmc_matches_oracle_on_dma_exfiltration() {
    let f = fixture();
    let eval = Evaluation::new(workloads::dma_exfiltration()).unwrap();
    let hardened = hardened_set();
    for (label, hardening) in [("dma", None), ("dma+hard", Some(&hardened))] {
        let runner = FaultRunner {
            model: &f.model,
            eval: &eval,
            prechar: &f.prechar,
            hardening,
            multi_fault: None,
        };
        assert_within_three_sigma(&runner, label);
    }
}

/// Regression: `--replay N` on an MLMC campaign must compare at the level
/// the campaign evaluated run `N`, not by re-running the gate flow. The
/// target here is deliberately a pilot level-0 run whose gate and RTL
/// verdicts differ — replaying the wrong level would fail the in-engine
/// cross-check (it panics on divergence).
#[test]
fn replay_of_a_level0_run_compares_at_level_zero() {
    let f = fixture();
    // illegal_read is the fixture workload with a non-empty cross-level
    // gap inside the pilot's level-0 chunks at this seed.
    let eval = Evaluation::new(workloads::illegal_read()).unwrap();
    let runner = FaultRunner {
        model: &f.model,
        eval: &eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    };
    let strategy = importance(f);

    // Pilot level-0 chunks are the odd pilot indices: chunks 1 and 3.
    let map = SetToSeuMap::build(&f.model, &eval, &f.prechar);
    let memo = SharedConclusionMemo::default();
    let mut scratch = MlmcScratch::default();
    let target = [1usize, 3]
        .iter()
        .flat_map(|&c| c * CHUNK_RUNS..(c + 1) * CHUNK_RUNS)
        .find(|&i| {
            let rec = coupled_run_with(
                &runner,
                &map,
                &strategy,
                SEED,
                i as u64,
                &mut scratch,
                &memo,
            );
            rec.gate_success != rec.rtl_success
        })
        .expect("a pilot level-0 run where the levels disagree") as u64;

    let options = CampaignOptions {
        replay: Some(target),
        ..mlmc_options()
    };
    // Panics inside the engine's cross-check if the replay re-derives the
    // wrong level's verdict.
    let result = run_campaign_with(&runner, &strategy, RUNS, SEED, &options);
    let m = result.mlmc.as_ref().expect("mlmc summary present");
    assert_eq!(
        m.chunk_levels[target as usize / CHUNK_RUNS],
        0,
        "the probed run must sit in a level-0 chunk"
    );
}

/// Replay every coupled run solo and reproduce the campaign's folded
/// level-1 statistics bit-for-bit: same per-run records, same Welford push
/// order within each chunk, same Chan merge order across chunks.
#[test]
fn correction_term_reproduces_from_raw_paired_records() {
    let f = fixture();
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();
    let runner = FaultRunner {
        model: &f.model,
        eval: &eval,
        prechar: &f.prechar,
        hardening: None,
        multi_fault: None,
    };
    let strategy = importance(f);
    let result = run_campaign_with(&runner, &strategy, RUNS, SEED, &mlmc_options());
    let m = result.mlmc.as_ref().expect("mlmc summary present");
    assert_eq!(m.chunk_levels.len(), RUNS.div_ceil(CHUNK_RUNS));

    let map = SetToSeuMap::build(&f.model, &eval, &f.prechar);
    let memo = SharedConclusionMemo::default();
    let mut scratch = MlmcScratch::default();
    let mut diff = RunningStats::new();
    let mut gate = RunningStats::new();
    let mut rtl = RunningStats::new();
    let mut records = Vec::new();
    for (c, &level) in m.chunk_levels.iter().enumerate() {
        if level != 1 {
            continue;
        }
        let mut chunk_diff = RunningStats::new();
        let mut chunk_gate = RunningStats::new();
        let mut chunk_rtl = RunningStats::new();
        for i in c * CHUNK_RUNS..((c + 1) * CHUNK_RUNS).min(result.n) {
            let rec = coupled_run_with(
                &runner,
                &map,
                &strategy,
                SEED,
                i as u64,
                &mut scratch,
                &memo,
            );
            chunk_diff.push(rec.diff());
            chunk_gate.push(rec.gate_term());
            chunk_rtl.push(rec.rtl_term());
            records.push(rec);
        }
        diff.merge(&chunk_diff);
        gate.merge(&chunk_gate);
        rtl.merge(&chunk_rtl);
    }

    assert_eq!(diff.count(), m.n1, "coupled run indices re-derived exactly");
    assert_eq!(diff.mean().to_bits(), m.mean1_diff.to_bits());
    assert_eq!(diff.variance().to_bits(), m.var1_diff.to_bits());
    assert_eq!(gate.mean().to_bits(), m.mean1_gate.to_bits());
    assert_eq!(rtl.mean().to_bits(), m.mean1_rtl.to_bits());

    // The folded correction mean is exactly the gap between the raw
    // marginal means: mean(w·e_gate) − mean(w·e_rtl) over the same
    // records (up to summation rounding).
    let n1 = records.len() as f64;
    let mean_gate: f64 = records.iter().map(|r| r.gate_term()).sum::<f64>() / n1;
    let mean_rtl: f64 = records.iter().map(|r| r.rtl_term()).sum::<f64>() / n1;
    assert!(
        (mean_gate - mean_rtl - m.mean1_diff).abs() < 1e-12,
        "{mean_gate} - {mean_rtl} vs {}",
        m.mean1_diff
    );

    // And the telescoped point estimate is the level-0 mean plus that
    // correction.
    assert!((result.ssf - (m.mean0 + m.mean1_diff)).abs() < 1e-15);
}
