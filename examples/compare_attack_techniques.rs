//! Compare attack techniques: how the intrinsic uncertainty of the
//! injection equipment changes the system's exposure.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p xlmc --example compare_attack_techniques
//! ```
//!
//! The paper's first design-support use case: "quantitatively characterize
//! and compare the system vulnerability against different fault attack
//! techniques". Each technique below is one holistic attacker model
//! `f_{T,P}` — same system, same benchmark, different temporal accuracy,
//! spatial accuracy and spot size — and the framework prices each one as an
//! SSF value.

use xlmc::estimator::run_campaign;
use xlmc::flow::FaultRunner;
use xlmc::sampling::{subblock_cells, ExperimentConfig, RandomSampling};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_fault::{AttackDistribution, RadiusDist, SpatialDist, TemporalDist};
use xlmc_soc::{workloads, MpuBit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SystemModel::with_defaults()?;
    let eval = Evaluation::new(workloads::illegal_write())?;
    let cfg = ExperimentConfig::default();
    let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
    let runner = FaultRunner {
        model: &model,
        eval: &eval,
        prechar: &prechar,
        hardening: None,
        multi_fault: None,
    };

    let subblock = subblock_cells(&model, cfg.subblock_fraction);
    let enable = model.mpu.dff(MpuBit::Enable);

    // Each entry is a different physical attack technique, modeled through
    // its parameter distributions.
    let techniques: Vec<(&str, &str, AttackDistribution)> = vec![
        (
            "wide radiation",
            "poor aim, broad spot, 50-cycle timing jitter",
            AttackDistribution {
                temporal: TemporalDist::uniform(1, 50),
                spatial: SpatialDist::UniformOverCells(subblock.clone()),
                radius: RadiusDist::uniform(vec![1.0, 2.0, 4.0]),
            },
        ),
        (
            "focused beam",
            "tight spot, same timing jitter",
            AttackDistribution {
                temporal: TemporalDist::uniform(1, 50),
                spatial: SpatialDist::UniformOverCells(subblock.clone()),
                radius: RadiusDist::uniform(vec![0.0, 1.0]),
            },
        ),
        (
            "laser + trigger",
            "cycle-accurate trigger, cell-accurate aim",
            AttackDistribution {
                temporal: TemporalDist::uniform(2, 6),
                spatial: SpatialDist::Delta(enable),
                radius: RadiusDist::fixed(0.0),
            },
        ),
        (
            "imprecise glitcher",
            "100-cycle timing window, random cell",
            AttackDistribution {
                temporal: TemporalDist::uniform(1, 100),
                spatial: SpatialDist::UniformOverCells(subblock.clone()),
                radius: RadiusDist::fixed(1.0),
            },
        ),
    ];

    println!(
        "{:>20}  {:>10}  {:>9}  notes",
        "technique", "SSF", "succ/3000"
    );
    for (name, notes, f) in techniques {
        let result = run_campaign(&runner, &RandomSampling::new(f), 3_000, 99);
        println!(
            "{:>20}  {:>10.5}  {:>9}  {}",
            name, result.ssf, result.successes, notes
        );
    }
    // A different technique family entirely: clock glitching. The
    // parameter vector here is the glitch depth (shortened capture
    // period); the timing distance works exactly as for radiation.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    let critical = model.glitch.critical_path_ps();
    for (name, notes, periods) in [
        (
            "deep clock glitch",
            "capture period 10-40% of the critical path",
            (0.10, 0.40),
        ),
        (
            "shallow clock glitch",
            "capture period 80-99% of the critical path",
            (0.80, 0.99),
        ),
    ] {
        let n = 3_000;
        let mut succ = 0usize;
        for _ in 0..n {
            let t = rng.gen_range(1..=50);
            let depth = rng.gen_range(periods.0..periods.1);
            let out = runner.run_glitch(t, critical * depth, &mut rng);
            if out.success {
                succ += 1;
            }
        }
        println!(
            "{:>20}  {:>10.5}  {:>9}  {}",
            name,
            succ as f64 / n as f64,
            succ,
            notes
        );
    }

    println!(
        "\nThe probabilistic attack model is what makes these comparable: the\n\
         same hardware has orders-of-magnitude different exposure depending\n\
         on the technique's temporal and spatial accuracy (paper Figure 11)."
    );
    Ok(())
}
