//! Quickstart: estimate the System Security Factor of the stock MPU in a
//! few dozen lines.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p xlmc --example quickstart -- --threads 4
//! ```
//!
//! `--threads N` spreads the campaign over N workers; the estimate is
//! bit-identical at any thread count.
//!
//! The flow mirrors the paper end to end:
//!
//! 1. build the gate-level system model (elaborated MPU + placement),
//! 2. record the golden run of the illegal-write benchmark,
//! 3. pre-characterize the system (cones, correlations, lifetimes),
//! 4. define the attacker distribution `f_{T,P}`,
//! 5. run a Monte Carlo campaign with the importance-sampling strategy,
//! 6. read off the SSF estimate with its convergence statistics.

use xlmc::estimator::{run_campaign_with, CampaignOptions};
use xlmc::flow::FaultRunner;
use xlmc::sampling::{baseline_distribution, ExperimentConfig, ImportanceSampling};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_soc::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The system under evaluation: the microcontroller SoC with its MPU
    //    elaborated to gates and placed.
    let model = SystemModel::with_defaults()?;
    println!(
        "MPU netlist: {} combinational gates, {} registers",
        model.mpu.netlist().stats().combinational,
        model.mpu.netlist().stats().dffs,
    );

    // 2. The benchmark: a user-mode process attempting an illegal write;
    //    the golden run locates the target cycle T_t where the MPU catches
    //    it.
    let eval = Evaluation::new(workloads::illegal_write())?;
    println!(
        "golden run: {} cycles, security mechanism fires at T_t = {}",
        eval.golden.cycles, eval.target_cycle
    );

    // 3. Pre-characterization: responding-signal cones, bit-flip
    //    correlations, register lifetimes and classification.
    let cfg = ExperimentConfig::default();
    let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
    println!(
        "pre-characterization: {:.0}% of registers are memory-type",
        prechar.registers.memory_fraction() * 100.0
    );

    // 4. The attacker model: radiation strikes with uniform timing
    //    uncertainty over 50 cycles and uniform aim over a sub-block of the
    //    MPU.
    let f = baseline_distribution(&model, &cfg);

    // 5. A 2,000-attack campaign with the paper's importance-sampling
    //    strategy, sharded over `--threads` workers.
    let strategy = ImportanceSampling::new(
        f,
        &model,
        &prechar,
        cfg.alpha,
        cfg.beta,
        cfg.radius_options.clone(),
    );
    let runner = FaultRunner {
        model: &model,
        eval: &eval,
        prechar: &prechar,
        hardening: None,
        multi_fault: None,
    };
    let result = run_campaign_with(&runner, &strategy, 2_000, 42, &CampaignOptions::from_args());

    // 6. The verdict.
    println!("\nSSF estimate      : {:.5}", result.ssf);
    println!("sample variance   : {:.3e}", result.sample_variance);
    println!(
        "Pr[|err| >= 0.01] : <= {:.3} (LLN bound)",
        result.lln_bound(0.01)
    );
    println!(
        "strike outcomes   : {} masked / {} memory-only / {} mixed",
        result.class_counts.masked, result.class_counts.memory_only, result.class_counts.mixed
    );
    println!(
        "evaluation paths  : {} analytical, {} RTL resumes",
        result.analytic_runs, result.rtl_runs
    );
    Ok(())
}
