//! Countermeasure evaluation: find the security-critical registers and
//! measure what hardening them buys.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p xlmc --example harden_registers
//! ```
//!
//! This is the paper's third design-support use case: "evaluate and compare
//! the effectiveness of different countermeasures and guide further design
//! optimization". The example sweeps the hardened-register budget (1%, 3%,
//! 10% of registers) and reports the SSF reduction against the area cost of
//! each choice, using built-in soft-error-resilient flip-flops (10x
//! resilience at 3x cell area, paper refs [19, 20]).

use xlmc::estimator::run_campaign;
use xlmc::flow::FaultRunner;
use xlmc::harden::{select_top_registers, HardenedSet, HardenedVariant, HardeningModel};
use xlmc::sampling::{baseline_distribution, ExperimentConfig, ImportanceSampling};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_soc::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SystemModel::with_defaults()?;
    let eval = Evaluation::new(workloads::illegal_write())?;
    let cfg = ExperimentConfig::default();
    let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
    let f = baseline_distribution(&model, &cfg);
    let strategy = ImportanceSampling::new(
        f,
        &model,
        &prechar,
        cfg.alpha,
        cfg.beta,
        cfg.radius_options.clone(),
    );

    // Baseline campaign: SSF plus the per-register attribution that tells
    // us where the vulnerability actually lives.
    let runner = FaultRunner {
        model: &model,
        eval: &eval,
        prechar: &prechar,
        hardening: None,
        multi_fault: None,
    };
    let n = 6_000;
    let baseline = run_campaign(&runner, &strategy, n, 7);
    println!("baseline SSF = {:.5}\n", baseline.ssf);

    let total_regs = model.mpu.netlist().dffs().len();
    println!(
        "{:>8}  {:>10}  {:>9}  {:>10}  {:>9}  {:>9}",
        "budget", "registers", "coverage", "SSF", "reduction", "area"
    );
    for fraction in [0.01, 0.03, 0.10] {
        let (bits, coverage) = select_top_registers(&baseline.attribution, total_regs, fraction);
        let hardened =
            HardenedVariant::Uniform(HardenedSet::new(bits.clone(), HardeningModel::default()));
        let overhead = hardened.area_overhead(&model);
        let hardened_runner = FaultRunner {
            hardening: Some(&hardened),
            multi_fault: None,
            ..runner
        };
        let after = run_campaign(&hardened_runner, &strategy, n, 8);
        let reduction = if after.ssf > 0.0 {
            format!("{:.1}x", baseline.ssf / after.ssf)
        } else {
            ">measurable".into()
        };
        println!(
            "{:>7.0}%  {:>10}  {:>8.1}%  {:>10.5}  {:>9}  {:>8.2}%",
            fraction * 100.0,
            bits.len(),
            coverage * 100.0,
            after.ssf,
            reduction,
            overhead * 100.0,
        );
    }
    println!(
        "\npaper: hardening the top 3% of registers cuts SSF by up to 6.5x \
         at under 2% MPU area overhead"
    );
    Ok(())
}
