//! A full attack campaign, narrated: watch single fault injections travel
//! through the cross-level flow.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p xlmc --example mpu_attack_campaign
//! ```
//!
//! Where `quickstart` aggregates thousands of runs into one SSF number,
//! this example walks through a handful of hand-picked attacks and prints
//! what the flow does with each: the injection cycle, the latched error
//! pattern, the classification, the evaluation path, and the outcome. It
//! then verifies one successful attack by replaying it at RTL level and
//! inspecting the final architectural state.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xlmc::flow::FaultRunner;
use xlmc::sampling::ExperimentConfig;
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_fault::AttackSample;
use xlmc_soc::workloads::{self, ATTACK_VALUE, SECRET_ADDR};
use xlmc_soc::MpuBit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SystemModel::with_defaults()?;
    let eval = Evaluation::new(workloads::illegal_write())?;
    let cfg = ExperimentConfig::default();
    let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
    let runner = FaultRunner {
        model: &model,
        eval: &eval,
        prechar: &prechar,
        hardening: None,
        multi_fault: None,
    };
    let mut rng = StdRng::seed_from_u64(1);

    println!(
        "benchmark `{}`: {}\ngolden run: {} cycles, T_t = {}\n",
        eval.workload.name, eval.workload.description, eval.golden.cycles, eval.target_cycle
    );

    // A gallery of attacks with different physics.
    let attacks: Vec<(&str, AttackSample)> = vec![
        (
            "SEU on the violation register, one cycle early",
            AttackSample {
                t: 1,
                center: model.mpu.dff(MpuBit::Violation),
                radius: 0.0,
                phase: 0,
            },
        ),
        (
            "same register, but 20 cycles too early",
            AttackSample {
                t: 20,
                center: model.mpu.dff(MpuBit::Violation),
                radius: 0.0,
                phase: 0,
            },
        ),
        (
            "SEU on the MPU enable bit, 30 cycles before T_t",
            AttackSample {
                t: 30,
                center: model.mpu.dff(MpuBit::Enable),
                radius: 0.0,
                phase: 0,
            },
        ),
        (
            "SEU on an unused region's base register",
            AttackSample {
                t: 10,
                center: model.mpu.dff(MpuBit::Base(2, 9)),
                radius: 0.0,
                phase: 0,
            },
        ),
        (
            "radiation spot (r=1) over the region-0 limit register",
            AttackSample {
                t: 8,
                center: model.mpu.dff(MpuBit::Limit(0, 13)),
                radius: 1.0,
                phase: 4,
            },
        ),
    ];

    for (label, sample) in &attacks {
        let outcome = runner.run(sample, &mut rng);
        println!("attack: {label}");
        println!(
            "  t = {} (T_e = {:?}), spot r = {}, phase bin {}",
            sample.t, outcome.injection_cycle, sample.radius, sample.phase
        );
        let bits: Vec<String> = outcome.faulty_bits.iter().map(|b| b.dff_name()).collect();
        println!(
            "  latched errors : [{}]",
            if bits.is_empty() {
                "none".to_string()
            } else {
                bits.join(", ")
            }
        );
        println!(
            "  class = {:?}, evaluated {}, attack {}",
            outcome.class,
            if outcome.analytic {
                "analytically"
            } else {
                "by RTL resume"
            },
            if outcome.success {
                "SUCCEEDED"
            } else {
                "failed"
            }
        );
        println!();
    }

    // Independently verify the enable-bit attack at RTL level.
    println!("independent RTL verification of the enable-bit attack:");
    let te = eval.target_cycle - 30;
    let mut soc = eval.golden.nearest_checkpoint(te).clone();
    while soc.cycle < te {
        soc.step();
    }
    soc.step();
    soc.mpu.toggle_bit(MpuBit::Enable);
    soc.run_until_halt(eval.max_cycles);
    println!(
        "  mem[{SECRET_ADDR:#06x}] = {:#06x} (attacker planted {ATTACK_VALUE:#06x})",
        soc.mem_word(SECRET_ADDR)
    );
    println!(
        "  isolated flag   = {} (0 means the security response never fired)",
        soc.core.isolated
    );
    assert!(eval.workload.goal.succeeded(&soc));
    println!("  -> the illegal write landed and the process was never isolated");
    Ok(())
}
