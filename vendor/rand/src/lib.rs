//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the `RngCore` /
//! `Rng` / `SeedableRng` traits, uniform range sampling over the integer
//! and float types the crates draw from, and a deterministic `StdRng`.
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, which is explicitly allowed: upstream
//! documents `StdRng` as non-portable across versions, and every consumer
//! in this workspace only relies on *within-build* determinism.

use std::ops::{Range, RangeInclusive};

/// Error type of the fallible `RngCore` methods (never produced here).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible fill (infallible in this implementation).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that `Rng::gen` can produce from a uniform bit stream.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = uniform_u128(rng, span);
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform value in `[0, span)` by rejection sampling.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    if span > u64::MAX as u128 {
        // Only reachable for a full-width inclusive range.
        return rng.next_u64() as u128;
    }
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = low + u * (high - low);
        // Floating rounding can land exactly on `high`; clamp back into
        // the half-open interval like upstream does.
        if v < high {
            v
        } else {
            low.max(high - (high - low) * f64::EPSILON)
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        low + u * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(rng, start, end)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of type `T` (`f64` in `[0, 1)`, full-width
    /// integers, a fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        T: SampleUniform,
        Ra: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanded through SplitMix64 like
    /// upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood 2014), upstream's expander.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! The standard generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// (Blackman & Vigna 2018). Statistically strong and fast; not
    /// stream-compatible with upstream's ChaCha12 `StdRng`, which upstream
    /// documents as a non-guarantee anyway.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // The all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60_000;
        let mut counts = [0usize; 6];
        for _ in 0..n {
            counts[rng.gen_range(0usize..6)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / n as f64;
            assert!((p - 1.0 / 6.0).abs() < 0.01, "bucket p = {p}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let mut reborrow = dyn_rng;
        let x = reborrow.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
