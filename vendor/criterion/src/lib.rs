//! Offline miniature benchmark harness.
//!
//! Implements the slice of the `criterion` 0.5 API this workspace's
//! benches use — `criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups, `Bencher::{iter, iter_batched}` and `BatchSize` —
//! with honest wall-clock measurement: per benchmark it warms up briefly,
//! then times batches of iterations and reports the mean, min and max
//! time per iteration to stdout.
//!
//! When invoked by `cargo test` (which passes `--test` to `harness =
//! false` bench targets), every benchmark body runs exactly once as a
//! smoke test and no timing is printed, mirroring upstream behavior.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. Only a hint here; the stub
/// always runs one setup per measured routine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Re-export of the standard black box, like upstream provides.
pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
struct Mode {
    /// Smoke-test mode (`cargo test` passing `--test`): run once, no timing.
    smoke: bool,
}

impl Mode {
    fn detect() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Self { smoke }
    }
}

/// The benchmark manager.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: Mode::detect(),
            sample_size: 60,
            measurement: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: self.mode,
            sample_size,
            measurement: self.measurement,
            samples: Vec::new(),
        };
        f(&mut b);
        if self.mode.smoke {
            return;
        }
        if b.samples.is_empty() {
            println!("{name:<40} (no measurement)");
            return;
        }
        b.samples.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
        let lo = b.samples[0];
        let hi = b.samples[b.samples.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(mean),
            fmt_ns(hi)
        );
    }
}

/// Human-readable duration from nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Set the target measurement time for this group (accepted and
    /// currently folded into the global setting).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    measurement: Duration,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode.smoke {
            black_box(routine());
            return;
        }
        // Warm up and size the batch so one sample costs roughly
        // measurement / sample_size.
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement.as_nanos() / self.sample_size.max(1) as u128;
        let batch = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_secs_f64() * 1e9 / batch as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.mode.smoke {
            black_box(routine(setup()));
            return;
        }
        let input = setup();
        let warmup_start = Instant::now();
        black_box(routine(input));
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement.as_nanos() / self.sample_size.max(1) as u128;
        let batch = (per_sample / once.as_nanos().max(1)).clamp(1, 100_000) as usize;
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

/// Bundle benchmark functions into a group runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion {
            mode: Mode { smoke: false },
            sample_size: 5,
            measurement: Duration::from_millis(10),
        };
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 5);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion {
            mode: Mode { smoke: false },
            sample_size: 3,
            measurement: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn format_covers_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12_000_000_000.0).contains('s'));
    }
}
