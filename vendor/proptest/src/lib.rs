//! Offline miniature property-testing engine.
//!
//! Implements the subset of the `proptest` 1.x API this workspace's
//! property tests use: the `proptest!` macro, `Strategy` with `prop_map`,
//! `any`, `Just`, ranges, tuples, arrays, `prop_oneof!`,
//! `prop::collection::{vec, hash_set}` and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case reports its seed and inputs via the
//!   panic message instead of minimizing them;
//! * generation is driven by a fixed per-test SplitMix64 stream, so runs
//!   are fully deterministic without a persistence file.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic generation stream handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream unique to (test name, case index), stable across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 bits of the stream (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config and failure plumbing
// ---------------------------------------------------------------------------

/// Run configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property assertion.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// Weighted union of same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics when the total weight is zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Self { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Size specifications accepted by the collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    ///
    /// The element strategy must be able to produce at least `size`
    /// distinct values; generation gives up (with a smaller set) after a
    /// bounded number of duplicate draws, like upstream.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0;
            while out.len() < target && attempts < 64 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u8..9, v in prop::collection::vec(any::<u64>(), 1..4)) {
///         prop_assert!(x < 9);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                let case_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = case_result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Discard the current case unless `cond` holds (counted as a pass here;
/// this stub does not regenerate discarded cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    pub mod prop {
        //! Mirrors `proptest::prelude::prop`.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in -5i64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y), "y = {}", y);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u64>(), 1..5),
            s in prop::collection::hash_set(0u32..100, 2..4),
        ) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!((2..4).contains(&s.len()));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            3 => (0u8..4).prop_map(|v| v as u32),
            1 => Just(99u32),
        ]) {
            prop_assert!(x < 4 || x == 99);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(any::<u64>(), 0..8);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|c| strat.generate(&mut TestRng::for_case("det", c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|c| strat.generate(&mut TestRng::for_case("det", c)))
            .collect();
        assert_eq!(a, b);
    }
}
