//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace only uses serde derives as declarations of intent — no
//! code path serializes anything yet (there is no format crate in the
//! offline build). The derives therefore expand to nothing, which keeps
//! every `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attribute
//! compiling without pulling in the real proc-macro stack.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
