//! Offline `serde` stub.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compiles
//! unchanged. No trait machinery is provided because nothing in the
//! workspace serializes through serde at runtime (reports are hand-written
//! text/JSON); swapping the real crate back in is a one-line change in the
//! workspace manifest.

pub use serde_derive::{Deserialize, Serialize};
