/root/repo/target/release/examples/harden_registers-5b2dd35fa4dbca3c.d: crates/core/../../examples/harden_registers.rs

/root/repo/target/release/examples/harden_registers-5b2dd35fa4dbca3c: crates/core/../../examples/harden_registers.rs

crates/core/../../examples/harden_registers.rs:
