/root/repo/target/release/examples/quickstart-77b399f6fd1a431c.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-77b399f6fd1a431c: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
