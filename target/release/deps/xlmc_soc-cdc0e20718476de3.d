/root/repo/target/release/deps/xlmc_soc-cdc0e20718476de3.d: crates/soc/src/lib.rs crates/soc/src/asm.rs crates/soc/src/core.rs crates/soc/src/dma.rs crates/soc/src/golden.rs crates/soc/src/isa.rs crates/soc/src/mpu.rs crates/soc/src/mpu_synth.rs crates/soc/src/soc.rs crates/soc/src/workloads.rs

/root/repo/target/release/deps/libxlmc_soc-cdc0e20718476de3.rlib: crates/soc/src/lib.rs crates/soc/src/asm.rs crates/soc/src/core.rs crates/soc/src/dma.rs crates/soc/src/golden.rs crates/soc/src/isa.rs crates/soc/src/mpu.rs crates/soc/src/mpu_synth.rs crates/soc/src/soc.rs crates/soc/src/workloads.rs

/root/repo/target/release/deps/libxlmc_soc-cdc0e20718476de3.rmeta: crates/soc/src/lib.rs crates/soc/src/asm.rs crates/soc/src/core.rs crates/soc/src/dma.rs crates/soc/src/golden.rs crates/soc/src/isa.rs crates/soc/src/mpu.rs crates/soc/src/mpu_synth.rs crates/soc/src/soc.rs crates/soc/src/workloads.rs

crates/soc/src/lib.rs:
crates/soc/src/asm.rs:
crates/soc/src/core.rs:
crates/soc/src/dma.rs:
crates/soc/src/golden.rs:
crates/soc/src/isa.rs:
crates/soc/src/mpu.rs:
crates/soc/src/mpu_synth.rs:
crates/soc/src/soc.rs:
crates/soc/src/workloads.rs:
