/root/repo/target/release/deps/fig07_error_patterns-3abda61b2bda0595.d: crates/bench/src/bin/fig07_error_patterns.rs

/root/repo/target/release/deps/fig07_error_patterns-3abda61b2bda0595: crates/bench/src/bin/fig07_error_patterns.rs

crates/bench/src/bin/fig07_error_patterns.rs:
