/root/repo/target/release/deps/criterion-b200f00769e91b2f.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b200f00769e91b2f.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b200f00769e91b2f.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
