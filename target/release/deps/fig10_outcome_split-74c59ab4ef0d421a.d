/root/repo/target/release/deps/fig10_outcome_split-74c59ab4ef0d421a.d: crates/bench/src/bin/fig10_outcome_split.rs

/root/repo/target/release/deps/fig10_outcome_split-74c59ab4ef0d421a: crates/bench/src/bin/fig10_outcome_split.rs

crates/bench/src/bin/fig10_outcome_split.rs:
