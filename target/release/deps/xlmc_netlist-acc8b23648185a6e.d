/root/repo/target/release/deps/xlmc_netlist-acc8b23648185a6e.d: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/cell.rs crates/netlist/src/cones.rs crates/netlist/src/netlist.rs crates/netlist/src/placement.rs crates/netlist/src/topo.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs

/root/repo/target/release/deps/libxlmc_netlist-acc8b23648185a6e.rlib: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/cell.rs crates/netlist/src/cones.rs crates/netlist/src/netlist.rs crates/netlist/src/placement.rs crates/netlist/src/topo.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs

/root/repo/target/release/deps/libxlmc_netlist-acc8b23648185a6e.rmeta: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/cell.rs crates/netlist/src/cones.rs crates/netlist/src/netlist.rs crates/netlist/src/placement.rs crates/netlist/src/topo.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/cones.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/placement.rs:
crates/netlist/src/topo.rs:
crates/netlist/src/unroll.rs:
crates/netlist/src/verilog.rs:
