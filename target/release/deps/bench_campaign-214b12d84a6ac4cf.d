/root/repo/target/release/deps/bench_campaign-214b12d84a6ac4cf.d: crates/bench/src/bin/bench_campaign.rs

/root/repo/target/release/deps/bench_campaign-214b12d84a6ac4cf: crates/bench/src/bin/bench_campaign.rs

crates/bench/src/bin/bench_campaign.rs:
