/root/repo/target/release/deps/xlmc_fault-a82df61cee9788f4.d: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs

/root/repo/target/release/deps/libxlmc_fault-a82df61cee9788f4.rlib: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs

/root/repo/target/release/deps/libxlmc_fault-a82df61cee9788f4.rmeta: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs

crates/fault/src/lib.rs:
crates/fault/src/distribution.rs:
crates/fault/src/sample.rs:
crates/fault/src/spot.rs:
