/root/repo/target/release/deps/hardening_study-b03e7bba80e4012a.d: crates/bench/src/bin/hardening_study.rs

/root/repo/target/release/deps/hardening_study-b03e7bba80e4012a: crates/bench/src/bin/hardening_study.rs

crates/bench/src/bin/hardening_study.rs:
