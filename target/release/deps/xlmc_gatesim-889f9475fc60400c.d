/root/repo/target/release/deps/xlmc_gatesim-889f9475fc60400c.d: crates/gatesim/src/lib.rs crates/gatesim/src/bitparallel.rs crates/gatesim/src/cycle.rs crates/gatesim/src/glitch.rs crates/gatesim/src/signature.rs crates/gatesim/src/sta.rs crates/gatesim/src/transient.rs

/root/repo/target/release/deps/libxlmc_gatesim-889f9475fc60400c.rlib: crates/gatesim/src/lib.rs crates/gatesim/src/bitparallel.rs crates/gatesim/src/cycle.rs crates/gatesim/src/glitch.rs crates/gatesim/src/signature.rs crates/gatesim/src/sta.rs crates/gatesim/src/transient.rs

/root/repo/target/release/deps/libxlmc_gatesim-889f9475fc60400c.rmeta: crates/gatesim/src/lib.rs crates/gatesim/src/bitparallel.rs crates/gatesim/src/cycle.rs crates/gatesim/src/glitch.rs crates/gatesim/src/signature.rs crates/gatesim/src/sta.rs crates/gatesim/src/transient.rs

crates/gatesim/src/lib.rs:
crates/gatesim/src/bitparallel.rs:
crates/gatesim/src/cycle.rs:
crates/gatesim/src/glitch.rs:
crates/gatesim/src/signature.rs:
crates/gatesim/src/sta.rs:
crates/gatesim/src/transient.rs:
