/root/repo/target/release/deps/fig08_sampling_dist-3ab2f4262841c1d0.d: crates/bench/src/bin/fig08_sampling_dist.rs

/root/repo/target/release/deps/fig08_sampling_dist-3ab2f4262841c1d0: crates/bench/src/bin/fig08_sampling_dist.rs

crates/bench/src/bin/fig08_sampling_dist.rs:
