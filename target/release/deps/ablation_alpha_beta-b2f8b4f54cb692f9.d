/root/repo/target/release/deps/ablation_alpha_beta-b2f8b4f54cb692f9.d: crates/bench/src/bin/ablation_alpha_beta.rs

/root/repo/target/release/deps/ablation_alpha_beta-b2f8b4f54cb692f9: crates/bench/src/bin/ablation_alpha_beta.rs

crates/bench/src/bin/ablation_alpha_beta.rs:
