/root/repo/target/release/deps/kernels-b892da321b660b51.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-b892da321b660b51: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
