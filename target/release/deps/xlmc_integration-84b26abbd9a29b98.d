/root/repo/target/release/deps/xlmc_integration-84b26abbd9a29b98.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libxlmc_integration-84b26abbd9a29b98.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libxlmc_integration-84b26abbd9a29b98.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
