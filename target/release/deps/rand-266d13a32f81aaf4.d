/root/repo/target/release/deps/rand-266d13a32f81aaf4.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-266d13a32f81aaf4.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-266d13a32f81aaf4.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
