/root/repo/target/release/deps/fig09_convergence-10f71401a408c313.d: crates/bench/src/bin/fig09_convergence.rs

/root/repo/target/release/deps/fig09_convergence-10f71401a408c313: crates/bench/src/bin/fig09_convergence.rs

crates/bench/src/bin/fig09_convergence.rs:
