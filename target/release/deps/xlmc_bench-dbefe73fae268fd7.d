/root/repo/target/release/deps/xlmc_bench-dbefe73fae268fd7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxlmc_bench-dbefe73fae268fd7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxlmc_bench-dbefe73fae268fd7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
