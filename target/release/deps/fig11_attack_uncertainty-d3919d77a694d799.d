/root/repo/target/release/deps/fig11_attack_uncertainty-d3919d77a694d799.d: crates/bench/src/bin/fig11_attack_uncertainty.rs

/root/repo/target/release/deps/fig11_attack_uncertainty-d3919d77a694d799: crates/bench/src/bin/fig11_attack_uncertainty.rs

crates/bench/src/bin/fig11_attack_uncertainty.rs:
