/root/repo/target/release/deps/fig04_characterization-9d6723d02e1424cc.d: crates/bench/src/bin/fig04_characterization.rs

/root/repo/target/release/deps/fig04_characterization-9d6723d02e1424cc: crates/bench/src/bin/fig04_characterization.rs

crates/bench/src/bin/fig04_characterization.rs:
