/root/repo/target/release/deps/proptest-d243eafe236272db.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d243eafe236272db.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d243eafe236272db.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
