/root/repo/target/debug/examples/harden_registers-9830769af2c4d260.d: crates/core/../../examples/harden_registers.rs Cargo.toml

/root/repo/target/debug/examples/libharden_registers-9830769af2c4d260.rmeta: crates/core/../../examples/harden_registers.rs Cargo.toml

crates/core/../../examples/harden_registers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
