/root/repo/target/debug/examples/mpu_attack_campaign-4df52f77911edaf3.d: crates/core/../../examples/mpu_attack_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libmpu_attack_campaign-4df52f77911edaf3.rmeta: crates/core/../../examples/mpu_attack_campaign.rs Cargo.toml

crates/core/../../examples/mpu_attack_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
