/root/repo/target/debug/examples/quickstart-3b7951e7cd9d8c2c.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3b7951e7cd9d8c2c.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
