/root/repo/target/debug/examples/compare_attack_techniques-efb69f39b19e376d.d: crates/core/../../examples/compare_attack_techniques.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_attack_techniques-efb69f39b19e376d.rmeta: crates/core/../../examples/compare_attack_techniques.rs Cargo.toml

crates/core/../../examples/compare_attack_techniques.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
