/root/repo/target/debug/examples/compare_attack_techniques-ca9adbb384d16bde.d: crates/core/../../examples/compare_attack_techniques.rs

/root/repo/target/debug/examples/compare_attack_techniques-ca9adbb384d16bde: crates/core/../../examples/compare_attack_techniques.rs

crates/core/../../examples/compare_attack_techniques.rs:
