/root/repo/target/debug/examples/mpu_attack_campaign-f8a26eb358234865.d: crates/core/../../examples/mpu_attack_campaign.rs

/root/repo/target/debug/examples/mpu_attack_campaign-f8a26eb358234865: crates/core/../../examples/mpu_attack_campaign.rs

crates/core/../../examples/mpu_attack_campaign.rs:
