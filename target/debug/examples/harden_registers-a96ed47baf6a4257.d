/root/repo/target/debug/examples/harden_registers-a96ed47baf6a4257.d: crates/core/../../examples/harden_registers.rs

/root/repo/target/debug/examples/harden_registers-a96ed47baf6a4257: crates/core/../../examples/harden_registers.rs

crates/core/../../examples/harden_registers.rs:
