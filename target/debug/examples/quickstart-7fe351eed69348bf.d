/root/repo/target/debug/examples/quickstart-7fe351eed69348bf.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7fe351eed69348bf: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
