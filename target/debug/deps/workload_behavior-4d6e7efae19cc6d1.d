/root/repo/target/debug/deps/workload_behavior-4d6e7efae19cc6d1.d: crates/integration/../../tests/workload_behavior.rs

/root/repo/target/debug/deps/workload_behavior-4d6e7efae19cc6d1: crates/integration/../../tests/workload_behavior.rs

crates/integration/../../tests/workload_behavior.rs:
