/root/repo/target/debug/deps/fig04_characterization-c1b9d74df2a85a3b.d: crates/bench/src/bin/fig04_characterization.rs

/root/repo/target/debug/deps/fig04_characterization-c1b9d74df2a85a3b: crates/bench/src/bin/fig04_characterization.rs

crates/bench/src/bin/fig04_characterization.rs:
