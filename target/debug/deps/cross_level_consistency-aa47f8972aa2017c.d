/root/repo/target/debug/deps/cross_level_consistency-aa47f8972aa2017c.d: crates/integration/../../tests/cross_level_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libcross_level_consistency-aa47f8972aa2017c.rmeta: crates/integration/../../tests/cross_level_consistency.rs Cargo.toml

crates/integration/../../tests/cross_level_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
