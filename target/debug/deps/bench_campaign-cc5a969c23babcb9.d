/root/repo/target/debug/deps/bench_campaign-cc5a969c23babcb9.d: crates/bench/src/bin/bench_campaign.rs Cargo.toml

/root/repo/target/debug/deps/libbench_campaign-cc5a969c23babcb9.rmeta: crates/bench/src/bin/bench_campaign.rs Cargo.toml

crates/bench/src/bin/bench_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
