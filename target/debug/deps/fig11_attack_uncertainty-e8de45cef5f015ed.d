/root/repo/target/debug/deps/fig11_attack_uncertainty-e8de45cef5f015ed.d: crates/bench/src/bin/fig11_attack_uncertainty.rs

/root/repo/target/debug/deps/fig11_attack_uncertainty-e8de45cef5f015ed: crates/bench/src/bin/fig11_attack_uncertainty.rs

crates/bench/src/bin/fig11_attack_uncertainty.rs:
