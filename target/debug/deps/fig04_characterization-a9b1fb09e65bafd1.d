/root/repo/target/debug/deps/fig04_characterization-a9b1fb09e65bafd1.d: crates/bench/src/bin/fig04_characterization.rs

/root/repo/target/debug/deps/fig04_characterization-a9b1fb09e65bafd1: crates/bench/src/bin/fig04_characterization.rs

crates/bench/src/bin/fig04_characterization.rs:
