/root/repo/target/debug/deps/hardening_study-8b6a473bb8980a67.d: crates/bench/src/bin/hardening_study.rs

/root/repo/target/debug/deps/hardening_study-8b6a473bb8980a67: crates/bench/src/bin/hardening_study.rs

crates/bench/src/bin/hardening_study.rs:
