/root/repo/target/debug/deps/fig09_convergence-4ac21602cbdde675.d: crates/bench/src/bin/fig09_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_convergence-4ac21602cbdde675.rmeta: crates/bench/src/bin/fig09_convergence.rs Cargo.toml

crates/bench/src/bin/fig09_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
