/root/repo/target/debug/deps/fig09_convergence-f058d70b90a87a66.d: crates/bench/src/bin/fig09_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_convergence-f058d70b90a87a66.rmeta: crates/bench/src/bin/fig09_convergence.rs Cargo.toml

crates/bench/src/bin/fig09_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
