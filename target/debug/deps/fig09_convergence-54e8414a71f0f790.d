/root/repo/target/debug/deps/fig09_convergence-54e8414a71f0f790.d: crates/bench/src/bin/fig09_convergence.rs

/root/repo/target/debug/deps/fig09_convergence-54e8414a71f0f790: crates/bench/src/bin/fig09_convergence.rs

crates/bench/src/bin/fig09_convergence.rs:
