/root/repo/target/debug/deps/end_to_end_ssf-f2590203f7297f2c.d: crates/integration/../../tests/end_to_end_ssf.rs

/root/repo/target/debug/deps/end_to_end_ssf-f2590203f7297f2c: crates/integration/../../tests/end_to_end_ssf.rs

crates/integration/../../tests/end_to_end_ssf.rs:
