/root/repo/target/debug/deps/bench_campaign-17bc3e4f1ace200c.d: crates/bench/src/bin/bench_campaign.rs

/root/repo/target/debug/deps/bench_campaign-17bc3e4f1ace200c: crates/bench/src/bin/bench_campaign.rs

crates/bench/src/bin/bench_campaign.rs:
