/root/repo/target/debug/deps/hardening_study-f8e1e117e9233eb9.d: crates/bench/src/bin/hardening_study.rs Cargo.toml

/root/repo/target/debug/deps/libhardening_study-f8e1e117e9233eb9.rmeta: crates/bench/src/bin/hardening_study.rs Cargo.toml

crates/bench/src/bin/hardening_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
