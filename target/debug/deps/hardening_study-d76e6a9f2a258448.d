/root/repo/target/debug/deps/hardening_study-d76e6a9f2a258448.d: crates/bench/src/bin/hardening_study.rs Cargo.toml

/root/repo/target/debug/deps/libhardening_study-d76e6a9f2a258448.rmeta: crates/bench/src/bin/hardening_study.rs Cargo.toml

crates/bench/src/bin/hardening_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
