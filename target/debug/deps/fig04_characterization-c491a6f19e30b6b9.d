/root/repo/target/debug/deps/fig04_characterization-c491a6f19e30b6b9.d: crates/bench/src/bin/fig04_characterization.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_characterization-c491a6f19e30b6b9.rmeta: crates/bench/src/bin/fig04_characterization.rs Cargo.toml

crates/bench/src/bin/fig04_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
