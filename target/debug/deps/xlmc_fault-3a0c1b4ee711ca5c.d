/root/repo/target/debug/deps/xlmc_fault-3a0c1b4ee711ca5c.d: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs

/root/repo/target/debug/deps/xlmc_fault-3a0c1b4ee711ca5c: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs

crates/fault/src/lib.rs:
crates/fault/src/distribution.rs:
crates/fault/src/sample.rs:
crates/fault/src/spot.rs:
