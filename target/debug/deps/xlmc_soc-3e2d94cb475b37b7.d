/root/repo/target/debug/deps/xlmc_soc-3e2d94cb475b37b7.d: crates/soc/src/lib.rs crates/soc/src/asm.rs crates/soc/src/core.rs crates/soc/src/dma.rs crates/soc/src/golden.rs crates/soc/src/isa.rs crates/soc/src/mpu.rs crates/soc/src/mpu_synth.rs crates/soc/src/soc.rs crates/soc/src/workloads.rs

/root/repo/target/debug/deps/libxlmc_soc-3e2d94cb475b37b7.rlib: crates/soc/src/lib.rs crates/soc/src/asm.rs crates/soc/src/core.rs crates/soc/src/dma.rs crates/soc/src/golden.rs crates/soc/src/isa.rs crates/soc/src/mpu.rs crates/soc/src/mpu_synth.rs crates/soc/src/soc.rs crates/soc/src/workloads.rs

/root/repo/target/debug/deps/libxlmc_soc-3e2d94cb475b37b7.rmeta: crates/soc/src/lib.rs crates/soc/src/asm.rs crates/soc/src/core.rs crates/soc/src/dma.rs crates/soc/src/golden.rs crates/soc/src/isa.rs crates/soc/src/mpu.rs crates/soc/src/mpu_synth.rs crates/soc/src/soc.rs crates/soc/src/workloads.rs

crates/soc/src/lib.rs:
crates/soc/src/asm.rs:
crates/soc/src/core.rs:
crates/soc/src/dma.rs:
crates/soc/src/golden.rs:
crates/soc/src/isa.rs:
crates/soc/src/mpu.rs:
crates/soc/src/mpu_synth.rs:
crates/soc/src/soc.rs:
crates/soc/src/workloads.rs:
