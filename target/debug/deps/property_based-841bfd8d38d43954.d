/root/repo/target/debug/deps/property_based-841bfd8d38d43954.d: crates/integration/../../tests/property_based.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_based-841bfd8d38d43954.rmeta: crates/integration/../../tests/property_based.rs Cargo.toml

crates/integration/../../tests/property_based.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
