/root/repo/target/debug/deps/fig10_outcome_split-d807291edfb07656.d: crates/bench/src/bin/fig10_outcome_split.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_outcome_split-d807291edfb07656.rmeta: crates/bench/src/bin/fig10_outcome_split.rs Cargo.toml

crates/bench/src/bin/fig10_outcome_split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
