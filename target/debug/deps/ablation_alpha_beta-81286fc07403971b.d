/root/repo/target/debug/deps/ablation_alpha_beta-81286fc07403971b.d: crates/bench/src/bin/ablation_alpha_beta.rs

/root/repo/target/debug/deps/ablation_alpha_beta-81286fc07403971b: crates/bench/src/bin/ablation_alpha_beta.rs

crates/bench/src/bin/ablation_alpha_beta.rs:
