/root/repo/target/debug/deps/hardening_study-cb9c1f5544230be0.d: crates/bench/src/bin/hardening_study.rs

/root/repo/target/debug/deps/hardening_study-cb9c1f5544230be0: crates/bench/src/bin/hardening_study.rs

crates/bench/src/bin/hardening_study.rs:
