/root/repo/target/debug/deps/xlmc_integration-9a72addca7689d08.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/xlmc_integration-9a72addca7689d08: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
