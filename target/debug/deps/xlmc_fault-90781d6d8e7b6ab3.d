/root/repo/target/debug/deps/xlmc_fault-90781d6d8e7b6ab3.d: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs Cargo.toml

/root/repo/target/debug/deps/libxlmc_fault-90781d6d8e7b6ab3.rmeta: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs Cargo.toml

crates/fault/src/lib.rs:
crates/fault/src/distribution.rs:
crates/fault/src/sample.rs:
crates/fault/src/spot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
