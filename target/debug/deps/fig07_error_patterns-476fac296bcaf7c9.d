/root/repo/target/debug/deps/fig07_error_patterns-476fac296bcaf7c9.d: crates/bench/src/bin/fig07_error_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_error_patterns-476fac296bcaf7c9.rmeta: crates/bench/src/bin/fig07_error_patterns.rs Cargo.toml

crates/bench/src/bin/fig07_error_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
