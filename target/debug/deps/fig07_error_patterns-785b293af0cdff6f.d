/root/repo/target/debug/deps/fig07_error_patterns-785b293af0cdff6f.d: crates/bench/src/bin/fig07_error_patterns.rs

/root/repo/target/debug/deps/fig07_error_patterns-785b293af0cdff6f: crates/bench/src/bin/fig07_error_patterns.rs

crates/bench/src/bin/fig07_error_patterns.rs:
