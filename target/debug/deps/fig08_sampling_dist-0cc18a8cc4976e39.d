/root/repo/target/debug/deps/fig08_sampling_dist-0cc18a8cc4976e39.d: crates/bench/src/bin/fig08_sampling_dist.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_sampling_dist-0cc18a8cc4976e39.rmeta: crates/bench/src/bin/fig08_sampling_dist.rs Cargo.toml

crates/bench/src/bin/fig08_sampling_dist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
