/root/repo/target/debug/deps/fig08_sampling_dist-f1dfd34bdc9f348f.d: crates/bench/src/bin/fig08_sampling_dist.rs

/root/repo/target/debug/deps/fig08_sampling_dist-f1dfd34bdc9f348f: crates/bench/src/bin/fig08_sampling_dist.rs

crates/bench/src/bin/fig08_sampling_dist.rs:
