/root/repo/target/debug/deps/xlmc_integration-26fad867498c9187.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libxlmc_integration-26fad867498c9187.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libxlmc_integration-26fad867498c9187.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
