/root/repo/target/debug/deps/ablation_alpha_beta-a1492ad3d864ab52.d: crates/bench/src/bin/ablation_alpha_beta.rs

/root/repo/target/debug/deps/ablation_alpha_beta-a1492ad3d864ab52: crates/bench/src/bin/ablation_alpha_beta.rs

crates/bench/src/bin/ablation_alpha_beta.rs:
