/root/repo/target/debug/deps/xlmc_gatesim-fc4eed21c78eb898.d: crates/gatesim/src/lib.rs crates/gatesim/src/bitparallel.rs crates/gatesim/src/cycle.rs crates/gatesim/src/glitch.rs crates/gatesim/src/signature.rs crates/gatesim/src/sta.rs crates/gatesim/src/transient.rs Cargo.toml

/root/repo/target/debug/deps/libxlmc_gatesim-fc4eed21c78eb898.rmeta: crates/gatesim/src/lib.rs crates/gatesim/src/bitparallel.rs crates/gatesim/src/cycle.rs crates/gatesim/src/glitch.rs crates/gatesim/src/signature.rs crates/gatesim/src/sta.rs crates/gatesim/src/transient.rs Cargo.toml

crates/gatesim/src/lib.rs:
crates/gatesim/src/bitparallel.rs:
crates/gatesim/src/cycle.rs:
crates/gatesim/src/glitch.rs:
crates/gatesim/src/signature.rs:
crates/gatesim/src/sta.rs:
crates/gatesim/src/transient.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
