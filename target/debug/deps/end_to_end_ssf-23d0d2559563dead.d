/root/repo/target/debug/deps/end_to_end_ssf-23d0d2559563dead.d: crates/integration/../../tests/end_to_end_ssf.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_ssf-23d0d2559563dead.rmeta: crates/integration/../../tests/end_to_end_ssf.rs Cargo.toml

crates/integration/../../tests/end_to_end_ssf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
