/root/repo/target/debug/deps/xlmc_netlist-1cbc23e9aa942940.d: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/cell.rs crates/netlist/src/cones.rs crates/netlist/src/netlist.rs crates/netlist/src/placement.rs crates/netlist/src/topo.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs Cargo.toml

/root/repo/target/debug/deps/libxlmc_netlist-1cbc23e9aa942940.rmeta: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/cell.rs crates/netlist/src/cones.rs crates/netlist/src/netlist.rs crates/netlist/src/placement.rs crates/netlist/src/topo.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/cones.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/placement.rs:
crates/netlist/src/topo.rs:
crates/netlist/src/unroll.rs:
crates/netlist/src/verilog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
