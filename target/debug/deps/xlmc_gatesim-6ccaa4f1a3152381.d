/root/repo/target/debug/deps/xlmc_gatesim-6ccaa4f1a3152381.d: crates/gatesim/src/lib.rs crates/gatesim/src/bitparallel.rs crates/gatesim/src/cycle.rs crates/gatesim/src/glitch.rs crates/gatesim/src/signature.rs crates/gatesim/src/sta.rs crates/gatesim/src/transient.rs

/root/repo/target/debug/deps/libxlmc_gatesim-6ccaa4f1a3152381.rlib: crates/gatesim/src/lib.rs crates/gatesim/src/bitparallel.rs crates/gatesim/src/cycle.rs crates/gatesim/src/glitch.rs crates/gatesim/src/signature.rs crates/gatesim/src/sta.rs crates/gatesim/src/transient.rs

/root/repo/target/debug/deps/libxlmc_gatesim-6ccaa4f1a3152381.rmeta: crates/gatesim/src/lib.rs crates/gatesim/src/bitparallel.rs crates/gatesim/src/cycle.rs crates/gatesim/src/glitch.rs crates/gatesim/src/signature.rs crates/gatesim/src/sta.rs crates/gatesim/src/transient.rs

crates/gatesim/src/lib.rs:
crates/gatesim/src/bitparallel.rs:
crates/gatesim/src/cycle.rs:
crates/gatesim/src/glitch.rs:
crates/gatesim/src/signature.rs:
crates/gatesim/src/sta.rs:
crates/gatesim/src/transient.rs:
