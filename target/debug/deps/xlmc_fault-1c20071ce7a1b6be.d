/root/repo/target/debug/deps/xlmc_fault-1c20071ce7a1b6be.d: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs

/root/repo/target/debug/deps/libxlmc_fault-1c20071ce7a1b6be.rlib: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs

/root/repo/target/debug/deps/libxlmc_fault-1c20071ce7a1b6be.rmeta: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs

crates/fault/src/lib.rs:
crates/fault/src/distribution.rs:
crates/fault/src/sample.rs:
crates/fault/src/spot.rs:
