/root/repo/target/debug/deps/fig10_outcome_split-4ce17dfa9dfe7547.d: crates/bench/src/bin/fig10_outcome_split.rs

/root/repo/target/debug/deps/fig10_outcome_split-4ce17dfa9dfe7547: crates/bench/src/bin/fig10_outcome_split.rs

crates/bench/src/bin/fig10_outcome_split.rs:
