/root/repo/target/debug/deps/fig09_convergence-fc2d9198b58a1c67.d: crates/bench/src/bin/fig09_convergence.rs

/root/repo/target/debug/deps/fig09_convergence-fc2d9198b58a1c67: crates/bench/src/bin/fig09_convergence.rs

crates/bench/src/bin/fig09_convergence.rs:
