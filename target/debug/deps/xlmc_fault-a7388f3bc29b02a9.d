/root/repo/target/debug/deps/xlmc_fault-a7388f3bc29b02a9.d: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs Cargo.toml

/root/repo/target/debug/deps/libxlmc_fault-a7388f3bc29b02a9.rmeta: crates/fault/src/lib.rs crates/fault/src/distribution.rs crates/fault/src/sample.rs crates/fault/src/spot.rs Cargo.toml

crates/fault/src/lib.rs:
crates/fault/src/distribution.rs:
crates/fault/src/sample.rs:
crates/fault/src/spot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
