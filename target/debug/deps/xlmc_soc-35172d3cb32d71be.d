/root/repo/target/debug/deps/xlmc_soc-35172d3cb32d71be.d: crates/soc/src/lib.rs crates/soc/src/asm.rs crates/soc/src/core.rs crates/soc/src/dma.rs crates/soc/src/golden.rs crates/soc/src/isa.rs crates/soc/src/mpu.rs crates/soc/src/mpu_synth.rs crates/soc/src/soc.rs crates/soc/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libxlmc_soc-35172d3cb32d71be.rmeta: crates/soc/src/lib.rs crates/soc/src/asm.rs crates/soc/src/core.rs crates/soc/src/dma.rs crates/soc/src/golden.rs crates/soc/src/isa.rs crates/soc/src/mpu.rs crates/soc/src/mpu_synth.rs crates/soc/src/soc.rs crates/soc/src/workloads.rs Cargo.toml

crates/soc/src/lib.rs:
crates/soc/src/asm.rs:
crates/soc/src/core.rs:
crates/soc/src/dma.rs:
crates/soc/src/golden.rs:
crates/soc/src/isa.rs:
crates/soc/src/mpu.rs:
crates/soc/src/mpu_synth.rs:
crates/soc/src/soc.rs:
crates/soc/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
