/root/repo/target/debug/deps/cross_level_consistency-c0d74dc920f476a2.d: crates/integration/../../tests/cross_level_consistency.rs

/root/repo/target/debug/deps/cross_level_consistency-c0d74dc920f476a2: crates/integration/../../tests/cross_level_consistency.rs

crates/integration/../../tests/cross_level_consistency.rs:
