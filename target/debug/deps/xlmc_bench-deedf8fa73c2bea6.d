/root/repo/target/debug/deps/xlmc_bench-deedf8fa73c2bea6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxlmc_bench-deedf8fa73c2bea6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
