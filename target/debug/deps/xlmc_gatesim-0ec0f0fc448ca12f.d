/root/repo/target/debug/deps/xlmc_gatesim-0ec0f0fc448ca12f.d: crates/gatesim/src/lib.rs crates/gatesim/src/bitparallel.rs crates/gatesim/src/cycle.rs crates/gatesim/src/glitch.rs crates/gatesim/src/signature.rs crates/gatesim/src/sta.rs crates/gatesim/src/transient.rs

/root/repo/target/debug/deps/xlmc_gatesim-0ec0f0fc448ca12f: crates/gatesim/src/lib.rs crates/gatesim/src/bitparallel.rs crates/gatesim/src/cycle.rs crates/gatesim/src/glitch.rs crates/gatesim/src/signature.rs crates/gatesim/src/sta.rs crates/gatesim/src/transient.rs

crates/gatesim/src/lib.rs:
crates/gatesim/src/bitparallel.rs:
crates/gatesim/src/cycle.rs:
crates/gatesim/src/glitch.rs:
crates/gatesim/src/signature.rs:
crates/gatesim/src/sta.rs:
crates/gatesim/src/transient.rs:
