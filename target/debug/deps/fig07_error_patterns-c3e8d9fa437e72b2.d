/root/repo/target/debug/deps/fig07_error_patterns-c3e8d9fa437e72b2.d: crates/bench/src/bin/fig07_error_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_error_patterns-c3e8d9fa437e72b2.rmeta: crates/bench/src/bin/fig07_error_patterns.rs Cargo.toml

crates/bench/src/bin/fig07_error_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
