/root/repo/target/debug/deps/fig08_sampling_dist-f23e365c4b5d37ab.d: crates/bench/src/bin/fig08_sampling_dist.rs

/root/repo/target/debug/deps/fig08_sampling_dist-f23e365c4b5d37ab: crates/bench/src/bin/fig08_sampling_dist.rs

crates/bench/src/bin/fig08_sampling_dist.rs:
