/root/repo/target/debug/deps/analytic_vs_rtl-5cb1ae780909d5bb.d: crates/integration/../../tests/analytic_vs_rtl.rs Cargo.toml

/root/repo/target/debug/deps/libanalytic_vs_rtl-5cb1ae780909d5bb.rmeta: crates/integration/../../tests/analytic_vs_rtl.rs Cargo.toml

crates/integration/../../tests/analytic_vs_rtl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
