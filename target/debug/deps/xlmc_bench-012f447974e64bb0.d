/root/repo/target/debug/deps/xlmc_bench-012f447974e64bb0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/xlmc_bench-012f447974e64bb0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
