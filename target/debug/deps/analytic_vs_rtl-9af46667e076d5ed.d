/root/repo/target/debug/deps/analytic_vs_rtl-9af46667e076d5ed.d: crates/integration/../../tests/analytic_vs_rtl.rs

/root/repo/target/debug/deps/analytic_vs_rtl-9af46667e076d5ed: crates/integration/../../tests/analytic_vs_rtl.rs

crates/integration/../../tests/analytic_vs_rtl.rs:
