/root/repo/target/debug/deps/fig11_attack_uncertainty-821d844b19f35577.d: crates/bench/src/bin/fig11_attack_uncertainty.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_attack_uncertainty-821d844b19f35577.rmeta: crates/bench/src/bin/fig11_attack_uncertainty.rs Cargo.toml

crates/bench/src/bin/fig11_attack_uncertainty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
