/root/repo/target/debug/deps/xlmc_netlist-5f74695d943d64a8.d: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/cell.rs crates/netlist/src/cones.rs crates/netlist/src/netlist.rs crates/netlist/src/placement.rs crates/netlist/src/topo.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/libxlmc_netlist-5f74695d943d64a8.rlib: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/cell.rs crates/netlist/src/cones.rs crates/netlist/src/netlist.rs crates/netlist/src/placement.rs crates/netlist/src/topo.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/libxlmc_netlist-5f74695d943d64a8.rmeta: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/cell.rs crates/netlist/src/cones.rs crates/netlist/src/netlist.rs crates/netlist/src/placement.rs crates/netlist/src/topo.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/cones.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/placement.rs:
crates/netlist/src/topo.rs:
crates/netlist/src/unroll.rs:
crates/netlist/src/verilog.rs:
