/root/repo/target/debug/deps/fig11_attack_uncertainty-c24185eb0b1d52e5.d: crates/bench/src/bin/fig11_attack_uncertainty.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_attack_uncertainty-c24185eb0b1d52e5.rmeta: crates/bench/src/bin/fig11_attack_uncertainty.rs Cargo.toml

crates/bench/src/bin/fig11_attack_uncertainty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
