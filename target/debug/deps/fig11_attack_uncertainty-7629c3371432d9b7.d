/root/repo/target/debug/deps/fig11_attack_uncertainty-7629c3371432d9b7.d: crates/bench/src/bin/fig11_attack_uncertainty.rs

/root/repo/target/debug/deps/fig11_attack_uncertainty-7629c3371432d9b7: crates/bench/src/bin/fig11_attack_uncertainty.rs

crates/bench/src/bin/fig11_attack_uncertainty.rs:
