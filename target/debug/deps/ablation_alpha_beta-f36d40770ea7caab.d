/root/repo/target/debug/deps/ablation_alpha_beta-f36d40770ea7caab.d: crates/bench/src/bin/ablation_alpha_beta.rs Cargo.toml

/root/repo/target/debug/deps/libablation_alpha_beta-f36d40770ea7caab.rmeta: crates/bench/src/bin/ablation_alpha_beta.rs Cargo.toml

crates/bench/src/bin/ablation_alpha_beta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
