/root/repo/target/debug/deps/fig08_sampling_dist-1737d96769919490.d: crates/bench/src/bin/fig08_sampling_dist.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_sampling_dist-1737d96769919490.rmeta: crates/bench/src/bin/fig08_sampling_dist.rs Cargo.toml

crates/bench/src/bin/fig08_sampling_dist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
