/root/repo/target/debug/deps/xlmc_bench-bf71c2d581df2540.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxlmc_bench-bf71c2d581df2540.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxlmc_bench-bf71c2d581df2540.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
