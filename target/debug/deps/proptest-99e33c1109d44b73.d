/root/repo/target/debug/deps/proptest-99e33c1109d44b73.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-99e33c1109d44b73.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
