/root/repo/target/debug/deps/xlmc-6a127fd691f574f3.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/correlation.rs crates/core/src/estimator.rs crates/core/src/flow.rs crates/core/src/harden.rs crates/core/src/lifetime.rs crates/core/src/model.rs crates/core/src/precharacterize.rs crates/core/src/rng.rs crates/core/src/sampling.rs crates/core/src/space.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libxlmc-6a127fd691f574f3.rlib: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/correlation.rs crates/core/src/estimator.rs crates/core/src/flow.rs crates/core/src/harden.rs crates/core/src/lifetime.rs crates/core/src/model.rs crates/core/src/precharacterize.rs crates/core/src/rng.rs crates/core/src/sampling.rs crates/core/src/space.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libxlmc-6a127fd691f574f3.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/correlation.rs crates/core/src/estimator.rs crates/core/src/flow.rs crates/core/src/harden.rs crates/core/src/lifetime.rs crates/core/src/model.rs crates/core/src/precharacterize.rs crates/core/src/rng.rs crates/core/src/sampling.rs crates/core/src/space.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/correlation.rs:
crates/core/src/estimator.rs:
crates/core/src/flow.rs:
crates/core/src/harden.rs:
crates/core/src/lifetime.rs:
crates/core/src/model.rs:
crates/core/src/precharacterize.rs:
crates/core/src/rng.rs:
crates/core/src/sampling.rs:
crates/core/src/space.rs:
crates/core/src/stats.rs:
