/root/repo/target/debug/deps/xlmc_integration-1706c39987dac022.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxlmc_integration-1706c39987dac022.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
