/root/repo/target/debug/deps/kernels-832d9aff8a24bc19.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-832d9aff8a24bc19: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
