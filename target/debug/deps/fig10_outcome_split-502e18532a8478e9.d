/root/repo/target/debug/deps/fig10_outcome_split-502e18532a8478e9.d: crates/bench/src/bin/fig10_outcome_split.rs

/root/repo/target/debug/deps/fig10_outcome_split-502e18532a8478e9: crates/bench/src/bin/fig10_outcome_split.rs

crates/bench/src/bin/fig10_outcome_split.rs:
