/root/repo/target/debug/deps/xlmc-e22b6daa7564bfe2.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/correlation.rs crates/core/src/estimator.rs crates/core/src/flow.rs crates/core/src/harden.rs crates/core/src/lifetime.rs crates/core/src/model.rs crates/core/src/precharacterize.rs crates/core/src/rng.rs crates/core/src/sampling.rs crates/core/src/space.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libxlmc-e22b6daa7564bfe2.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/correlation.rs crates/core/src/estimator.rs crates/core/src/flow.rs crates/core/src/harden.rs crates/core/src/lifetime.rs crates/core/src/model.rs crates/core/src/precharacterize.rs crates/core/src/rng.rs crates/core/src/sampling.rs crates/core/src/space.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/correlation.rs:
crates/core/src/estimator.rs:
crates/core/src/flow.rs:
crates/core/src/harden.rs:
crates/core/src/lifetime.rs:
crates/core/src/model.rs:
crates/core/src/precharacterize.rs:
crates/core/src/rng.rs:
crates/core/src/sampling.rs:
crates/core/src/space.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
