/root/repo/target/debug/deps/property_based-a1a3c18700f9605b.d: crates/integration/../../tests/property_based.rs

/root/repo/target/debug/deps/property_based-a1a3c18700f9605b: crates/integration/../../tests/property_based.rs

crates/integration/../../tests/property_based.rs:
