/root/repo/target/debug/deps/workload_behavior-da701633688a6dbd.d: crates/integration/../../tests/workload_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_behavior-da701633688a6dbd.rmeta: crates/integration/../../tests/workload_behavior.rs Cargo.toml

crates/integration/../../tests/workload_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
