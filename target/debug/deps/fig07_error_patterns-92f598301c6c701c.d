/root/repo/target/debug/deps/fig07_error_patterns-92f598301c6c701c.d: crates/bench/src/bin/fig07_error_patterns.rs

/root/repo/target/debug/deps/fig07_error_patterns-92f598301c6c701c: crates/bench/src/bin/fig07_error_patterns.rs

crates/bench/src/bin/fig07_error_patterns.rs:
