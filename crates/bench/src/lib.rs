//! Experiment harness for the `xlmc` reproduction.
//!
//! One binary per table/figure of the paper's evaluation section (§6) lives
//! under `src/bin`; this library holds the shared experiment context and
//! small report-formatting helpers. Criterion micro-benchmarks of the hot
//! kernels live under `benches/`.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig04_characterization` | Fig. 4(a,b): lifetime / contamination distributions |
//! | `fig07_error_patterns`   | Fig. 7(a,b): bit-error patterns, comb vs seq |
//! | `fig08_sampling_dist`    | Fig. 8(a,b): `g_T` and sample-space reduction |
//! | `fig09_convergence`      | Fig. 9(a,b): convergence + variance table |
//! | `fig10_outcome_split`    | Fig. 10(a,b): strike classes + SSF comb vs reg |
//! | `fig11_attack_uncertainty` | Fig. 11(a,b): temporal/spatial accuracy sweeps |
//! | `hardening_study`        | §6 hardening claim: top registers, SSF reduction, area |
//! | `ablation_alpha_beta`    | extension: sensitivity of `g_{T,P}` to α/β |

use std::path::{Path, PathBuf};
use xlmc::estimator::{run_campaign_observed, CampaignOptions, CampaignResult};
use xlmc::flow::FaultRunner;
use xlmc::sampling::{ExperimentConfig, SamplingStrategy};
use xlmc::telemetry::StderrProgress;
use xlmc::trace::{self, TraceSink};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_soc::workloads;

/// Everything the figure binaries need, built once per process.
pub struct ExperimentContext {
    /// The gate-level system model.
    pub model: SystemModel,
    /// The illegal-write evaluation (the primary benchmark).
    pub write_eval: Evaluation,
    /// The illegal-read evaluation.
    pub read_eval: Evaluation,
    /// The shared pre-characterization.
    pub prechar: Precharacterization,
    /// The experiment parameters.
    pub cfg: ExperimentConfig,
}

impl ExperimentContext {
    /// Build the full context with default parameters.
    ///
    /// # Panics
    ///
    /// Panics if the stock model or workloads fail to build — that would be
    /// a bug, not an input error.
    pub fn build() -> Self {
        Self::build_with(ExperimentConfig::default())
    }

    /// Build with custom experiment parameters.
    ///
    /// # Panics
    ///
    /// See [`ExperimentContext::build`].
    pub fn build_with(cfg: ExperimentConfig) -> Self {
        Self::build_with_observed(cfg, &CampaignOptions::default())
    }

    /// [`ExperimentContext::build`], honouring the harness flags: when
    /// `--trace PATH` is set, the setup and pre-characterization steps are
    /// spanned and written to `PATH` tagged `prechar` (the campaign trace
    /// goes to the per-campaign tagged path, see [`run_observed_campaign`]).
    ///
    /// # Panics
    ///
    /// See [`ExperimentContext::build`].
    pub fn build_observed(opts: &CampaignOptions) -> Self {
        Self::build_with_observed(ExperimentConfig::default(), opts)
    }

    /// [`ExperimentContext::build_with`] + [`ExperimentContext::build_observed`].
    ///
    /// # Panics
    ///
    /// See [`ExperimentContext::build`].
    pub fn build_with_observed(cfg: ExperimentConfig, opts: &CampaignOptions) -> Self {
        let sink = if opts.trace_path.is_some() {
            TraceSink::enabled()
        } else {
            TraceSink::disabled()
        };
        eprintln!("[setup] building system model and golden runs ...");
        let (model, write_eval, read_eval) = {
            let _span = sink.span("setup", "model+golden");
            let model = SystemModel::with_defaults().expect("stock model must build");
            let write_eval =
                Evaluation::new(workloads::illegal_write()).expect("write workload golden run");
            let read_eval =
                Evaluation::new(workloads::illegal_read()).expect("read workload golden run");
            (model, write_eval, read_eval)
        };
        eprintln!("[setup] running pre-characterization ...");
        let prechar = Precharacterization::run_traced(&model, cfg.t_max, cfg.max_radius(), &sink);
        eprintln!("[setup] done.");
        if let Some(path) = &opts.trace_path {
            let path = tagged_path(path, "prechar");
            sink.print_self_time("prechar");
            if let Err(e) = trace::write_trace(
                &path,
                &sink,
                &trace::CampaignCounters::default(),
                &trace::KernelCounters::default(),
                &[],
                &[],
            ) {
                eprintln!("[setup] failed to write trace {}: {e}", path.display());
            }
        }
        Self {
            model,
            write_eval,
            read_eval,
            prechar,
            cfg,
        }
    }
}

/// Insert `tag` before the path's extension:
/// `out/m.json` + `fig09-random` → `out/m.fig09-random.json`.
pub fn tagged_path(path: &Path, tag: &str) -> PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
    let ext = path.extension().and_then(|s| s.to_str()).unwrap_or("json");
    path.with_file_name(format!("{stem}.{tag}.{ext}"))
}

/// Run one campaign with the harness's standard observability: a
/// rate-limited stderr progress line, plus whatever `--metrics` /
/// `--checkpoint` / `--target-eps` flags the options carry. Binaries that
/// run several campaigns pass a distinct `tag` per campaign — it is
/// combined with the strategy name and inserted into the metrics and
/// checkpoint file names, so campaigns neither clobber nor cross-resume
/// each other's files.
pub fn run_observed_campaign(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    n: usize,
    seed: u64,
    opts: &CampaignOptions,
    tag: &str,
) -> CampaignResult {
    let mut opts = opts.clone();
    let tag = format!("{tag}-{}", strategy.name());
    if let Some(p) = &opts.metrics_path {
        opts.metrics_path = Some(tagged_path(p, &tag));
    }
    if let Some(p) = &opts.checkpoint_path {
        opts.checkpoint_path = Some(tagged_path(p, &tag));
    }
    if let Some(p) = &opts.trace_path {
        opts.trace_path = Some(tagged_path(p, &tag));
    }
    if let Some(p) = &opts.events_path {
        opts.events_path = Some(tagged_path(p, &tag));
    }
    if let Some(p) = &opts.prom_path {
        opts.prom_path = Some(tagged_path(p, &tag));
    }
    let mut progress = StderrProgress::new(tag);
    run_campaign_observed(runner, strategy, n, seed, &opts, &mut progress)
}

/// Print a fixed-width table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Render a unit-interval value as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// A crude ASCII sparkline for convergence-style series.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = ((v - min) / span * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_path_inserts_tag_before_extension() {
        assert_eq!(
            tagged_path(Path::new("out/m.json"), "fig09-random"),
            Path::new("out/m.fig09-random.json")
        );
        assert_eq!(
            tagged_path(Path::new("ck"), "a-b"),
            Path::new("ck.a-b.json")
        );
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn sparkline_has_one_glyph_per_value() {
        let s = sparkline(&[0.0, 0.5, 1.0, 0.25]);
        assert_eq!(s.chars().count(), 4);
    }

    #[test]
    fn sparkline_handles_constant_series() {
        let s = sparkline(&[0.4, 0.4, 0.4]);
        assert_eq!(s.chars().count(), 3);
    }
}
