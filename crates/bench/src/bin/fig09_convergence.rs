//! Figure 9: convergence comparison of the sampling strategies.
//!
//! Reproduces "(a) convergence plot" — the running SSF estimate over 10,000
//! fault-injection runs for random sampling, fanin-cone sampling and the
//! importance-sampling strategy — and "(b) detailed statistics for
//! different strategies" — successful attacks out of 2,000 runs and the
//! sample variance (the paper reports 0.0261 / 0.0210 / 9.70e-5).

use xlmc::estimator::{CampaignOptions, CampaignResult};
use xlmc::flow::FaultRunner;
use xlmc::sampling::{
    baseline_distribution, ConeSampling, ImportanceSampling, RandomSampling, SamplingStrategy,
};
use xlmc_bench::{print_table, run_observed_campaign, sparkline, ExperimentContext};

fn main() {
    let opts = CampaignOptions::from_args();
    let ctx = ExperimentContext::build_observed(&opts);
    let runner = FaultRunner {
        model: &ctx.model,
        eval: &ctx.write_eval,
        prechar: &ctx.prechar,
        hardening: None,
        multi_fault: None,
    };
    let f = baseline_distribution(&ctx.model, &ctx.cfg);
    let strategies: Vec<Box<dyn SamplingStrategy>> = vec![
        Box::new(RandomSampling::new(f.clone())),
        Box::new(ConeSampling::new(
            f.clone(),
            &ctx.prechar,
            ctx.cfg.radius_options.clone(),
        )),
        Box::new(ImportanceSampling::new(
            f,
            &ctx.model,
            &ctx.prechar,
            ctx.cfg.alpha,
            ctx.cfg.beta,
            ctx.cfg.radius_options.clone(),
        )),
    ];

    // Figure 9(a): 10k-run convergence traces.
    let n = 10_000;
    eprintln!("[fig09] running 3 campaigns of {n} fault injections each ...");
    let results: Vec<CampaignResult> = strategies
        .iter()
        .map(|s| run_observed_campaign(&runner, s.as_ref(), n, 0xF19, &opts, "fig09a"))
        .collect();

    println!("\n== Figure 9(a): convergence of the SSF estimate ({n} runs) ==");
    for r in &results {
        let series: Vec<f64> = r.trace.iter().map(|&(_, v)| v).collect();
        println!(
            "  {:12} final={:.5}  {}",
            r.strategy,
            r.ssf,
            sparkline(&series)
        );
    }

    // Figure 9(b): the statistics table at 2,000 runs (paper's N).
    eprintln!("[fig09] running 2,000-run campaigns for the statistics table ...");
    let rows: Vec<Vec<String>> = strategies
        .iter()
        .map(|s| {
            let r = run_observed_campaign(&runner, s.as_ref(), 2_000, 0x2000, &opts, "fig09b");
            vec![
                r.strategy.clone(),
                r.successes.to_string(),
                format!("{:.3e}", r.sample_variance),
                format!("{:.3e}", r.lln_bound(0.01)),
            ]
        })
        .collect();
    print_table(
        "Figure 9(b): statistics over 2,000 attacks",
        &[
            "strategy",
            "# succ.",
            "sample variance s^2",
            "LLN bound (eps=0.01)",
        ],
        &rows,
    );
    let var_random: f64 = rows[0][2].parse().unwrap_or(f64::NAN);
    let var_is: f64 = rows[2][2].parse().unwrap_or(f64::NAN);
    println!(
        "\n  variance reduction random -> importance: {:.1}x \
         (paper reports 0.0261 -> 9.70e-5, about 270x; see EXPERIMENTS.md \
         for the shape-vs-magnitude discussion)",
        var_random / var_is
    );
}
