//! Figure 8: the importance-sampling distribution and the sample-space
//! reduction.
//!
//! Reproduces "(a) sampling distribution for different value in Ω_T" — the
//! marginal `g_T` over timing distances — and "(b) reduction of sample
//! space with our importance sampling strategy" — per unrolled frame, the
//! total register count versus the registers in the responding-signal cone
//! and the computation-type subset.

use xlmc::estimator::CampaignOptions;
use xlmc::lifetime::RegisterKind;
use xlmc::sampling::{baseline_distribution, ImportanceSampling};
use xlmc_bench::{print_table, sparkline, ExperimentContext};

fn main() {
    let opts = CampaignOptions::from_args();
    let ctx = ExperimentContext::build_observed(&opts);
    let f = baseline_distribution(&ctx.model, &ctx.cfg);
    let is = ImportanceSampling::new(
        f,
        &ctx.model,
        &ctx.prechar,
        ctx.cfg.alpha,
        ctx.cfg.beta,
        ctx.cfg.radius_options.clone(),
    );

    // Figure 8(a): g_T marginal.
    let marg = is.t_marginal();
    let rows: Vec<Vec<String>> = marg
        .iter()
        .map(|&(t, p)| vec![t.to_string(), format!("{p:.4}")])
        .collect();
    print_table(
        "Figure 8(a): importance-sampling marginal g_T(t)",
        &["t [cycles]", "probability"],
        &rows,
    );
    let series: Vec<f64> = marg.iter().map(|&(_, p)| p).collect();
    println!("  shape: {}", sparkline(&series));

    // Figure 8(b): sample-space reduction.
    let total_regs = ctx.model.mpu.netlist().dffs().len();
    let rows: Vec<Vec<String>> = ctx
        .prechar
        .space
        .frames()
        .iter()
        .map(|fr| {
            let netlist = ctx.model.mpu.netlist();
            let cone_regs: Vec<_> = fr
                .cone_cells
                .iter()
                .filter(|&&g| netlist.gate(g).kind == xlmc_netlist::CellKind::Dff)
                .collect();
            let comp_regs = cone_regs
                .iter()
                .filter(|&&&g| {
                    ctx.prechar.dff_kind(&ctx.model, g) == Some(RegisterKind::Computation)
                })
                .count();
            vec![
                fr.t.to_string(),
                format!("{:.2}", 1.0),
                format!("{:.2}", cone_regs.len() as f64 / total_regs as f64),
                format!("{:.2}", comp_regs as f64 / total_regs as f64),
            ]
        })
        .collect();
    print_table(
        "Figure 8(b): normalized register counts per unrolled frame",
        &["t", "total", "fanin-cone", "fanin-cone computation"],
        &rows,
    );
    println!(
        "  (paper: the cone and computation-type restrictions shrink the sample \
         space drastically as the unrolled depth grows)"
    );
}
