//! Figure 4: distributions of the register characterization parameters.
//!
//! Reproduces "(a) error lifetime and (b) error contamination number" of
//! the paper: the per-register histograms collected by the third
//! pre-characterization step, plus the resulting memory/computation split.
//! The paper observes that "more than half of the total registers have long
//! lifetime and 0 contamination number".

use xlmc::estimator::CampaignOptions;
use xlmc::lifetime::{RegisterKind, LIFETIME_CAP};
use xlmc::stats::Histogram;
use xlmc_bench::{pct, print_table, ExperimentContext};

fn main() {
    let opts = CampaignOptions::from_args();
    let ctx = ExperimentContext::build_observed(&opts);
    let chars = &ctx.prechar.registers;

    // Figure 4(a): error-lifetime distribution.
    let lifetimes: Vec<f64> = chars.iter().map(|(_, c)| f64::from(c.lifetime)).collect();
    let bins = 8usize;
    let hist = Histogram::build(lifetimes.iter().copied(), bins, f64::from(LIFETIME_CAP));
    let probs = hist.probabilities();
    let rows: Vec<Vec<String>> = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let lo = i * LIFETIME_CAP as usize / bins;
            let hi = (i + 1) * LIFETIME_CAP as usize / bins;
            let label = if i + 1 == bins {
                format!("{lo}..={LIFETIME_CAP} (cap)")
            } else {
                format!("{lo}..{hi}")
            };
            vec![label, pct(p)]
        })
        .collect();
    print_table(
        "Figure 4(a): error lifetime distribution over registers",
        &["lifetime [cycles]", "probability"],
        &rows,
    );

    // Figure 4(b): error-contamination-number distribution.
    let contams: Vec<f64> = chars
        .iter()
        .map(|(_, c)| f64::from(c.contamination))
        .collect();
    let max_contam = contams.iter().cloned().fold(1.0, f64::max);
    let hist = Histogram::build(contams.iter().copied(), 8, max_contam.max(8.0));
    let probs = hist.probabilities();
    let zero = contams.iter().filter(|&&c| c == 0.0).count() as f64 / contams.len() as f64;
    let rows: Vec<Vec<String>> = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let step = max_contam.max(8.0) / 8.0;
            vec![
                format!("{:.0}..{:.0}", i as f64 * step, (i + 1) as f64 * step),
                pct(p),
            ]
        })
        .collect();
    print_table(
        "Figure 4(b): error contamination number distribution",
        &["contamination", "probability"],
        &rows,
    );
    println!("  exactly-zero contamination: {}", pct(zero));

    // The headline observation.
    let mem = chars
        .iter()
        .filter(|(_, c)| c.kind == RegisterKind::Memory)
        .count();
    let total = chars.iter().count();
    print_table(
        "Register classification (Observation 3)",
        &["class", "count", "share"],
        &[
            vec![
                "memory-type".into(),
                mem.to_string(),
                pct(mem as f64 / total as f64),
            ],
            vec![
                "computation-type".into(),
                (total - mem).to_string(),
                pct((total - mem) as f64 / total as f64),
            ],
        ],
    );
    println!(
        "\npaper: more than half of registers are long-lived with 0 contamination; \
         measured memory-type share = {}",
        pct(chars.memory_fraction())
    );
}
