//! Attack × defense scenario matrix: SSF over the full grid.
//!
//! Sweeps every attack workload against every defense variant under both
//! fault modes (single-spot and SoK double-glitch). Each cell's
//! single-estimator campaign is executed under **all three kernels ×
//! threads {1, 4}** plus a fast-forward-off twin; the binary exits 1 if any
//! of those seven configurations disagrees on a single ssf/variance bit —
//! the engine's determinism contract, enforced per grid cell. Each cell
//! also runs the two-level MLMC estimator over the same streams for the
//! cross-estimator view (its correction term quantifies the cross-level
//! model gap for that attack × defense pair).
//!
//! ```text
//! scenario_matrix [--smoke] [--out PATH] [--runs N] [--seed S]
//! ```
//!
//! The report (`scenario_matrix.json` by default, format
//! `xlmc-scenario-v1`, `schemas/scenario.schema.json`) is schema-validated
//! in-process before it is written; a document the schema rejects is a bug
//! in this binary, and exits 1.
//!
//! `--smoke` runs the reduced CI grid: four attacks × three defenses ×
//! both fault modes at 512 runs per kernel configuration.

use std::time::Instant;

use xlmc::estimator::{
    run_campaign_with, CampaignKernel, CampaignOptions, CampaignResult, EstimatorKind, CHUNK_RUNS,
};
use xlmc::flow::FaultRunner;
use xlmc::harden::{DupConfigVote, HardenedSet, HardenedVariant, HardeningModel, ScfiFsm};
use xlmc::sampling::{baseline_distribution, ExperimentConfig, ImportanceSampling};
use xlmc::telemetry::{json_escape, validate_against_schema, JsonValue};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_fault::DoubleGlitch;
use xlmc_soc::{workloads, MpuBit, Workload};

const KERNELS: &[CampaignKernel] = &[
    CampaignKernel::Scalar,
    CampaignKernel::Batched,
    CampaignKernel::Compiled,
];
const THREADS: &[usize] = &[1, 4];

struct Args {
    smoke: bool,
    out: String,
    runs: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "scenario_matrix.json".to_owned(),
        runs: 0,
        seed: 0xD1CE,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
            None => (arg, None),
        };
        let value = |it: &mut dyn Iterator<Item = String>| {
            inline.clone().or_else(|| it.next()).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = value(&mut it),
            "--runs" => {
                args.runs = value(&mut it).parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid --runs value");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                args.seed = value(&mut it).parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid --seed value");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!(
                    "scenario_matrix [--smoke] [--out PATH] [--runs N] [--seed S]\n\
                     sweep SSF over the attack x defense x fault-mode grid;\n\
                     every cell is bit-checked across scalar|batched|compiled\n\
                     kernels and threads 1|4 before the report is written"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.runs == 0 {
        args.runs = if args.smoke { 512 } else { 2048 };
    }
    args
}

fn defense_variant(name: &str, model: &SystemModel) -> Option<HardenedVariant> {
    let _ = model;
    match name {
        "none" => None,
        "uniform" => Some(HardenedVariant::Uniform(HardenedSet::new(
            [MpuBit::Violation, MpuBit::Enable],
            HardeningModel::default(),
        ))),
        "scfi_fsm" => Some(HardenedVariant::ScfiFsm(ScfiFsm::new())),
        "dup_config_vote" => Some(HardenedVariant::DupConfigVote(DupConfigVote::new())),
        other => unreachable!("unknown defense {other}"),
    }
}

struct Cell {
    attack: &'static str,
    defense: &'static str,
    fault_mode: &'static str,
    reference: CampaignResult,
    area_overhead: f64,
    mlmc_ssf: f64,
    mlmc_correction: f64,
    elapsed_s: f64,
}

fn main() {
    let args = parse_args();
    let attacks: Vec<fn() -> Workload> = if args.smoke {
        vec![
            workloads::illegal_write,
            workloads::illegal_read,
            workloads::trap_escalation,
            workloads::instruction_skip,
        ]
    } else {
        vec![
            workloads::illegal_write,
            workloads::illegal_read,
            workloads::dma_exfiltration,
            workloads::trap_escalation,
            workloads::instruction_skip,
        ]
    };
    let defenses: &[&'static str] = if args.smoke {
        &["none", "scfi_fsm", "dup_config_vote"]
    } else {
        &["none", "uniform", "scfi_fsm", "dup_config_vote"]
    };
    let fault_modes: &[&'static str] = &["single", "double"];
    // The MLMC run needs the four-chunk pilot plus planned chunks to
    // exercise both levels, whatever the per-kernel run count is.
    let mlmc_runs = args.runs.max(6 * CHUNK_RUNS);

    let model = SystemModel::with_defaults().unwrap_or_else(|e| {
        eprintln!("error: cannot build the system model: {e}");
        std::process::exit(2);
    });
    let cfg = ExperimentConfig {
        t_max: 16,
        ..Default::default()
    };
    let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
    let fd = baseline_distribution(&model, &cfg);
    let glitch = DoubleGlitch::new(fd.spatial.clone(), fd.radius.clone());
    let strategy = ImportanceSampling::new(
        fd.clone(),
        &model,
        &prechar,
        cfg.alpha,
        cfg.beta,
        cfg.radius_options.clone(),
    );

    let total = attacks.len() * defenses.len() * fault_modes.len();
    let mut cells: Vec<Cell> = Vec::with_capacity(total);
    let mut divergences = 0usize;
    for attack in &attacks {
        let workload = attack();
        let attack_name = workload.name;
        let eval = Evaluation::new(workload).unwrap_or_else(|e| {
            eprintln!("error: golden run of {attack_name} failed: {e}");
            std::process::exit(2);
        });
        for &defense in defenses {
            let hardening = defense_variant(defense, &model);
            let area_overhead = hardening.as_ref().map_or(0.0, |h| h.area_overhead(&model));
            for &fault_mode in fault_modes {
                let start = Instant::now();
                let runner = FaultRunner {
                    model: &model,
                    eval: &eval,
                    prechar: &prechar,
                    hardening: hardening.as_ref(),
                    multi_fault: (fault_mode == "double").then_some(&glitch),
                };
                // The determinism gate: all kernel x thread combinations,
                // plus a fast-forward-off twin, must agree bit for bit.
                let mut reference: Option<CampaignResult> = None;
                let mut run_config = |opts: CampaignOptions, what: String| {
                    let r = run_campaign_with(&runner, &strategy, args.runs, args.seed, &opts);
                    match &reference {
                        None => reference = Some(r),
                        Some(want) => {
                            if r.ssf.to_bits() != want.ssf.to_bits()
                                || r.sample_variance.to_bits() != want.sample_variance.to_bits()
                                || r.successes != want.successes
                            {
                                eprintln!(
                                    "DIVERGENCE {attack_name}/{defense}/{fault_mode} [{what}]: \
                                     ssf {} ({:#018x}) vs reference {} ({:#018x})",
                                    r.ssf,
                                    r.ssf.to_bits(),
                                    want.ssf,
                                    want.ssf.to_bits(),
                                );
                                divergences += 1;
                            }
                        }
                    }
                };
                for &kernel in KERNELS {
                    for &threads in THREADS {
                        run_config(
                            CampaignOptions {
                                threads,
                                ..CampaignOptions::with_kernel(kernel)
                            },
                            format!("{} threads={threads}", kernel.as_arg()),
                        );
                    }
                }
                run_config(
                    CampaignOptions {
                        fast_forward: false,
                        ..CampaignOptions::default()
                    },
                    "fast-forward=off".to_owned(),
                );
                let reference = reference.expect("at least one configuration ran");

                let mlmc = run_campaign_with(
                    &runner,
                    &strategy,
                    mlmc_runs,
                    args.seed,
                    &CampaignOptions {
                        estimator: EstimatorKind::Mlmc,
                        ..CampaignOptions::with_threads(2)
                    },
                );
                let summary = mlmc.mlmc.as_ref().expect("mlmc summary present");
                let elapsed_s = start.elapsed().as_secs_f64();
                eprintln!(
                    "[{:>2}/{total}] {attack_name:>16} x {defense:<15} x {fault_mode:<6} \
                     ssf {:.6e} (mlmc {:.6e}, corr {:+.2e}) {:>5.1}s",
                    cells.len() + 1,
                    reference.ssf,
                    mlmc.ssf,
                    summary.mean1_diff,
                    elapsed_s,
                );
                cells.push(Cell {
                    attack: attack_name,
                    defense,
                    fault_mode,
                    mlmc_ssf: mlmc.ssf,
                    mlmc_correction: summary.mean1_diff,
                    reference,
                    area_overhead,
                    elapsed_s,
                });
            }
        }
    }

    if divergences > 0 {
        eprintln!("error: {divergences} kernel/thread divergences — see above");
        std::process::exit(1);
    }

    let report = render_report(&args, &attacks, defenses, fault_modes, mlmc_runs, &cells);
    let doc = JsonValue::parse(&report).unwrap_or_else(|e| {
        eprintln!("error: report is not valid JSON: {e}");
        std::process::exit(1);
    });
    let schema_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/scenario.schema.json"
    );
    let schema_src = std::fs::read_to_string(schema_path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {schema_path}: {e}");
        std::process::exit(2);
    });
    let schema = JsonValue::parse(&schema_src).unwrap_or_else(|e| {
        eprintln!("error: {schema_path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    if let Err(e) = validate_against_schema(&doc, &schema) {
        eprintln!("error: report fails its own schema: {e}");
        std::process::exit(1);
    }
    std::fs::write(&args.out, &report).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    eprintln!(
        "wrote {} ({} cells, schema-validated, bit-identical across {} kernels x {} thread counts)",
        args.out,
        cells.len(),
        KERNELS.len(),
        THREADS.len(),
    );
}

fn render_report(
    args: &Args,
    attacks: &[fn() -> Workload],
    defenses: &[&str],
    fault_modes: &[&str],
    mlmc_runs: usize,
    cells: &[Cell],
) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(1024 + 256 * cells.len());
    s.push_str("{\n");
    let _ = writeln!(s, "  \"format\": \"xlmc-scenario-v1\",");
    let _ = writeln!(s, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(s, "  \"seed\": {},", args.seed);
    let _ = writeln!(s, "  \"runs\": {},", args.runs);
    let _ = writeln!(s, "  \"mlmc_runs\": {mlmc_runs},");
    let names: Vec<String> = attacks
        .iter()
        .map(|a| format!("\"{}\"", json_escape(a().name)))
        .collect();
    let _ = writeln!(s, "  \"attacks\": [{}],", names.join(", "));
    let quoted = |xs: &[&str]| {
        xs.iter()
            .map(|x| format!("\"{x}\""))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(s, "  \"defenses\": [{}],", quoted(defenses));
    let _ = writeln!(s, "  \"fault_modes\": [{}],", quoted(fault_modes));
    let kernels: Vec<&str> = KERNELS.iter().map(|k| k.as_arg()).collect();
    let _ = writeln!(s, "  \"kernels_checked\": [{}],", quoted(&kernels));
    let threads: Vec<String> = THREADS.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(s, "  \"thread_counts_checked\": [{}],", threads.join(", "));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.reference;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"attack\": \"{}\",", json_escape(c.attack));
        let _ = writeln!(s, "      \"defense\": \"{}\",", c.defense);
        let _ = writeln!(s, "      \"fault_mode\": \"{}\",", c.fault_mode);
        let _ = writeln!(s, "      \"n\": {},", r.n);
        let _ = writeln!(s, "      \"ssf\": {},", num(r.ssf));
        let _ = writeln!(s, "      \"ssf_bits\": \"{:#018x}\",", r.ssf.to_bits());
        let _ = writeln!(s, "      \"sample_variance\": {},", num(r.sample_variance));
        let _ = writeln!(s, "      \"successes\": {},", r.successes);
        let _ = writeln!(s, "      \"area_overhead\": {},", num(c.area_overhead));
        let _ = writeln!(s, "      \"mlmc_ssf\": {},", num(c.mlmc_ssf));
        let _ = writeln!(s, "      \"mlmc_correction\": {},", num(c.mlmc_correction));
        let _ = writeln!(s, "      \"elapsed_s\": {}", num(c.elapsed_s));
        s.push_str(if i + 1 == cells.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// A finite `f64` as a JSON number (the report never carries non-finite
/// statistics; a NaN would fail the schema's `number` type as `null`).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}
