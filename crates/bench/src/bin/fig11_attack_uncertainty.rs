//! Figure 11: impact of the attack technique's intrinsic uncertainty.
//!
//! Reproduces "(a) the impact of temporal accuracy" — normalized SSF as the
//! width of the uniform timing window shrinks around the attacker's aim
//! point — and "(b) the impact of parameter variation" — normalized SSF as
//! the spatial distribution tightens from uniform over the sub-block to a
//! delta at the best target cell. Both are evaluated for the memory-write
//! and memory-read benchmarks, as in the paper.

use xlmc::estimator::CampaignOptions;
use xlmc::flow::FaultRunner;
use xlmc::sampling::{subblock_cells, RandomSampling};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_bench::{print_table, run_observed_campaign, ExperimentContext};
use xlmc_fault::{AttackDistribution, RadiusDist, SpatialDist, TemporalDist};
use xlmc_netlist::GateId;
use xlmc_soc::MpuBit;

/// SSF of the write/read benchmark under a given attacker distribution.
#[allow(clippy::too_many_arguments)]
fn ssf(
    model: &SystemModel,
    eval: &Evaluation,
    prechar: &Precharacterization,
    f: AttackDistribution,
    n: usize,
    seed: u64,
    opts: &CampaignOptions,
    tag: &str,
) -> f64 {
    let runner = FaultRunner {
        model,
        eval,
        prechar,
        hardening: None,
        multi_fault: None,
    };
    run_observed_campaign(&runner, &RandomSampling::new(f), n, seed, opts, tag).ssf
}

fn main() {
    let opts = CampaignOptions::from_args();
    let ctx = ExperimentContext::build_observed(&opts);
    let subblock = subblock_cells(&ctx.model, ctx.cfg.subblock_fraction);
    let radius = RadiusDist::uniform(ctx.cfg.radius_options.clone());
    let n = 3_000;

    // (a) Temporal accuracy: the attacker aims at t* = 2 (the earliest
    // cycle whose errors reach the verdict); the technique's limited
    // temporal accuracy spreads the actual injection uniformly over a
    // window of growing width starting at the aim point. Normalization is
    // against the widest window, so the series reads like the paper's:
    // normalized SSF rising as the range shrinks.
    let aim = 2i64;
    let widths = [1i64, 2, 5, 10, 20, 50, 100];
    let n_a = 6_000;
    let mut raw = Vec::new();
    for &w in &widths {
        let f = AttackDistribution {
            temporal: TemporalDist::uniform(aim, aim + w - 1),
            spatial: SpatialDist::UniformOverCells(subblock.clone()),
            radius: radius.clone(),
        };
        let sw = ssf(
            &ctx.model,
            &ctx.write_eval,
            &ctx.prechar,
            f.clone(),
            n_a,
            0x11A + w as u64,
            &opts,
            &format!("fig11a-w{w}-write"),
        );
        let sr = ssf(
            &ctx.model,
            &ctx.read_eval,
            &ctx.prechar,
            f,
            n_a,
            0x11B + w as u64,
            &opts,
            &format!("fig11a-w{w}-read"),
        );
        raw.push((w, sw, sr));
    }
    let (_, base_w, base_r) = *raw.last().expect("non-empty sweep");
    let rows: Vec<Vec<String>> = raw
        .iter()
        .map(|&(w, sw, sr)| {
            vec![
                w.to_string(),
                format!("{sw:.4}"),
                format!("{:.2}", sw / base_w.max(1e-9)),
                format!("{sr:.4}"),
                format!("{:.2}", sr / base_r.max(1e-9)),
            ]
        })
        .collect();
    print_table(
        "Figure 11(a): SSF vs temporal-accuracy range (aim at t = 2)",
        &[
            "range [cycles]",
            "SSF write",
            "norm. write",
            "SSF read",
            "norm. read",
        ],
        &rows,
    );
    println!("  (paper: normalized SSF rises significantly as the range shrinks)");

    // (b) Spatial accuracy: uniform over the sub-block, uniform over the
    // spot-reachable neighborhood of the best cell, delta at the best cell.
    let best: GateId = ctx.model.mpu.dff(MpuBit::Enable);
    let neighborhood = ctx
        .model
        .placement
        .cells_within(best, 3.0)
        .into_iter()
        .filter(|g| subblock.contains(g))
        .collect::<Vec<_>>();
    let spatials: Vec<(&str, SpatialDist)> = vec![
        ("uniform", SpatialDist::UniformOverCells(subblock.clone())),
        (
            "neighborhood",
            SpatialDist::UniformOverCells(if neighborhood.is_empty() {
                vec![best]
            } else {
                neighborhood
            }),
        ),
        ("delta", SpatialDist::Delta(best)),
    ];
    let mut rows = Vec::new();
    let mut base_write = None;
    let mut base_read = None;
    for (name, spatial) in spatials {
        let f = AttackDistribution {
            temporal: TemporalDist::uniform(1, ctx.cfg.t_max),
            spatial,
            radius: radius.clone(),
        };
        let sw = ssf(
            &ctx.model,
            &ctx.write_eval,
            &ctx.prechar,
            f.clone(),
            n,
            0x11C,
            &opts,
            &format!("fig11b-{name}-write"),
        );
        let sr = ssf(
            &ctx.model,
            &ctx.read_eval,
            &ctx.prechar,
            f,
            n,
            0x11D,
            &opts,
            &format!("fig11b-{name}-read"),
        );
        base_write.get_or_insert(sw);
        base_read.get_or_insert(sr);
        rows.push(vec![
            name.to_string(),
            format!("{sw:.4}"),
            format!("{:.1}", sw / base_write.unwrap().max(1e-9)),
            format!("{sr:.4}"),
            format!("{:.1}", sr / base_read.unwrap().max(1e-9)),
        ]);
    }
    print_table(
        "Figure 11(b): SSF vs spatial accuracy (target: the MPU enable bit)",
        &[
            "spatial accuracy",
            "SSF write",
            "norm. write",
            "SSF read",
            "norm. read",
        ],
        &rows,
    );
    println!(
        "  (paper: tightening from uniform to delta raises normalized SSF by \
         one to two orders of magnitude)"
    );
}
