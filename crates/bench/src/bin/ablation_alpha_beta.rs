//! Ablation: sensitivity of the importance distribution to `α` and `β`.
//!
//! The paper introduces `α` and `β` as "configurable parameters that
//! control the calculation of the distribution" without studying them; this
//! extension sweeps both and reports the resulting sample variance, so a
//! user can see how much of the speedup each term buys. `α = 0` degenerates
//! to fanin-cone sampling.

use xlmc::estimator::CampaignOptions;
use xlmc::flow::FaultRunner;
use xlmc::sampling::{baseline_distribution, ImportanceSampling, RandomSampling};
use xlmc_bench::{print_table, run_observed_campaign, ExperimentContext};

fn main() {
    let opts = CampaignOptions::from_args();
    let ctx = ExperimentContext::build_observed(&opts);
    let runner = FaultRunner {
        model: &ctx.model,
        eval: &ctx.write_eval,
        prechar: &ctx.prechar,
        hardening: None,
        multi_fault: None,
    };
    let f = baseline_distribution(&ctx.model, &ctx.cfg);
    let n = 3_000;

    let random = run_observed_campaign(
        &runner,
        &RandomSampling::new(f.clone()),
        n,
        0xAB,
        &opts,
        "abl",
    );
    println!(
        "random baseline: ssf={:.5} variance={:.3e}",
        random.ssf, random.sample_variance
    );

    let mut rows = Vec::new();
    for &alpha in &[0.0, 5.0, 20.0, 40.0, 80.0, 200.0] {
        for &beta in &[0.0, 0.5, 1.0, 2.0] {
            let is = ImportanceSampling::new(
                f.clone(),
                &ctx.model,
                &ctx.prechar,
                alpha,
                beta,
                ctx.cfg.radius_options.clone(),
            );
            let r = run_observed_campaign(
                &runner,
                &is,
                n,
                0xABCD,
                &opts,
                &format!("abl-a{alpha}-b{beta}"),
            );
            rows.push(vec![
                format!("{alpha}"),
                format!("{beta}"),
                format!("{:.5}", r.ssf),
                format!("{:.3e}", r.sample_variance),
                format!(
                    "{:.2}x",
                    random.sample_variance / r.sample_variance.max(1e-12)
                ),
            ]);
        }
    }
    print_table(
        "alpha/beta ablation (variance vs random baseline)",
        &["alpha", "beta", "SSF", "variance", "reduction"],
        &rows,
    );
}
