//! The hardening study of paper §6.
//!
//! "We are able to recognize that there are around 3% registers that
//! contribute to more than 95% SSF. ... Suppose we use error resilient
//! designs for the identified 3% registers, which permits around 10X better
//! resilience with 3X area overhead, then the overall SSF can be reduced by
//! up to 6.5X with less than 2% increase of MPU area."
//!
//! The study runs an importance-sampling campaign, ranks registers by their
//! SSF attribution, hardens the top 3%, and re-evaluates.

use xlmc::estimator::CampaignOptions;
use xlmc::flow::FaultRunner;
use xlmc::harden::{select_top_registers, HardenedSet, HardenedVariant, HardeningModel};
use xlmc::sampling::{baseline_distribution, ImportanceSampling};
use xlmc_bench::{pct, print_table, run_observed_campaign, ExperimentContext};

fn main() {
    let opts = CampaignOptions::from_args();
    let ctx = ExperimentContext::build_observed(&opts);
    let runner = FaultRunner {
        model: &ctx.model,
        eval: &ctx.write_eval,
        prechar: &ctx.prechar,
        hardening: None,
        multi_fault: None,
    };
    let f = baseline_distribution(&ctx.model, &ctx.cfg);
    let is = ImportanceSampling::new(
        f,
        &ctx.model,
        &ctx.prechar,
        ctx.cfg.alpha,
        ctx.cfg.beta,
        ctx.cfg.radius_options.clone(),
    );

    // Baseline campaign with per-register SSF attribution.
    eprintln!("[hardening] baseline campaign ...");
    let n = 8_000;
    let baseline = run_observed_campaign(&runner, &is, n, 0x4A8D, &opts, "harden-baseline");
    println!(
        "baseline SSF = {:.5} ({} successes / {} runs)",
        baseline.ssf, baseline.successes, n
    );

    // Identify the critical registers.
    let total_regs = ctx.model.mpu.netlist().dffs().len();
    let fraction = 0.03;
    let (critical, coverage) = select_top_registers(&baseline.attribution, total_regs, fraction);
    let rows: Vec<Vec<String>> = critical
        .iter()
        .map(|b| {
            vec![
                b.dff_name(),
                format!("{:.4}", baseline.attribution.get(b).copied().unwrap_or(0.0)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Top {} registers ({}% of {} total) by SSF attribution",
            critical.len(),
            (fraction * 100.0) as u32,
            total_regs
        ),
        &["register", "attributed weight"],
        &rows,
    );
    println!(
        "  these registers cover {} of the attributed SSF (paper: 3% of \
         registers contribute >95% of SSF)",
        pct(coverage)
    );

    // Harden them and re-evaluate.
    let model = HardeningModel::default();
    let hardened = HardenedVariant::Uniform(HardenedSet::new(critical.clone(), model));
    let overhead = hardened.area_overhead(&ctx.model);
    let hardened_runner = FaultRunner {
        hardening: Some(&hardened),
        multi_fault: None,
        ..runner
    };
    eprintln!("[hardening] hardened campaign ...");
    let after = run_observed_campaign(&hardened_runner, &is, n, 0x4A8E, &opts, "harden-after");

    print_table(
        "Hardening outcome",
        &["design", "SSF", "successes", "MPU area overhead"],
        &[
            vec![
                "baseline".into(),
                format!("{:.5}", baseline.ssf),
                baseline.successes.to_string(),
                "-".into(),
            ],
            vec![
                format!("hardened top {}", critical.len()),
                format!("{:.5}", after.ssf),
                after.successes.to_string(),
                pct(overhead),
            ],
        ],
    );
    if after.ssf > 0.0 {
        println!(
            "\n  SSF reduction: {:.1}x with {} area overhead \
             (paper: up to 6.5x with <2% area, using 10x-resilient cells at 3x cell area)",
            baseline.ssf / after.ssf,
            pct(overhead)
        );
    } else {
        println!(
            "\n  SSF reduced below measurement resolution with {} area overhead",
            pct(overhead)
        );
    }
}
