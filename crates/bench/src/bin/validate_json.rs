//! Validate JSON documents against one of the checked-in schemas.
//!
//! ```text
//! validate_json <schema.json> <doc.json> [<doc.json> ...]
//! ```
//!
//! Uses the in-tree validator ([`xlmc::telemetry::validate_against_schema`]),
//! which supports the subset of JSON Schema the `schemas/` files use.
//! Exits 0 when every document validates, 1 on the first violation, 2 on
//! usage or I/O errors. CI runs this over the metrics and trace files the
//! smoke campaign writes.

use xlmc::telemetry::{validate_against_schema, JsonValue};

fn load(path: &str) -> JsonValue {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    JsonValue::parse(&src).unwrap_or_else(|e| {
        eprintln!("error: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: validate_json <schema.json> <doc.json> [<doc.json> ...]");
        std::process::exit(2);
    }
    let schema = load(&args[0]);
    let mut failed = false;
    for path in &args[1..] {
        let doc = load(path);
        match validate_against_schema(&doc, &schema) {
            Ok(()) => println!("{path}: ok"),
            Err(e) => {
                eprintln!("{path}: FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
