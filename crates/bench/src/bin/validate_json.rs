//! Validate JSON documents against one of the checked-in schemas.
//!
//! ```text
//! validate_json [--jsonl] <schema.json> <doc.json> [<doc.json> ...]
//! ```
//!
//! Uses the in-tree validator ([`xlmc::telemetry::validate_against_schema`]),
//! which supports the subset of JSON Schema the `schemas/` files use.
//! With `--jsonl` each input is treated as line-delimited JSON and every
//! non-empty line is validated against the schema on its own (the mode CI
//! uses for the `--events` lifecycle stream). Exits 0 when every document
//! validates, 1 on the first violation, 2 on usage or I/O errors. CI runs
//! this over the metrics, trace, and events files the smoke campaign
//! writes.

use xlmc::telemetry::{validate_against_schema, JsonValue};

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

fn load(path: &str) -> JsonValue {
    JsonValue::parse(&read(path)).unwrap_or_else(|e| {
        eprintln!("error: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jsonl = args.first().is_some_and(|a| a == "--jsonl");
    if jsonl {
        args.remove(0);
    }
    if args.len() < 2 {
        eprintln!("usage: validate_json [--jsonl] <schema.json> <doc.json> [<doc.json> ...]");
        std::process::exit(2);
    }
    let schema = load(&args[0]);
    let mut failed = false;
    for path in &args[1..] {
        if jsonl {
            let src = read(path);
            let mut lines = 0usize;
            let mut ok = true;
            for (i, line) in src.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                lines += 1;
                let doc = JsonValue::parse(line).unwrap_or_else(|e| {
                    eprintln!("error: {path}:{} is not valid JSON: {e}", i + 1);
                    std::process::exit(2);
                });
                if let Err(e) = validate_against_schema(&doc, &schema) {
                    eprintln!("{path}:{}: FAIL: {e}", i + 1);
                    ok = false;
                    failed = true;
                }
            }
            if ok {
                println!("{path}: ok ({lines} lines)");
            }
        } else {
            let doc = load(path);
            match validate_against_schema(&doc, &schema) {
                Ok(()) => println!("{path}: ok"),
                Err(e) => {
                    eprintln!("{path}: FAIL: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
