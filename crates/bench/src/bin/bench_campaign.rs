//! Campaign-engine throughput benchmark: runs/sec of the compiled,
//! batched and scalar kernels against a sequential seed-style baseline.
//!
//! The baseline reproduces the pre-sharding engine: one shared `StdRng`,
//! the allocating [`FaultRunner::run`] per attack (fresh cycle values,
//! fresh strike buffers, cloned checkpoint on every RTL resume). The
//! `scalar_threads_1` row is the sharded engine with the one-run-at-a-time
//! kernel; the `engine_threads_N` rows are the 64-lane batched kernel at
//! 1, 2 and 4 worker threads; the `engine_compiled_threads_N` rows are
//! the default 256-wide compiled-program kernel at the same thread
//! counts; `engine_threads_1_noff` repeats the single-thread batched row
//! with the RTL fast-forward layer disabled (`--fast-forward off`) to
//! isolate its contribution — same number of runs, same flow, per-run
//! `SplitMix64` streams, bit-identical results across every row but the
//! baseline (whose RNG scheme predates per-run streams). The
//! `engine_mlmc_threads_{1,4}` rows run the two-level MLMC estimator
//! (`--estimator mlmc`): its estimate is asserted bit-identical across
//! threads {1,4} and all three kernels.
//!
//! Every row reports the fastest of three repeats (scheduler
//! interference on a shared host is one-sided, so max-of-N estimates
//! uncontended throughput; the result is asserted bit-identical across
//! repeats). Results land in `BENCH_campaign.json` in the working directory
//! (`schemas/bench.schema.json`), one object per configuration with
//! runs/sec and the speedup over the baseline; `--bench-json PATH` writes
//! the same document to PATH in any mode (the CI smoke validates it
//! against the schema).
//!
//! A strike-only **gate-level-path microbenchmark** accompanies the
//! end-to-end rows (the `gate_path` object in the JSON): the same
//! stratified draw pushed through each kernel's strike phase alone, which
//! is where the kernels actually differ — the draw/conclude/fold phases
//! are kernel-invariant scalar work that dilutes end-to-end ratios.
//!
//! `--smoke` also runs both estimators to the same `--target-eps` goal
//! and **fails** (exit 1) if MLMC spends more than 0.5x the single
//! estimator's gate-accurate runs, or if its estimate leaves the 3-sigma
//! band around the gate-accurate reference (both gates are deterministic
//! run-count comparisons, never wall-clock).
//!
//! `--smoke` runs a reduced campaign and **fails** (exit 1) if the batched
//! kernel's single-thread throughput drops below the scalar kernel's, if
//! the compiled kernel's gate path drops below 1.2x the batched kernel's
//! (or its end-to-end rate below 0.9x batched), if the fast-forwarding
//! row falls behind its fast-forward-off twin, or — on a host with 4+
//! CPUs — if two compiled workers fall below 0.7x one worker (the
//! threads-scaling regression gate). With `--trace` the
//! throughput gates are reported but not enforced: span recording adds
//! per-batch overhead only the packed kernels pay, so the comparison is
//! unfair.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;
use xlmc::estimator::{
    gate_path_bench, replay_run, run_campaign_observed, run_campaign_with, CampaignKernel,
    CampaignOptions, EstimatorKind, GatePathBench, StopReason,
};
use xlmc::flow::FaultRunner;
use xlmc::sampling::{baseline_distribution, ImportanceSampling, SamplingStrategy};
use xlmc::stats::RunningStats;
use xlmc::telemetry::StderrProgress;
use xlmc::trace::TraceSink;
use xlmc_bench::{tagged_path, ExperimentContext};

const RUNS: usize = 100_000;
const SMOKE_RUNS: usize = 20_000;
const SEED: u64 = 0xBE7C;
/// Every row is measured `REPEATS` times and the fastest repeat is kept.
/// On a shared host the scheduler noise at these durations (tens of
/// milliseconds in smoke mode) exceeds the kernel-vs-kernel deltas the
/// gates guard, and interference is one-sided — it only ever slows a
/// run down — so max-of-N is the honest throughput estimator.
const REPEATS: usize = 3;

struct Row {
    label: String,
    runs_per_sec: f64,
    elapsed_s: f64,
    ssf: f64,
}

/// The seed engine, verbatim: sequential, one shared RNG, allocating
/// per-run path.
fn baseline(runner: &FaultRunner<'_>, strategy: &dyn SamplingStrategy, runs: usize) -> Row {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut stats = RunningStats::new();
    let start = Instant::now();
    for _ in 0..runs {
        let sample = strategy.draw(&mut rng);
        let w = strategy.weight(&sample);
        let outcome = runner.run(&sample, &mut rng);
        stats.push(if outcome.success { w } else { 0.0 });
    }
    let elapsed = start.elapsed().as_secs_f64();
    Row {
        label: "baseline_sequential".into(),
        runs_per_sec: runs as f64 / elapsed,
        elapsed_s: elapsed,
        ssf: stats.mean(),
    }
}

fn engine(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    runs: usize,
    threads: usize,
    kernel: CampaignKernel,
    label: String,
    base: &CampaignOptions,
) -> Row {
    let mut opts = CampaignOptions {
        threads,
        kernel,
        ..base.clone()
    };
    // Tag the output paths per row so configurations don't clobber each
    // other (same scheme as run_observed_campaign).
    if let Some(p) = &opts.metrics_path {
        opts.metrics_path = Some(tagged_path(p, &label));
    }
    if let Some(p) = &opts.checkpoint_path {
        opts.checkpoint_path = Some(tagged_path(p, &label));
    }
    if let Some(p) = &opts.trace_path {
        opts.trace_path = Some(tagged_path(p, &label));
    }
    if let Some(p) = &opts.events_path {
        opts.events_path = Some(tagged_path(p, &label));
    }
    if let Some(p) = &opts.prom_path {
        opts.prom_path = Some(tagged_path(p, &label));
    }
    let mut progress = StderrProgress::new(&label);
    let start = Instant::now();
    let r = run_campaign_observed(runner, strategy, runs, SEED, &opts, &mut progress);
    let elapsed = start.elapsed().as_secs_f64();
    // Provenance check: re-derive the campaign's first successful run
    // solo from (seed, index) and require the same verdict.
    if let Some(idx) = r.first_success {
        let rec = replay_run(runner, strategy, SEED, idx, &TraceSink::disabled());
        assert!(
            rec.success,
            "{label}: replay of first successful run {idx} did not succeed"
        );
        eprintln!("[{label}] replayed first success (run {idx}): verdict matches");
    }
    Row {
        label,
        runs_per_sec: runs as f64 / elapsed,
        elapsed_s: elapsed,
        ssf: r.ssf,
    }
}

/// Best-of-[`REPEATS`] wrapper around [`engine`]: keeps the fastest
/// repeat and checks the result stayed bit-identical across repeats.
#[allow(clippy::too_many_arguments)]
fn engine_best(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    runs: usize,
    threads: usize,
    kernel: CampaignKernel,
    label: String,
    base: &CampaignOptions,
) -> Row {
    let mut best: Option<Row> = None;
    for _ in 0..REPEATS {
        let row = engine(runner, strategy, runs, threads, kernel, label.clone(), base);
        best = Some(match best {
            None => row,
            Some(b) => {
                assert!(
                    b.ssf == row.ssf,
                    "{label}: ssf changed across repeats: {} != {}",
                    b.ssf,
                    row.ssf
                );
                if row.runs_per_sec > b.runs_per_sec {
                    row
                } else {
                    b
                }
            }
        });
    }
    best.expect("REPEATS >= 1")
}

fn main() {
    // parse_args ignores unknown flags, so `--smoke` passes through.
    let base_opts = CampaignOptions::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runs = if smoke { SMOKE_RUNS } else { RUNS };
    eprintln!("[bench_campaign] building model and golden runs ...");
    let ctx = ExperimentContext::build_observed(&base_opts);
    let runner = FaultRunner {
        model: &ctx.model,
        eval: &ctx.write_eval,
        prechar: &ctx.prechar,
        hardening: None,
        multi_fault: None,
    };
    let f = baseline_distribution(&ctx.model, &ctx.cfg);
    let strategy = ImportanceSampling::new(
        f,
        &ctx.model,
        &ctx.prechar,
        ctx.cfg.alpha,
        ctx.cfg.beta,
        ctx.cfg.radius_options.clone(),
    );

    eprintln!("[bench_campaign] {runs} importance-sampled attacks per configuration ...");
    let base_row = (0..REPEATS)
        .map(|_| baseline(&runner, &strategy, runs))
        .max_by(|a, b| a.runs_per_sec.total_cmp(&b.runs_per_sec))
        .expect("REPEATS >= 1");
    let mut rows = vec![
        base_row,
        engine_best(
            &runner,
            &strategy,
            runs,
            1,
            CampaignKernel::Scalar,
            "scalar_threads_1".into(),
            &base_opts,
        ),
    ];
    for threads in [1, 2, 4] {
        rows.push(engine_best(
            &runner,
            &strategy,
            runs,
            threads,
            CampaignKernel::Batched,
            format!("engine_threads_{threads}"),
            &base_opts,
        ));
    }
    for threads in [1, 2, 4] {
        rows.push(engine_best(
            &runner,
            &strategy,
            runs,
            threads,
            CampaignKernel::Compiled,
            format!("engine_compiled_threads_{threads}"),
            &base_opts,
        ));
    }
    // The fast-forward ablation: same engine, same kernel, checkpoint
    // cache + early exit + shared memo disabled.
    let noff_opts = CampaignOptions {
        fast_forward: false,
        ..base_opts.clone()
    };
    rows.push(engine_best(
        &runner,
        &strategy,
        runs,
        1,
        CampaignKernel::Batched,
        "engine_threads_1_noff".into(),
        &noff_opts,
    ));
    // The two-level MLMC estimator: the cheap level maps each SET to a
    // multi-bit SEU and skips the netlist, the coupled correction level
    // re-evaluates the same (seed, run-index) faults gate-accurately.
    let mlmc_base = CampaignOptions {
        estimator: EstimatorKind::Mlmc,
        ..base_opts.clone()
    };
    for threads in [1, 4] {
        rows.push(engine_best(
            &runner,
            &strategy,
            runs,
            threads,
            CampaignKernel::Compiled,
            format!("engine_mlmc_threads_{threads}"),
            &mlmc_base,
        ));
    }

    // The telemetry ablation: compiled kernel with the event stream and
    // the Prometheus exposition forced on. Telemetry is specified as a
    // pure observer, so the overhead gate below holds its throughput
    // against the bare compiled row.
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let telemetry_opts = CampaignOptions {
        events_path: Some(
            base_opts
                .events_path
                .clone()
                .unwrap_or_else(|| tmp.join(format!("bench_campaign_{pid}.events.jsonl"))),
        ),
        prom_path: Some(
            base_opts
                .prom_path
                .clone()
                .unwrap_or_else(|| tmp.join(format!("bench_campaign_{pid}.prom"))),
        ),
        ..base_opts.clone()
    };
    rows.push(engine_best(
        &runner,
        &strategy,
        runs,
        1,
        CampaignKernel::Compiled,
        "engine_telemetry_threads_1".into(),
        &telemetry_opts,
    ));

    // The gate-level path in isolation: strike-only passes over one
    // stratified draw, per kernel. This is the comparison the compiled
    // kernel exists for — end-to-end rows dilute it with the scalar
    // draw/conclude/fold work every kernel pays identically.
    eprintln!("[bench_campaign] gate-level-path microbenchmark ...");
    let gp_runs = runs.min(50_000);
    let gp = |kernel| gate_path_bench(&runner, &strategy, gp_runs, SEED, kernel, REPEATS);
    let gp_scalar: GatePathBench = gp(CampaignKernel::Scalar);
    let gp_batched = gp(CampaignKernel::Batched);
    let gp_compiled = gp(CampaignKernel::Compiled);
    for (a, b) in [(&gp_scalar, &gp_batched), (&gp_batched, &gp_compiled)] {
        assert!(
            a.pulses == b.pulses && a.faulty == b.faulty,
            "gate-path checksums diverged: {}/{} pulses, {}/{} faulty-reg sums",
            a.pulses,
            b.pulses,
            a.faulty,
            b.faulty
        );
    }
    let gp_ratio = gp_compiled.lanes_per_sec() / gp_batched.lanes_per_sec();

    let base_rate = rows[0].runs_per_sec;
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut json = String::from("{\n  \"runs\": ");
    let _ = write!(
        json,
        "{runs},\n  \"seed\": {SEED},\n  \"host_cpus\": {host_cpus},\n  \"configs\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"runs_per_sec\": {:.2}, \"elapsed_s\": {:.4}, \
             \"speedup_vs_baseline\": {:.3}, \"ssf\": {:.6}}}{}",
            r.label,
            r.runs_per_sec,
            r.elapsed_s,
            r.runs_per_sec / base_rate,
            r.ssf,
            sep
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"gate_path\": {{\"runs\": {}, \"sweep_lanes\": [1, 64, 256], \
         \"scalar_lanes_per_sec\": {:.2}, \"batched_lanes_per_sec\": {:.2}, \
         \"compiled_lanes_per_sec\": {:.2}, \"compiled_vs_batched\": {:.3}}}",
        gp_scalar.lanes,
        gp_scalar.lanes_per_sec(),
        gp_batched.lanes_per_sec(),
        gp_compiled.lanes_per_sec(),
        gp_ratio
    );
    json.push_str("}\n");
    if !smoke {
        std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    }
    // `--bench-json PATH`: write the artifact in any mode (CI validates
    // the smoke run's document against schemas/bench.schema.json).
    let mut argv = std::env::args();
    while let Some(a) = argv.next() {
        let path = match a.split_once('=') {
            Some(("--bench-json", v)) => Some(v.to_owned()),
            _ if a == "--bench-json" => argv.next(),
            _ => None,
        };
        if let Some(path) = path {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("[bench_campaign] wrote {path}");
        }
    }

    println!("\n== campaign throughput ({runs} runs, importance sampling) ==");
    for r in &rows {
        println!(
            "  {:22} {:>9.1} runs/s  ({:.2}s, {:.2}x baseline)",
            r.label,
            r.runs_per_sec,
            r.elapsed_s,
            r.runs_per_sec / base_rate
        );
    }
    println!(
        "\n== gate-level path ({} in-run lanes, strike only, best of {REPEATS}) ==",
        gp_scalar.lanes
    );
    for (label, b) in [
        ("scalar", &gp_scalar),
        ("batched_64", &gp_batched),
        ("compiled_256", &gp_compiled),
    ] {
        println!(
            "  {:14} {:>10.1} lanes/s  ({} sweeps, {:.2}x scalar)",
            label,
            b.lanes_per_sec(),
            b.sweeps,
            b.lanes_per_sec() / gp_scalar.lanes_per_sec()
        );
    }
    println!("  compiled vs batched: {gp_ratio:.2}x");

    let scalar = rows
        .iter()
        .find(|r| r.label == "scalar_threads_1")
        .expect("scalar row");
    let batched = rows
        .iter()
        .find(|r| r.label == "engine_threads_1")
        .expect("batched row");
    let noff = rows
        .iter()
        .find(|r| r.label == "engine_threads_1_noff")
        .expect("fast-forward-off row");
    let compiled = rows
        .iter()
        .find(|r| r.label == "engine_compiled_threads_1")
        .expect("compiled row");
    let compiled_t2 = rows
        .iter()
        .find(|r| r.label == "engine_compiled_threads_2")
        .expect("compiled threads-2 row");
    assert!(
        scalar.ssf == batched.ssf,
        "kernel results diverged: scalar ssf {} != batched ssf {}",
        scalar.ssf,
        batched.ssf
    );
    assert!(
        scalar.ssf == compiled.ssf && compiled.ssf == compiled_t2.ssf,
        "kernel results diverged: scalar ssf {} != compiled ssf {} / {}",
        scalar.ssf,
        compiled.ssf,
        compiled_t2.ssf
    );
    assert!(
        batched.ssf == noff.ssf,
        "fast-forward changed the result: ssf {} != {} with it off",
        batched.ssf,
        noff.ssf
    );
    let telemetry = rows
        .iter()
        .find(|r| r.label == "engine_telemetry_threads_1")
        .expect("telemetry row");
    assert!(
        telemetry.ssf == compiled.ssf,
        "telemetry changed the result: ssf {} with events+prom != {} without",
        telemetry.ssf,
        compiled.ssf
    );
    let mlmc_t1 = rows
        .iter()
        .find(|r| r.label == "engine_mlmc_threads_1")
        .expect("mlmc threads-1 row");
    let mlmc_t4 = rows
        .iter()
        .find(|r| r.label == "engine_mlmc_threads_4")
        .expect("mlmc threads-4 row");
    assert!(
        mlmc_t1.ssf == mlmc_t4.ssf,
        "mlmc result diverged across threads: {} != {}",
        mlmc_t1.ssf,
        mlmc_t4.ssf
    );
    // The MLMC executors are scalar at every level, so the estimate must
    // be bit-identical under all three kernels (one untimed check each).
    for kernel in [CampaignKernel::Scalar, CampaignKernel::Batched] {
        let opts = CampaignOptions {
            kernel,
            threads: 1,
            metrics_path: None,
            checkpoint_path: None,
            trace_path: None,
            ..mlmc_base.clone()
        };
        let r = run_campaign_with(&runner, &strategy, runs, SEED, &opts);
        assert!(
            r.ssf == mlmc_t1.ssf,
            "mlmc result diverged under the {kernel:?} kernel: {} != {}",
            r.ssf,
            mlmc_t1.ssf
        );
    }
    if smoke {
        // MLMC budget gate (deterministic — run counts, never wall-clock):
        // at the same --target-eps/--target-confidence goal the MLMC
        // estimator must spend at most half the gate-accurate runs the
        // single estimator pays, and its point estimate must sit inside
        // the 3-sigma band around the gate-accurate reference.
        // Tight enough that the single estimator stops well above the
        // early-stop floor (otherwise both estimators idle at the minimum
        // and the budget comparison is vacuous).
        let eps = 0.005;
        let goal = CampaignOptions {
            target_eps: Some(eps),
            metrics_path: None,
            checkpoint_path: None,
            trace_path: None,
            ..base_opts.clone()
        };
        let single_goal = run_campaign_with(&runner, &strategy, runs, SEED, &goal);
        let mlmc_goal = run_campaign_with(
            &runner,
            &strategy,
            runs,
            SEED,
            &CampaignOptions {
                estimator: EstimatorKind::Mlmc,
                ..goal.clone()
            },
        );
        let m = mlmc_goal.mlmc.as_ref().expect("mlmc summary");
        let gate_runs_single = single_goal.n;
        let gate_runs_mlmc = m.n1 as usize;
        println!(
            "mlmc budget: {gate_runs_mlmc} gate-accurate runs (+{} RTL-only) vs \
             {gate_runs_single} for the single estimator at eps {eps}",
            m.n0
        );
        println!(
            "mlmc decomposition: s0^2 {:.3e} s1^2 {:.3e} (single s^2 {:.3e}), \
             share1 {:.3} (optimal {:.3}, plan {:?})",
            m.var0,
            m.var1_diff,
            single_goal.sample_variance,
            m.share1(),
            m.optimal_share1(),
            m.plan_ratio
        );
        assert_eq!(
            single_goal.stop,
            StopReason::TargetEps,
            "single estimator did not reach eps {eps} within {runs} runs"
        );
        assert_eq!(
            mlmc_goal.stop,
            StopReason::TargetEps,
            "mlmc estimator did not reach eps {eps} within {runs} runs"
        );
        if 2 * gate_runs_mlmc > gate_runs_single {
            eprintln!(
                "SMOKE FAIL: mlmc spent {gate_runs_mlmc} gate-accurate runs, above 0.5x the \
                 single estimator's {gate_runs_single}"
            );
            std::process::exit(1);
        }
        let se = (single_goal.sample_variance / single_goal.n as f64 + m.estimator_variance())
            .sqrt()
            .max(1e-4);
        if (single_goal.ssf - mlmc_goal.ssf).abs() > 3.0 * se {
            eprintln!(
                "SMOKE FAIL: mlmc estimate {} outside the 3-sigma band of the gate-accurate \
                 reference {} (sigma {se})",
                mlmc_goal.ssf, single_goal.ssf
            );
            std::process::exit(1);
        }
        // The throughput gate only means something untraced: span recording
        // sits inside the batched kernel's per-batch loop (the scalar kernel
        // records no inner spans), so a traced smoke run systematically
        // penalizes exactly the kernel the gate protects.
        if base_opts.trace_path.is_some() {
            println!(
                "smoke ok (traced; throughput gate skipped): batched {:.0} runs/s, \
                 scalar {:.0} runs/s",
                batched.runs_per_sec, scalar.runs_per_sec
            );
        } else if batched.runs_per_sec < scalar.runs_per_sec {
            eprintln!(
                "SMOKE FAIL: batched kernel ({:.0} runs/s) slower than scalar ({:.0} runs/s)",
                batched.runs_per_sec, scalar.runs_per_sec
            );
            std::process::exit(1);
        } else if gp_ratio < 1.2 {
            // The speedup claim is about the gate-level path: the strike
            // kernel itself, measured without the draw/conclude/fold work
            // that every kernel pays identically (both kernels propagate
            // the exact same pulse set, so that scalar work dilutes any
            // end-to-end ratio toward 1.0).
            eprintln!(
                "SMOKE FAIL: compiled gate path ({:.0} lanes/s) below 1.2x batched ({:.0} lanes/s)",
                gp_compiled.lanes_per_sec(),
                gp_batched.lanes_per_sec()
            );
            std::process::exit(1);
        } else if compiled.runs_per_sec < 0.9 * batched.runs_per_sec {
            // End-to-end sanity companion to the gate-path gate: compiled
            // shares every phase but the strike with batched, so it must
            // not be slower end to end. The 10% allowance matches the
            // fast-forward gate below: at smoke scale a row lasts tens of
            // milliseconds and scheduler noise on a shared host exceeds
            // the strike-phase delta even with best-of-3.
            eprintln!(
                "SMOKE FAIL: compiled kernel ({:.0} runs/s) slower end-to-end than batched \
                 ({:.0} runs/s)",
                compiled.runs_per_sec, batched.runs_per_sec
            );
            std::process::exit(1);
        } else if host_cpus >= 4 && compiled_t2.runs_per_sec < 0.7 * compiled.runs_per_sec {
            // Threads-scaling gate, only meaningful with real parallelism:
            // on a 1-CPU container two workers plus the merge thread
            // oversubscribe the core and legitimately run slower. The 0.7x
            // allowance tolerates merge/contention overhead while still
            // catching the serialized-shard pathology this gate exists for.
            eprintln!(
                "SMOKE FAIL: compiled kernel at 2 threads ({:.0} runs/s) fell below 0.7x its \
                 single-thread rate ({:.0} runs/s) on a {host_cpus}-CPU host",
                compiled_t2.runs_per_sec, compiled.runs_per_sec
            );
            std::process::exit(1);
        } else if base_opts.events_path.is_none()
            && telemetry.runs_per_sec < 0.95 * compiled.runs_per_sec
        {
            // Telemetry-overhead gate, armed only when the base options
            // leave events off (with --events set every row already pays
            // for the stream and the comparison is vacuous). Events and
            // prom writes happen on the merge thread at chunk/checkpoint
            // cadence, so a >5% hit means telemetry leaked into the hot
            // path.
            eprintln!(
                "SMOKE FAIL: telemetry (events + prom) cost more than 5% of compiled \
                 throughput ({:.0} runs/s vs {:.0} runs/s without it)",
                telemetry.runs_per_sec, compiled.runs_per_sec
            );
            std::process::exit(1);
        } else if batched.runs_per_sec < 0.85 * noff.runs_per_sec {
            // A 15% allowance: at smoke scale the conclusion memo only
            // skips a few percent of the RTL resumes, so the true
            // fast-forward delta is near zero while the campaign finishes
            // in tens of milliseconds — run-to-run noise on a shared
            // runner (see host_cpus in the artifact) exceeds it even with
            // best-of-3 rows. The gate catches a real regression —
            // fast-forward systematically behind its ablation — not
            // scheduler jitter.
            eprintln!(
                "SMOKE FAIL: fast-forward made the engine slower ({:.0} runs/s \
                 vs {:.0} runs/s with it off)",
                batched.runs_per_sec, noff.runs_per_sec
            );
            std::process::exit(1);
        } else {
            println!(
                "smoke ok: gate path compiled {gp_ratio:.2}x batched (>= 1.2x), end-to-end \
                 compiled {:.0} / batched {:.0} / scalar {:.0} runs/s, fast-forward {:.0} \
                 runs/s >= {:.0} runs/s without it, telemetry {:.2}x compiled",
                compiled.runs_per_sec,
                batched.runs_per_sec,
                scalar.runs_per_sec,
                batched.runs_per_sec,
                noff.runs_per_sec,
                telemetry.runs_per_sec / compiled.runs_per_sec
            );
        }
    } else {
        println!("wrote BENCH_campaign.json");
    }
}
