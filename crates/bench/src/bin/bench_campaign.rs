//! Campaign-engine throughput benchmark: runs/sec of the batched and
//! scalar kernels against a sequential seed-style baseline.
//!
//! The baseline reproduces the pre-sharding engine: one shared `StdRng`,
//! the allocating [`FaultRunner::run`] per attack (fresh cycle values,
//! fresh strike buffers, cloned checkpoint on every RTL resume). The
//! `scalar_threads_1` row is the sharded engine with the one-run-at-a-time
//! kernel; the `engine_threads_N` rows are the default 64-lane batched
//! kernel at 1, 2 and 4 worker threads; `engine_threads_1_noff` repeats
//! the single-thread batched row with the RTL fast-forward layer disabled
//! (`--fast-forward off`) to isolate its contribution — same number of
//! runs, same flow, per-run `SplitMix64` streams, bit-identical results
//! across every row but the baseline (whose RNG scheme predates per-run
//! streams).
//!
//! Results land in `BENCH_campaign.json` in the working directory, one
//! object per configuration with runs/sec and the speedup over the
//! baseline.
//!
//! `--smoke` runs a reduced campaign and **fails** (exit 1) if the batched
//! kernel's single-thread throughput drops below the scalar kernel's, or
//! if the fast-forwarding row falls behind its fast-forward-off twin — the
//! CI regression gates for the lane-packing fast path and the RTL
//! fast-forward layer. With `--trace` the kernel gate is reported but not
//! enforced: span recording adds per-batch overhead only the batched
//! kernel pays, so the comparison is unfair.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;
use xlmc::estimator::{replay_run, run_campaign_observed, CampaignKernel, CampaignOptions};
use xlmc::flow::FaultRunner;
use xlmc::sampling::{baseline_distribution, ImportanceSampling, SamplingStrategy};
use xlmc::stats::RunningStats;
use xlmc::telemetry::StderrProgress;
use xlmc::trace::TraceSink;
use xlmc_bench::{tagged_path, ExperimentContext};

const RUNS: usize = 100_000;
const SMOKE_RUNS: usize = 20_000;
const SEED: u64 = 0xBE7C;

struct Row {
    label: String,
    runs_per_sec: f64,
    elapsed_s: f64,
    ssf: f64,
}

/// The seed engine, verbatim: sequential, one shared RNG, allocating
/// per-run path.
fn baseline(runner: &FaultRunner<'_>, strategy: &dyn SamplingStrategy, runs: usize) -> Row {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut stats = RunningStats::new();
    let start = Instant::now();
    for _ in 0..runs {
        let sample = strategy.draw(&mut rng);
        let w = strategy.weight(&sample);
        let outcome = runner.run(&sample, &mut rng);
        stats.push(if outcome.success { w } else { 0.0 });
    }
    let elapsed = start.elapsed().as_secs_f64();
    Row {
        label: "baseline_sequential".into(),
        runs_per_sec: runs as f64 / elapsed,
        elapsed_s: elapsed,
        ssf: stats.mean(),
    }
}

fn engine(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    runs: usize,
    threads: usize,
    kernel: CampaignKernel,
    label: String,
    base: &CampaignOptions,
) -> Row {
    let mut opts = CampaignOptions {
        threads,
        kernel,
        ..base.clone()
    };
    // Tag the output paths per row so configurations don't clobber each
    // other (same scheme as run_observed_campaign).
    if let Some(p) = &opts.metrics_path {
        opts.metrics_path = Some(tagged_path(p, &label));
    }
    if let Some(p) = &opts.checkpoint_path {
        opts.checkpoint_path = Some(tagged_path(p, &label));
    }
    if let Some(p) = &opts.trace_path {
        opts.trace_path = Some(tagged_path(p, &label));
    }
    let mut progress = StderrProgress::new(&label);
    let start = Instant::now();
    let r = run_campaign_observed(runner, strategy, runs, SEED, &opts, &mut progress);
    let elapsed = start.elapsed().as_secs_f64();
    // Provenance check: re-derive the campaign's first successful run
    // solo from (seed, index) and require the same verdict.
    if let Some(idx) = r.first_success {
        let rec = replay_run(runner, strategy, SEED, idx, &TraceSink::disabled());
        assert!(
            rec.success,
            "{label}: replay of first successful run {idx} did not succeed"
        );
        eprintln!("[{label}] replayed first success (run {idx}): verdict matches");
    }
    Row {
        label,
        runs_per_sec: runs as f64 / elapsed,
        elapsed_s: elapsed,
        ssf: r.ssf,
    }
}

fn main() {
    // parse_args ignores unknown flags, so `--smoke` passes through.
    let base_opts = CampaignOptions::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runs = if smoke { SMOKE_RUNS } else { RUNS };
    eprintln!("[bench_campaign] building model and golden runs ...");
    let ctx = ExperimentContext::build_observed(&base_opts);
    let runner = FaultRunner {
        model: &ctx.model,
        eval: &ctx.write_eval,
        prechar: &ctx.prechar,
        hardening: None,
    };
    let f = baseline_distribution(&ctx.model, &ctx.cfg);
    let strategy = ImportanceSampling::new(
        f,
        &ctx.model,
        &ctx.prechar,
        ctx.cfg.alpha,
        ctx.cfg.beta,
        ctx.cfg.radius_options.clone(),
    );

    eprintln!("[bench_campaign] {runs} importance-sampled attacks per configuration ...");
    let mut rows = vec![
        baseline(&runner, &strategy, runs),
        engine(
            &runner,
            &strategy,
            runs,
            1,
            CampaignKernel::Scalar,
            "scalar_threads_1".into(),
            &base_opts,
        ),
    ];
    for threads in [1, 2, 4] {
        rows.push(engine(
            &runner,
            &strategy,
            runs,
            threads,
            CampaignKernel::Batched,
            format!("engine_threads_{threads}"),
            &base_opts,
        ));
    }
    // The fast-forward ablation: same engine, same kernel, checkpoint
    // cache + early exit + shared memo disabled.
    let noff_opts = CampaignOptions {
        fast_forward: false,
        ..base_opts.clone()
    };
    rows.push(engine(
        &runner,
        &strategy,
        runs,
        1,
        CampaignKernel::Batched,
        "engine_threads_1_noff".into(),
        &noff_opts,
    ));

    let base_rate = rows[0].runs_per_sec;
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut json = String::from("{\n  \"runs\": ");
    let _ = write!(
        json,
        "{runs},\n  \"seed\": {SEED},\n  \"host_cpus\": {host_cpus},\n  \"configs\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"runs_per_sec\": {:.2}, \"elapsed_s\": {:.4}, \
             \"speedup_vs_baseline\": {:.3}, \"ssf\": {:.6}}}{}",
            r.label,
            r.runs_per_sec,
            r.elapsed_s,
            r.runs_per_sec / base_rate,
            r.ssf,
            sep
        );
    }
    json.push_str("  ]\n}\n");
    if !smoke {
        std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    }

    println!("\n== campaign throughput ({runs} runs, importance sampling) ==");
    for r in &rows {
        println!(
            "  {:22} {:>9.1} runs/s  ({:.2}s, {:.2}x baseline)",
            r.label,
            r.runs_per_sec,
            r.elapsed_s,
            r.runs_per_sec / base_rate
        );
    }

    let scalar = rows
        .iter()
        .find(|r| r.label == "scalar_threads_1")
        .expect("scalar row");
    let batched = rows
        .iter()
        .find(|r| r.label == "engine_threads_1")
        .expect("batched row");
    let noff = rows
        .iter()
        .find(|r| r.label == "engine_threads_1_noff")
        .expect("fast-forward-off row");
    assert!(
        scalar.ssf == batched.ssf,
        "kernel results diverged: scalar ssf {} != batched ssf {}",
        scalar.ssf,
        batched.ssf
    );
    assert!(
        batched.ssf == noff.ssf,
        "fast-forward changed the result: ssf {} != {} with it off",
        batched.ssf,
        noff.ssf
    );
    if smoke {
        // The throughput gate only means something untraced: span recording
        // sits inside the batched kernel's per-batch loop (the scalar kernel
        // records no inner spans), so a traced smoke run systematically
        // penalizes exactly the kernel the gate protects.
        if base_opts.trace_path.is_some() {
            println!(
                "smoke ok (traced; throughput gate skipped): batched {:.0} runs/s, \
                 scalar {:.0} runs/s",
                batched.runs_per_sec, scalar.runs_per_sec
            );
        } else if batched.runs_per_sec < scalar.runs_per_sec {
            eprintln!(
                "SMOKE FAIL: batched kernel ({:.0} runs/s) slower than scalar ({:.0} runs/s)",
                batched.runs_per_sec, scalar.runs_per_sec
            );
            std::process::exit(1);
        } else if batched.runs_per_sec < 0.9 * noff.runs_per_sec {
            // A 10% allowance: at smoke scale the campaign finishes in tens
            // of milliseconds, and on a shared 1-CPU runner (see host_cpus
            // in the artifact) run-to-run noise exceeds the fast-forward
            // delta. The gate catches a real regression — fast-forward
            // systematically behind its ablation — not scheduler jitter.
            eprintln!(
                "SMOKE FAIL: fast-forward made the engine slower ({:.0} runs/s \
                 vs {:.0} runs/s with it off)",
                batched.runs_per_sec, noff.runs_per_sec
            );
            std::process::exit(1);
        } else {
            println!(
                "smoke ok: batched {:.0} runs/s >= scalar {:.0} runs/s, \
                 fast-forward {:.0} runs/s >= {:.0} runs/s without it",
                batched.runs_per_sec, scalar.runs_per_sec, batched.runs_per_sec, noff.runs_per_sec
            );
        }
    } else {
        println!("wrote BENCH_campaign.json");
    }
}
