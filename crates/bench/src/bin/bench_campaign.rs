//! Campaign-engine throughput benchmark: runs/sec of the batched and
//! scalar kernels against a sequential seed-style baseline.
//!
//! The baseline reproduces the pre-sharding engine: one shared `StdRng`,
//! the allocating [`FaultRunner::run`] per attack (fresh cycle values,
//! fresh strike buffers, cloned checkpoint on every RTL resume). The
//! `scalar_threads_1` row is the sharded engine with the one-run-at-a-time
//! kernel; the `engine_threads_N` rows are the default 64-lane batched
//! kernel at 1, 2 and 4 worker threads — same number of runs, same flow,
//! per-run `SplitMix64` streams, bit-identical results across every row
//! but the baseline (whose RNG scheme predates per-run streams).
//!
//! Results land in `BENCH_campaign.json` in the working directory, one
//! object per configuration with runs/sec and the speedup over the
//! baseline.
//!
//! `--smoke` runs a reduced campaign and **fails** (exit 1) if the batched
//! kernel's single-thread throughput drops below the scalar kernel's — the
//! CI regression gate for the lane-packing fast path.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;
use xlmc::estimator::{run_campaign_observed, CampaignKernel, CampaignOptions};
use xlmc::flow::FaultRunner;
use xlmc::sampling::{baseline_distribution, ImportanceSampling, SamplingStrategy};
use xlmc::stats::RunningStats;
use xlmc::telemetry::StderrProgress;
use xlmc_bench::ExperimentContext;

const RUNS: usize = 100_000;
const SMOKE_RUNS: usize = 20_000;
const SEED: u64 = 0xBE7C;

struct Row {
    label: String,
    runs_per_sec: f64,
    elapsed_s: f64,
    ssf: f64,
}

/// The seed engine, verbatim: sequential, one shared RNG, allocating
/// per-run path.
fn baseline(runner: &FaultRunner<'_>, strategy: &dyn SamplingStrategy, runs: usize) -> Row {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut stats = RunningStats::new();
    let start = Instant::now();
    for _ in 0..runs {
        let sample = strategy.draw(&mut rng);
        let w = strategy.weight(&sample);
        let outcome = runner.run(&sample, &mut rng);
        stats.push(if outcome.success { w } else { 0.0 });
    }
    let elapsed = start.elapsed().as_secs_f64();
    Row {
        label: "baseline_sequential".into(),
        runs_per_sec: runs as f64 / elapsed,
        elapsed_s: elapsed,
        ssf: stats.mean(),
    }
}

fn engine(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    runs: usize,
    threads: usize,
    kernel: CampaignKernel,
    label: String,
) -> Row {
    let opts = CampaignOptions {
        threads,
        ..CampaignOptions::with_kernel(kernel)
    };
    let mut progress = StderrProgress::new(&label);
    let start = Instant::now();
    let r = run_campaign_observed(runner, strategy, runs, SEED, &opts, &mut progress);
    let elapsed = start.elapsed().as_secs_f64();
    Row {
        label,
        runs_per_sec: runs as f64 / elapsed,
        elapsed_s: elapsed,
        ssf: r.ssf,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runs = if smoke { SMOKE_RUNS } else { RUNS };
    eprintln!("[bench_campaign] building model and golden runs ...");
    let ctx = ExperimentContext::build();
    let runner = FaultRunner {
        model: &ctx.model,
        eval: &ctx.write_eval,
        prechar: &ctx.prechar,
        hardening: None,
    };
    let f = baseline_distribution(&ctx.model, &ctx.cfg);
    let strategy = ImportanceSampling::new(
        f,
        &ctx.model,
        &ctx.prechar,
        ctx.cfg.alpha,
        ctx.cfg.beta,
        ctx.cfg.radius_options.clone(),
    );

    eprintln!("[bench_campaign] {runs} importance-sampled attacks per configuration ...");
    let mut rows = vec![
        baseline(&runner, &strategy, runs),
        engine(
            &runner,
            &strategy,
            runs,
            1,
            CampaignKernel::Scalar,
            "scalar_threads_1".into(),
        ),
    ];
    for threads in [1, 2, 4] {
        rows.push(engine(
            &runner,
            &strategy,
            runs,
            threads,
            CampaignKernel::Batched,
            format!("engine_threads_{threads}"),
        ));
    }

    let base_rate = rows[0].runs_per_sec;
    let mut json = String::from("{\n  \"runs\": ");
    let _ = write!(json, "{runs},\n  \"seed\": {SEED},\n  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"runs_per_sec\": {:.2}, \"elapsed_s\": {:.4}, \
             \"speedup_vs_baseline\": {:.3}, \"ssf\": {:.6}}}{}",
            r.label,
            r.runs_per_sec,
            r.elapsed_s,
            r.runs_per_sec / base_rate,
            r.ssf,
            sep
        );
    }
    json.push_str("  ]\n}\n");
    if !smoke {
        std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    }

    println!("\n== campaign throughput ({runs} runs, importance sampling) ==");
    for r in &rows {
        println!(
            "  {:22} {:>9.1} runs/s  ({:.2}s, {:.2}x baseline)",
            r.label,
            r.runs_per_sec,
            r.elapsed_s,
            r.runs_per_sec / base_rate
        );
    }

    let scalar = rows
        .iter()
        .find(|r| r.label == "scalar_threads_1")
        .expect("scalar row");
    let batched = rows
        .iter()
        .find(|r| r.label == "engine_threads_1")
        .expect("batched row");
    assert!(
        scalar.ssf == batched.ssf,
        "kernel results diverged: scalar ssf {} != batched ssf {}",
        scalar.ssf,
        batched.ssf
    );
    if smoke {
        if batched.runs_per_sec < scalar.runs_per_sec {
            eprintln!(
                "SMOKE FAIL: batched kernel ({:.0} runs/s) slower than scalar ({:.0} runs/s)",
                batched.runs_per_sec, scalar.runs_per_sec
            );
            std::process::exit(1);
        }
        println!(
            "smoke ok: batched {:.0} runs/s >= scalar {:.0} runs/s",
            batched.runs_per_sec, scalar.runs_per_sec
        );
    } else {
        println!("wrote BENCH_campaign.json");
    }
}
