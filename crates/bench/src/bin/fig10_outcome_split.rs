//! Figure 10: strike-outcome statistics and SSF by struck cell type.
//!
//! Reproduces "(a) error statistics induced by attacking combinational
//! gates" — the masked / memory-only / both split that motivates the
//! analytic shortcut (paper: 68.3% / 28.6% / 3.1%) — and "(b) SSF
//! comparison" between attacks on registers and attacks on combinational
//! gates (paper: 271 vs 70 successes out of 2,000; SSF 0.027 vs 0.007).

use xlmc::estimator::CampaignOptions;
use xlmc::flow::FaultRunner;
use xlmc::sampling::RandomSampling;
use xlmc_bench::{pct, print_table, run_observed_campaign, ExperimentContext};
use xlmc_fault::{AttackDistribution, RadiusDist, SpatialDist, TemporalDist};
use xlmc_netlist::{CellKind, GateId};

fn main() {
    let opts = CampaignOptions::from_args();
    let ctx = ExperimentContext::build_observed(&opts);
    let runner = FaultRunner {
        model: &ctx.model,
        eval: &ctx.write_eval,
        prechar: &ctx.prechar,
        hardening: None,
        multi_fault: None,
    };
    let netlist = ctx.model.mpu.netlist();
    let comb_cells: Vec<GateId> = ctx
        .model
        .placement
        .placeable()
        .iter()
        .copied()
        .filter(|&g| netlist.gate(g).kind != CellKind::Dff)
        .collect();
    let reg_cells: Vec<GateId> = ctx
        .model
        .placement
        .placeable()
        .iter()
        .copied()
        .filter(|&g| netlist.gate(g).kind == CellKind::Dff)
        .collect();

    let dist_over = |cells: Vec<GateId>| AttackDistribution {
        temporal: TemporalDist::uniform(1, ctx.cfg.t_max),
        spatial: SpatialDist::UniformOverCells(cells),
        radius: RadiusDist::uniform(ctx.cfg.radius_options.clone()),
    };

    // Figure 10(a): outcome split for attacks on combinational gates.
    eprintln!("[fig10] attacking combinational gates ...");
    let comb = run_observed_campaign(
        &runner,
        &RandomSampling::new(dist_over(comb_cells)),
        2_000,
        0xA10,
        &opts,
        "fig10a-comb",
    );
    let (masked, mem, both) = comb.class_counts.fractions();
    print_table(
        "Figure 10(a): outcomes of attacks on combinational gates",
        &["outcome", "share", "count"],
        &[
            vec![
                "masked".into(),
                pct(masked),
                comb.class_counts.masked.to_string(),
            ],
            vec![
                "memory-type only".into(),
                pct(mem),
                comb.class_counts.memory_only.to_string(),
            ],
            vec![
                "both (needs RTL)".into(),
                pct(both),
                comb.class_counts.mixed.to_string(),
            ],
        ],
    );
    println!(
        "  analytic runs: {}, RTL runs: {} (paper: only 3.1% of runs need \
         further RTL simulation)",
        comb.analytic_runs, comb.rtl_runs
    );

    // Figure 10(b): SSF from register strikes vs combinational strikes.
    eprintln!("[fig10] attacking registers ...");
    let regs = run_observed_campaign(
        &runner,
        &RandomSampling::new(dist_over(reg_cells)),
        2_000,
        0xB10,
        &opts,
        "fig10b-regs",
    );
    print_table(
        "Figure 10(b): SSF by struck cell type (2,000 attacks each)",
        &["strategy", "# succ. attack", "SSF"],
        &[
            vec![
                "registers".into(),
                regs.successes.to_string(),
                format!("{:.4}", regs.ssf),
            ],
            vec![
                "comb. gates".into(),
                comb.successes.to_string(),
                format!("{:.4}", comb.ssf),
            ],
        ],
    );
    if regs.ssf > 0.0 {
        println!(
            "  comb/register SSF ratio: {} (paper: around 25.8%)",
            pct(comb.ssf / regs.ssf)
        );
    }
}
