//! CLI contract for the `validate_json` binary: bad inputs must produce a
//! readable diagnostic and a non-zero exit status — never a panic.

use std::io::Write;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_validate_json"))
        .args(args)
        .output()
        .expect("spawn validate_json")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("validate_json_cli_{}_{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

#[test]
fn missing_file_is_a_readable_error_not_a_panic() {
    let schema = tmp_file("schema.json", r#"{"type": "object"}"#);
    let out = run(&[schema.to_str().unwrap(), "/nonexistent/doc.json"]);
    let err = stderr_of(&out);
    assert_eq!(out.status.code(), Some(2), "stderr: {err}");
    assert!(err.contains("cannot read"), "unreadable message: {err}");
    assert!(err.contains("/nonexistent/doc.json"), "no path in: {err}");
    assert!(!err.contains("panicked"), "panicked: {err}");
}

#[test]
fn truncated_json_is_a_readable_error_not_a_panic() {
    let schema = tmp_file("trunc_schema.json", r#"{"type": "object"}"#);
    let doc = tmp_file(
        "trunc_doc.json",
        r#"{"format": "xlmc-metrics-v4", "runs": [1, 2"#,
    );
    let out = run(&[schema.to_str().unwrap(), doc.to_str().unwrap()]);
    let err = stderr_of(&out);
    assert_eq!(out.status.code(), Some(2), "stderr: {err}");
    assert!(err.contains("not valid JSON"), "unreadable message: {err}");
    assert!(!err.contains("panicked"), "panicked: {err}");
}

#[test]
fn missing_arguments_print_usage() {
    let out = run(&[]);
    let err = stderr_of(&out);
    assert_eq!(out.status.code(), Some(2), "stderr: {err}");
    assert!(err.contains("usage:"), "no usage line: {err}");
}

#[test]
fn schema_violation_exits_one_and_names_the_file() {
    let schema = tmp_file(
        "viol_schema.json",
        r#"{"type": "object", "required": ["format"], "properties": {"format": {"type": "string"}}}"#,
    );
    let doc = tmp_file("viol_doc.json", r#"{"other": 3}"#);
    let out = run(&[schema.to_str().unwrap(), doc.to_str().unwrap()]);
    let err = stderr_of(&out);
    assert_eq!(out.status.code(), Some(1), "stderr: {err}");
    assert!(err.contains("FAIL"), "no FAIL marker: {err}");
}

#[test]
fn valid_document_exits_zero() {
    let schema = tmp_file("ok_schema.json", r#"{"type": "object"}"#);
    let doc = tmp_file("ok_doc.json", r#"{"anything": [1, 2, 3]}"#);
    let out = run(&[schema.to_str().unwrap(), doc.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
}

#[test]
fn jsonl_mode_validates_every_line_and_skips_blanks() {
    let schema = tmp_file(
        "jsonl_schema.json",
        r#"{"type": "object", "required": ["event"], "properties": {"event": {"type": "string"}}}"#,
    );
    let doc = tmp_file(
        "jsonl_ok.jsonl",
        "{\"event\": \"a\"}\n\n{\"event\": \"b\", \"seq\": 1}\n",
    );
    let out = run(&["--jsonl", schema.to_str().unwrap(), doc.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("2 lines"), "line count missing: {stdout}");
}

#[test]
fn jsonl_mode_reports_the_violating_line_number() {
    let schema = tmp_file(
        "jsonl_viol_schema.json",
        r#"{"type": "object", "required": ["event"]}"#,
    );
    let doc = tmp_file("jsonl_viol.jsonl", "{\"event\": \"a\"}\n{\"other\": 1}\n");
    let out = run(&["--jsonl", schema.to_str().unwrap(), doc.to_str().unwrap()]);
    let err = stderr_of(&out);
    assert_eq!(out.status.code(), Some(1), "stderr: {err}");
    assert!(err.contains(":2: FAIL"), "no line number in: {err}");
}

#[test]
fn jsonl_mode_rejects_a_torn_line_as_invalid_json() {
    let schema = tmp_file("jsonl_torn_schema.json", r#"{"type": "object"}"#);
    let doc = tmp_file("jsonl_torn.jsonl", "{\"event\": \"a\"}\n{\"event\": \"b\"");
    let out = run(&["--jsonl", schema.to_str().unwrap(), doc.to_str().unwrap()]);
    let err = stderr_of(&out);
    assert_eq!(out.status.code(), Some(2), "stderr: {err}");
    assert!(err.contains("not valid JSON"), "unreadable message: {err}");
    assert!(!err.contains("panicked"), "panicked: {err}");
}
