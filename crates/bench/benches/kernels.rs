//! Criterion micro-benchmarks of the framework's hot kernels.
//!
//! These measure the building blocks whose costs dominate the experiment
//! binaries: the levelized cycle evaluation of the MPU netlist, the
//! bit-parallel trace sweep, the transient strike simulation, RTL stepping
//! and checkpoint replay, and one full fault-attack run down each of the
//! three flow paths (masked / analytic / RTL resume).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use xlmc::estimator::{run_campaign_with, CampaignOptions};
use xlmc::flow::FaultRunner;
use xlmc::sampling::{baseline_distribution, ExperimentConfig, ImportanceSampling};
use xlmc::{Evaluation, Precharacterization, SystemModel};
use xlmc_fault::AttackSample;
use xlmc_gatesim::bitparallel::{evaluate_combinational, PackedTraces};
use xlmc_soc::workloads;
use xlmc_soc::{MpuBit, Soc};

struct Setup {
    model: SystemModel,
    eval: Evaluation,
    prechar: Precharacterization,
}

fn setup() -> Setup {
    let model = SystemModel::with_defaults().unwrap();
    let eval = Evaluation::new(workloads::illegal_write()).unwrap();
    let cfg = ExperimentConfig::default();
    let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
    Setup {
        model,
        eval,
        prechar,
    }
}

fn bench_gate_kernels(c: &mut Criterion) {
    let s = setup();
    let netlist = s.model.mpu.netlist();
    let state = s.model.mpu.state_vector(&s.eval.golden.mpu_states[100]);
    let stim = &s.eval.golden.stimulus[100];
    let inputs = s.model.mpu.input_values(stim.request, stim.cfg_write);

    let mut g = c.benchmark_group("gatesim");
    g.bench_function("mpu_cycle_eval", |b| {
        b.iter(|| {
            black_box(
                s.model
                    .cycle_sim
                    .eval(netlist, black_box(&state), black_box(&inputs)),
            )
        })
    });

    let values = s.model.cycle_sim.eval(netlist, &state, &inputs);
    let struck = s
        .model
        .placement
        .cells_within(s.model.mpu.responding_signal(), 2.0);
    g.bench_function("transient_strike_r2", |b| {
        b.iter(|| {
            black_box(s.model.transient.strike(
                netlist,
                black_box(&values),
                black_box(&struck),
                1_000.0,
            ))
        })
    });

    // Bit-parallel sweep over 512 recorded cycles.
    let cycles = 512usize;
    let mut traces = PackedTraces::zeroed(netlist, cycles);
    for c in 0..cycles {
        let idx = c % s.eval.golden.cycles as usize;
        let vec = s.model.mpu.state_vector(&s.eval.golden.mpu_states[idx]);
        for (i, &dff) in netlist.dffs().iter().enumerate() {
            traces.set_value(dff, c, vec[i]);
        }
        let st = &s.eval.golden.stimulus[idx];
        let ins = s.model.mpu.input_values(st.request, st.cfg_write);
        for (i, &pi) in netlist.inputs().iter().enumerate() {
            traces.set_value(pi, c, ins[i]);
        }
    }
    g.bench_function("bitparallel_512_cycles", |b| {
        b.iter_batched(
            || traces.clone(),
            |mut t| evaluate_combinational(netlist, &mut t).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_rtl_kernels(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("rtl");

    let w = workloads::illegal_write();
    g.bench_function("soc_step", |b| {
        b.iter_batched(
            || Soc::new(&w.program),
            |mut soc| {
                for _ in 0..100 {
                    soc.step();
                }
                soc
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("checkpoint_clone", |b| {
        let ckpt = s.eval.golden.nearest_checkpoint(100);
        b.iter(|| black_box(ckpt.clone()))
    });

    g.bench_function("replay_from_checkpoint_32", |b| {
        let target = 100u64;
        b.iter(|| {
            let mut soc = s.eval.golden.nearest_checkpoint(target).clone();
            while soc.cycle < target {
                soc.step();
            }
            black_box(soc)
        })
    });
    g.finish();
}

fn bench_flow_paths(c: &mut Criterion) {
    let s = setup();
    let runner = FaultRunner {
        model: &s.model,
        eval: &s.eval,
        prechar: &s.prechar,
        hardening: None,
        multi_fault: None,
    };
    let mut g = c.benchmark_group("flow");
    g.sample_size(30);

    // Masked path: a quiet combinational cell at a phase that misses the
    // latching window.
    let quiet = AttackSample {
        t: 5,
        center: s.model.mpu.responding_signal(),
        radius: 0.0,
        phase: 0,
    };
    // Analytic path: an inert config register.
    let analytic = AttackSample {
        t: 5,
        center: s.model.mpu.dff(MpuBit::Base(2, 9)),
        radius: 0.0,
        phase: 0,
    };
    // RTL path: the enable register (contaminating -> full simulation).
    let rtl = AttackSample {
        t: 5,
        center: s.model.mpu.dff(MpuBit::Enable),
        radius: 0.0,
        phase: 0,
    };
    for (name, sample) in [
        ("attack_run_masked", quiet),
        ("attack_run_analytic", analytic),
        ("attack_run_rtl", rtl),
    ] {
        g.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(runner.run(black_box(&sample), &mut rng)))
        });
    }
    g.finish();
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let s = setup();
    let runner = FaultRunner {
        model: &s.model,
        eval: &s.eval,
        prechar: &s.prechar,
        hardening: None,
        multi_fault: None,
    };
    let cfg = ExperimentConfig::default();
    let strategy = ImportanceSampling::new(
        baseline_distribution(&s.model, &cfg),
        &s.model,
        &s.prechar,
        cfg.alpha,
        cfg.beta,
        cfg.radius_options.clone(),
    );

    // Runs/sec of the sharded engine; the result is bit-identical at
    // every thread count, so these rows differ only in scheduling cost.
    let n = 1_000;
    let mut g = c.benchmark_group("campaign_throughput");
    g.sample_size(10);
    for threads in [1, 2, 4] {
        let opts = CampaignOptions::with_threads(threads);
        g.bench_function(format!("runs_{n}_threads_{threads}").as_str(), |b| {
            b.iter(|| black_box(run_campaign_with(&runner, &strategy, n, 0xC0DE, &opts)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gate_kernels,
    bench_rtl_kernels,
    bench_flow_paths,
    bench_campaign_throughput
);
criterion_main!(benches);
