//! Campaign telemetry: structured progress events, convergence metrics,
//! and crash-safe checkpoint/resume for the Monte Carlo engine.
//!
//! Three consumers hang off the campaign driver's in-order merge loop:
//!
//! * **Observers** ([`CampaignObserver`]) receive a [`ProgressEvent`] at
//!   every merged chunk boundary — running SSF, Welford variance, the
//!   §3.3 LLN bound at the configured `--target-eps`, the importance-
//!   sampling effective sample size `(Σw)²/Σw²`, per-class strike counts
//!   and wall-clock throughput. An observer can abort the campaign
//!   (cleanly, at a chunk boundary) by returning
//!   [`ObserverAction::Abort`].
//! * **Metrics** — when `CampaignOptions::metrics_path` is set, the
//!   driver serializes a summary of the finished campaign (stop reason,
//!   final `n`, ESS, convergence trace, …) as JSON; the format is pinned
//!   by `schemas/metrics.schema.json` and [`validate_against_schema`].
//! * **Checkpoints** — when `CampaignOptions::checkpoint_path` is set,
//!   the driver periodically snapshots the merged prefix (exact Welford
//!   state, class counts, attribution, chunk cursor). Every `f64` is
//!   stored as its IEEE-754 bit pattern, so a resumed campaign folds the
//!   same bits the uninterrupted one would and the final
//!   [`CampaignResult`](crate::estimator::CampaignResult) is
//!   bit-identical. Writes go through a temp file + rename, so a crash
//!   mid-write leaves the previous snapshot intact.
//!
//! The vendored `serde` is a no-op stub (no format crate in the offline
//! build), so serialization here goes through the hand-rolled JSON
//! writer helpers and recursive-descent parser in [`crate::json`]
//! (re-exported below for compatibility).

pub use crate::json::{json_escape, validate_against_schema, JsonValue};

use crate::estimator::{CampaignKernel, CampaignResult, ClassCounts, EstimatorKind};
use crate::fastforward::FastForwardStats;
use crate::json::{bits_str, f64_from_bits_str, get_u64, json_num};
use crate::metrics::{LatencySummaries, LatencySummary, MlmcProgress};
use crate::stats::RunningStats;
use crate::trace::{counters_from_json, counters_json, CampaignCounters, KernelCounters};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use xlmc_soc::MpuBit;

// ---------------------------------------------------------------------------
// Progress events and observers
// ---------------------------------------------------------------------------

/// One progress report, emitted at a merged chunk boundary (in chunk
/// order, so a given `runs_done` always reports the same statistics at
/// any thread count — only the wall-clock fields vary run to run).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressEvent {
    /// Runs folded into the estimate so far.
    pub runs_done: usize,
    /// The campaign's requested run count.
    pub total_runs: usize,
    /// The running SSF estimate.
    pub ssf: f64,
    /// The running Welford sample variance.
    pub sample_variance: f64,
    /// The importance-sampling effective sample size `(Σw)²/Σw²`.
    pub ess: f64,
    /// The configured `--target-eps`, if any.
    pub target_eps: Option<f64>,
    /// The LLN bound `Pr[|ŜSF − SSF| ≥ eps]` at `target_eps`.
    pub lln_bound: Option<f64>,
    /// Strike-class split so far.
    pub class_counts: ClassCounts,
    /// Kernel-invariant hot-path counters so far (chunk-local memo model,
    /// see [`crate::trace`]).
    pub counters: CampaignCounters,
    /// Kernel-shape counters so far (lane occupancy, frame strata).
    pub kernel_counters: KernelCounters,
    /// Wall-clock seconds since this campaign invocation started
    /// (excludes time spent before a resumed checkpoint was written).
    pub elapsed_s: f64,
    /// Fresh (non-resumed) runs per wall-clock second.
    pub runs_per_sec: f64,
    /// Per-level MLMC progress (`None` under the single estimator):
    /// the just-merged chunk's level and the live per-level run counts.
    pub mlmc: Option<MlmcProgress>,
    /// Digest of the per-chunk wall-time histogram merged so far.
    pub chunk_wall: LatencySummary,
}

/// What the campaign driver should do after an observer callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverAction {
    /// Keep running.
    Continue,
    /// Stop at this chunk boundary. The driver returns a partial
    /// [`CampaignResult`] with
    /// [`StopReason::Aborted`](crate::estimator::StopReason); periodic
    /// checkpoints already on disk stay valid for resume.
    Abort,
}

/// Hook into the campaign driver's merge loop.
///
/// Callbacks run on the merging thread, between chunk folds — they can
/// be slow without perturbing the estimate (the statistics are already
/// folded), but they do gate throughput, so heavy observers should
/// rate-limit themselves (see [`StderrProgress`]).
pub trait CampaignObserver {
    /// Called after each chunk of runs is folded into the estimate.
    fn on_progress(&mut self, _event: &ProgressEvent) -> ObserverAction {
        ObserverAction::Continue
    }

    /// Called once with the finished (or aborted) campaign result,
    /// before the driver returns it.
    fn on_finish(&mut self, _result: &CampaignResult) {}
}

/// The do-nothing observer behind
/// [`run_campaign_with`](crate::estimator::run_campaign_with).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl CampaignObserver for NullObserver {}

/// A rate-limited progress printer for long campaigns (adopted by the
/// bench and figure binaries): one stderr line at most every
/// `min_interval`, plus the final boundary.
#[derive(Debug)]
pub struct StderrProgress {
    label: String,
    min_interval: Duration,
    last_print: Option<Instant>,
}

impl StderrProgress {
    /// A printer tagged with `label`, printing at most every 2 seconds.
    pub fn new(label: impl Into<String>) -> Self {
        Self::with_interval(label, Duration::from_secs(2))
    }

    /// A printer with an explicit minimum interval between lines.
    pub fn with_interval(label: impl Into<String>, min_interval: Duration) -> Self {
        Self {
            label: label.into(),
            min_interval,
            last_print: None,
        }
    }
}

impl CampaignObserver for StderrProgress {
    fn on_progress(&mut self, ev: &ProgressEvent) -> ObserverAction {
        let due = self
            .last_print
            .is_none_or(|t| t.elapsed() >= self.min_interval);
        if due || ev.runs_done >= ev.total_runs {
            self.last_print = Some(Instant::now());
            let bound = ev
                .lln_bound
                .map_or(String::new(), |b| format!("  lln={b:.3e}"));
            let lookups = ev.counters.conclusion_memo_hits + ev.counters.conclusion_memo_misses;
            let memo = if lookups > 0 {
                format!("  memo={:.0}%", ev.counters.conclusion_hit_rate() * 100.0)
            } else {
                String::new()
            };
            let occ = if ev.kernel_counters.lane_batches > 0 {
                format!("  occ={:.1}", ev.kernel_counters.mean_lane_occupancy())
            } else {
                String::new()
            };
            let mlmc = ev.mlmc.map_or(String::new(), |m| {
                format!("  lvl=L{}  share1={:.1}%", m.level, 100.0 * m.share1())
            });
            let lat = if ev.chunk_wall.count > 0 {
                format!(
                    "  chunk p50={:.1}ms p99={:.1}ms",
                    1e3 * ev.chunk_wall.p50_s,
                    1e3 * ev.chunk_wall.p99_s
                )
            } else {
                String::new()
            };
            eprintln!(
                "[{}] {}/{} runs  ssf={:.5}  s2={:.3e}  ess={:.0}{}{}{}{}{}  {:.0} runs/s",
                self.label,
                ev.runs_done,
                ev.total_runs,
                ev.ssf,
                ev.sample_variance,
                ev.ess,
                bound,
                memo,
                occ,
                mlmc,
                lat,
                ev.runs_per_sec,
            );
        }
        ObserverAction::Continue
    }
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

const CHECKPOINT_FORMAT: &str = "xlmc-checkpoint-v3";

fn bit_names() -> &'static HashMap<String, MpuBit> {
    static NAMES: OnceLock<HashMap<String, MpuBit>> = OnceLock::new();
    NAMES.get_or_init(|| {
        MpuBit::all()
            .into_iter()
            .map(|b| (b.dff_name(), b))
            .collect()
    })
}

/// The multilevel half of a checkpoint: the exact per-level Welford
/// states plus the frozen sample-allocation plan, so a resumed MLMC
/// campaign schedules the same chunk levels and folds the same bits as
/// an uninterrupted one (`xlmc-checkpoint-v3`).
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct MlmcCheckpointState {
    /// The frozen post-pilot level-1 share, `None` while still piloting.
    pub(crate) plan_ratio: Option<f64>,
    /// Level-0 stream `w·f_rtl`.
    pub(crate) level0: RunningStats,
    /// Level-1 correction stream `w·(f_gate − f_rtl)`.
    pub(crate) level1_diff: RunningStats,
    /// Level-1 gate marginal `w·f_gate`.
    pub(crate) level1_gate: RunningStats,
    /// Level-1 RTL marginal `w·f_rtl`.
    pub(crate) level1_rtl: RunningStats,
    /// Level tag of every merged chunk, in merge order.
    pub(crate) chunk_levels: Vec<u8>,
}

/// A crash-safe snapshot of a campaign's merged prefix.
///
/// The campaign driver merges chunk partials strictly in chunk order, so
/// the merged prefix plus the chunk cursor fully determine the rest of
/// the campaign: per-run RNG streams derive from `(seed, run_index)`
/// alone (the seed is part of the header — the "SplitMix64 stream seeds"
/// need no further state), and re-running chunks `cursor..` folds exactly
/// the bits an uninterrupted campaign would.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CampaignCheckpoint {
    pub(crate) seed: u64,
    pub(crate) requested_runs: usize,
    pub(crate) chunk_runs: usize,
    pub(crate) strategy: String,
    pub(crate) kernel: CampaignKernel,
    pub(crate) merged_chunks: usize,
    pub(crate) stats: RunningStats,
    pub(crate) w_sum: f64,
    pub(crate) w_sq_sum: f64,
    pub(crate) class_counts: ClassCounts,
    pub(crate) analytic_runs: usize,
    pub(crate) rtl_runs: usize,
    pub(crate) successes: usize,
    pub(crate) attribution: BTreeMap<MpuBit, f64>,
    pub(crate) boundaries: Vec<(usize, f64)>,
    pub(crate) counters: CampaignCounters,
    pub(crate) kernel_counters: KernelCounters,
    pub(crate) first_success: Option<u64>,
    pub(crate) estimator: EstimatorKind,
    pub(crate) mlmc: Option<MlmcCheckpointState>,
}

/// A Welford state as its exact on-disk JSON object.
fn stats_json(st: &RunningStats) -> String {
    let (count, mean, m2) = st.to_raw();
    format!(
        "{{\"count\": {count}, \"mean_bits\": {}, \"m2_bits\": {}}}",
        bits_str(mean),
        bits_str(m2)
    )
}

fn stats_from_json(v: &JsonValue, what: &str) -> Result<RunningStats, String> {
    Ok(RunningStats::from_raw(
        get_u64(v, "count").map_err(|e| format!("{what}: {e}"))?,
        f64_from_bits_str(
            v.get("mean_bits")
                .ok_or_else(|| format!("{what}: missing mean_bits"))?,
            "mean",
        )?,
        f64_from_bits_str(
            v.get("m2_bits")
                .ok_or_else(|| format!("{what}: missing m2_bits"))?,
            "m2",
        )?,
    ))
}

impl CampaignCheckpoint {
    /// Serialize to the on-disk JSON form.
    pub(crate) fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let (count, mean, m2) = self.stats.to_raw();
        let mut s = String::with_capacity(1024 + 32 * self.boundaries.len());
        s.push_str("{\n");
        let _ = writeln!(s, "  \"format\": \"{CHECKPOINT_FORMAT}\",");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"requested_runs\": {},", self.requested_runs);
        let _ = writeln!(s, "  \"chunk_runs\": {},", self.chunk_runs);
        let _ = writeln!(s, "  \"strategy\": \"{}\",", json_escape(&self.strategy));
        let _ = writeln!(s, "  \"kernel\": \"{}\",", self.kernel.as_arg());
        let _ = writeln!(s, "  \"estimator\": \"{}\",", self.estimator.as_arg());
        match &self.mlmc {
            Some(m) => {
                let mut levels = String::with_capacity(4 * m.chunk_levels.len() + 2);
                levels.push('[');
                for (i, lvl) in m.chunk_levels.iter().enumerate() {
                    if i > 0 {
                        levels.push_str(", ");
                    }
                    let _ = write!(levels, "{lvl}");
                }
                levels.push(']');
                let _ = writeln!(
                    s,
                    "  \"mlmc\": {{\"plan_ratio_bits\": {}, \"level0\": {}, \
                     \"level1_diff\": {}, \"level1_gate\": {}, \"level1_rtl\": {}, \
                     \"chunk_levels\": {levels}}},",
                    m.plan_ratio.map_or("null".to_owned(), bits_str),
                    stats_json(&m.level0),
                    stats_json(&m.level1_diff),
                    stats_json(&m.level1_gate),
                    stats_json(&m.level1_rtl),
                );
            }
            None => s.push_str("  \"mlmc\": null,\n"),
        }
        let _ = writeln!(s, "  \"merged_chunks\": {},", self.merged_chunks);
        let _ = writeln!(
            s,
            "  \"stats\": {{\"count\": {count}, \"mean_bits\": {}, \"m2_bits\": {}}},",
            bits_str(mean),
            bits_str(m2)
        );
        let _ = writeln!(s, "  \"w_sum_bits\": {},", bits_str(self.w_sum));
        let _ = writeln!(s, "  \"w_sq_sum_bits\": {},", bits_str(self.w_sq_sum));
        let _ = writeln!(
            s,
            "  \"class_counts\": {{\"masked\": {}, \"memory_only\": {}, \"mixed\": {}}},",
            self.class_counts.masked, self.class_counts.memory_only, self.class_counts.mixed
        );
        let _ = writeln!(s, "  \"analytic_runs\": {},", self.analytic_runs);
        let _ = writeln!(s, "  \"rtl_runs\": {},", self.rtl_runs);
        let _ = writeln!(s, "  \"successes\": {},", self.successes);
        s.push_str("  \"attribution\": [");
        for (i, (bit, w)) in self.attribution.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"bit\": \"{}\", \"w_bits\": {}}}",
                json_escape(&bit.dff_name()),
                bits_str(*w)
            );
        }
        s.push_str("],\n  \"boundaries\": [");
        for (i, (runs, mean)) in self.boundaries.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "[{runs}, {}]", bits_str(*mean));
        }
        s.push_str("],\n");
        let _ = writeln!(
            s,
            "  \"counters\": {},",
            counters_json(&self.counters, &self.kernel_counters)
        );
        match self.first_success {
            Some(i) => {
                let _ = writeln!(s, "  \"first_success\": {i}");
            }
            None => s.push_str("  \"first_success\": null\n"),
        }
        s.push_str("}\n");
        s
    }

    /// Deserialize the on-disk JSON form.
    pub(crate) fn from_json(src: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(src)?;
        let format = doc.get("format").and_then(JsonValue::as_str).unwrap_or("");
        if format != CHECKPOINT_FORMAT {
            return Err(format!(
                "unsupported checkpoint format {format:?} (expected {CHECKPOINT_FORMAT:?})"
            ));
        }
        let kernel = match doc.get("kernel").and_then(JsonValue::as_str) {
            Some("scalar") => CampaignKernel::Scalar,
            Some("batched") => CampaignKernel::Batched,
            Some("compiled") => CampaignKernel::Compiled,
            other => return Err(format!("invalid checkpoint kernel {other:?}")),
        };
        let estimator = match doc.get("estimator").and_then(JsonValue::as_str) {
            Some("single") => EstimatorKind::Single,
            Some("mlmc") => EstimatorKind::Mlmc,
            other => return Err(format!("invalid checkpoint estimator {other:?}")),
        };
        let mlmc = match doc.get("mlmc") {
            Some(JsonValue::Null) => None,
            Some(m) => {
                let plan_ratio = match m.get("plan_ratio_bits") {
                    Some(JsonValue::Null) => None,
                    Some(v) => Some(f64_from_bits_str(v, "plan_ratio")?),
                    None => return Err("mlmc state missing plan_ratio_bits".to_owned()),
                };
                let chunk_levels = m
                    .get("chunk_levels")
                    .and_then(JsonValue::as_arr)
                    .ok_or("mlmc state missing chunk_levels")?
                    .iter()
                    .map(|e| {
                        e.as_u64()
                            .filter(|&x| x <= 1)
                            .map(|x| x as u8)
                            .ok_or_else(|| "invalid chunk_levels entry".to_owned())
                    })
                    .collect::<Result<Vec<u8>, String>>()?;
                Some(MlmcCheckpointState {
                    plan_ratio,
                    level0: stats_from_json(m.get("level0").ok_or("missing level0")?, "level0")?,
                    level1_diff: stats_from_json(
                        m.get("level1_diff").ok_or("missing level1_diff")?,
                        "level1_diff",
                    )?,
                    level1_gate: stats_from_json(
                        m.get("level1_gate").ok_or("missing level1_gate")?,
                        "level1_gate",
                    )?,
                    level1_rtl: stats_from_json(
                        m.get("level1_rtl").ok_or("missing level1_rtl")?,
                        "level1_rtl",
                    )?,
                    chunk_levels,
                })
            }
            None => return Err("missing mlmc field".to_owned()),
        };
        let stats_obj = doc.get("stats").ok_or("missing stats object")?;
        let stats = RunningStats::from_raw(
            get_u64(stats_obj, "count")?,
            f64_from_bits_str(
                stats_obj.get("mean_bits").ok_or("missing mean_bits")?,
                "mean",
            )?,
            f64_from_bits_str(stats_obj.get("m2_bits").ok_or("missing m2_bits")?, "m2")?,
        );
        let counts_obj = doc.get("class_counts").ok_or("missing class_counts")?;
        let class_counts = ClassCounts {
            masked: get_u64(counts_obj, "masked")? as usize,
            memory_only: get_u64(counts_obj, "memory_only")? as usize,
            mixed: get_u64(counts_obj, "mixed")? as usize,
        };
        let mut attribution = BTreeMap::new();
        for entry in doc
            .get("attribution")
            .and_then(JsonValue::as_arr)
            .ok_or("missing attribution array")?
        {
            let name = entry
                .get("bit")
                .and_then(JsonValue::as_str)
                .ok_or("attribution entry missing bit name")?;
            let bit = *bit_names()
                .get(name)
                .ok_or_else(|| format!("unknown register bit {name:?}"))?;
            let w = f64_from_bits_str(
                entry
                    .get("w_bits")
                    .ok_or("attribution entry missing w_bits")?,
                "attribution weight",
            )?;
            attribution.insert(bit, w);
        }
        let mut boundaries = Vec::new();
        for entry in doc
            .get("boundaries")
            .and_then(JsonValue::as_arr)
            .ok_or("missing boundaries array")?
        {
            let pair = entry.as_arr().ok_or("boundary entry is not a pair")?;
            if pair.len() != 2 {
                return Err("boundary entry is not a pair".to_owned());
            }
            let runs = pair[0].as_u64().ok_or("boundary run count")? as usize;
            boundaries.push((runs, f64_from_bits_str(&pair[1], "boundary mean")?));
        }
        let (counters, kernel_counters) =
            counters_from_json(doc.get("counters").ok_or("missing counters object")?)?;
        let first_success = match doc.get("first_success") {
            Some(JsonValue::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or("first_success: expected an integer or null")?,
            ),
            None => return Err("missing first_success".to_owned()),
        };
        Ok(Self {
            seed: get_u64(&doc, "seed")?,
            requested_runs: get_u64(&doc, "requested_runs")? as usize,
            chunk_runs: get_u64(&doc, "chunk_runs")? as usize,
            strategy: doc
                .get("strategy")
                .and_then(JsonValue::as_str)
                .ok_or("missing strategy")?
                .to_owned(),
            kernel,
            merged_chunks: get_u64(&doc, "merged_chunks")? as usize,
            stats,
            w_sum: f64_from_bits_str(doc.get("w_sum_bits").ok_or("missing w_sum_bits")?, "w_sum")?,
            w_sq_sum: f64_from_bits_str(
                doc.get("w_sq_sum_bits").ok_or("missing w_sq_sum_bits")?,
                "w_sq_sum",
            )?,
            class_counts,
            analytic_runs: get_u64(&doc, "analytic_runs")? as usize,
            rtl_runs: get_u64(&doc, "rtl_runs")? as usize,
            successes: get_u64(&doc, "successes")? as usize,
            attribution,
            boundaries,
            counters,
            kernel_counters,
            first_success,
            estimator,
            mlmc,
        })
    }

    /// Write the checkpoint crash-safely: temp file in the same
    /// directory, then an atomic rename over the target.
    pub(crate) fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Load a checkpoint; `Ok(None)` when the file does not exist yet.
    pub(crate) fn load(path: &Path) -> io::Result<Option<Self>> {
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Self::from_json(&src)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// The metrics format tag pinned by `schemas/metrics.schema.json`.
/// `v2` added `host_cpus` and the `fast_forward` counter object; `v3`
/// added `kernel`, the `program` shape object and the `scheduler`
/// contention object; `v4` added `estimator` and the nullable `mlmc`
/// per-level variance/cost/allocation object; `v5` moved `elapsed_s` and
/// `runs_per_sec` under a `timing` object that also carries the quantile
/// digests of the five engine latency histograms.
pub const METRICS_FORMAT: &str = "xlmc-metrics-v5";

/// Shape of the compiled gate program driving the campaign (all zeros
/// when the model netlist could not be levelized — never the case for the
/// built-in MPU).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProgramStats {
    /// Combinational logic levels of the netlist.
    pub levels: usize,
    /// Straight-line ops (combinational gates incl. output markers).
    pub gates: usize,
    /// Monte Carlo runs packed per transient pass by the active kernel.
    pub lane_width: usize,
    /// Packed transient passes executed (merged `lane_batches`).
    pub sweeps: usize,
}

/// Scheduling/contention observability for the multi-thread merge path —
/// all schedule-dependent, which is why they live in the metrics meta and
/// not in the thread-invariant [`CampaignResult`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerStats {
    /// Worker threads that executed chunks.
    pub workers: usize,
    /// Seconds the merger spent blocked on `recv` for the next partial.
    pub merge_wait_s: f64,
    /// Peak size of the chunk reorder buffer (partials ahead of the merge
    /// cursor).
    pub reorder_peak: usize,
    /// Conclusion-memo probes answered by a worker-local front without
    /// touching a shard mutex.
    pub memo_front_hits: u64,
    /// Probes that fell through to the locked shared memo.
    pub memo_front_misses: u64,
}

/// Campaign-level context the metrics file records alongside the result.
#[derive(Debug, Clone, Copy)]
pub struct MetricsMeta {
    /// The campaign seed.
    pub seed: u64,
    /// The requested run count (`n` in the result may be smaller after
    /// an early stop).
    pub requested_runs: usize,
    /// The configured `--target-eps`, if any.
    pub target_eps: Option<f64>,
    /// The configured `--target-confidence`.
    pub target_confidence: f64,
    /// Wall-clock seconds of this invocation.
    pub elapsed_s: f64,
    /// Fresh runs per wall-clock second.
    pub runs_per_sec: f64,
    /// Logical CPUs available on the host that ran the campaign.
    pub host_cpus: usize,
    /// RTL fast-forward counters (schedule-dependent — that is why they
    /// live here and not in the kernel/thread-invariant `CampaignResult`).
    pub fast_forward: FastForwardStats,
    /// The `--kernel` spelling of the per-chunk executor.
    pub kernel: CampaignKernel,
    /// Shape of the compiled gate program / lane packing.
    pub program: ProgramStats,
    /// Merge-path scheduling and memo-contention observability.
    pub scheduler: SchedulerStats,
    /// Quantile digests of the engine latency histograms (chunk wall,
    /// merge wait, snapshot restore, kernel sweep, checkpoint write).
    pub latency: LatencySummaries,
}

/// Render the finished campaign as the metrics JSON document.
pub fn metrics_json(result: &CampaignResult, meta: &MetricsMeta) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(1024 + 32 * result.trace.len());
    s.push_str("{\n");
    let _ = writeln!(s, "  \"format\": \"{METRICS_FORMAT}\",");
    let _ = writeln!(s, "  \"strategy\": \"{}\",", json_escape(&result.strategy));
    let _ = writeln!(s, "  \"seed\": {},", meta.seed);
    let _ = writeln!(s, "  \"requested_runs\": {},", meta.requested_runs);
    let _ = writeln!(s, "  \"n\": {},", result.n);
    let _ = writeln!(s, "  \"ssf\": {},", json_num(result.ssf));
    let _ = writeln!(
        s,
        "  \"sample_variance\": {},",
        json_num(result.sample_variance)
    );
    let _ = writeln!(s, "  \"ess\": {},", json_num(result.ess));
    let _ = writeln!(s, "  \"stop_reason\": \"{}\",", result.stop.as_str());
    let _ = writeln!(
        s,
        "  \"target_eps\": {},",
        meta.target_eps.map_or("null".to_owned(), json_num)
    );
    let _ = writeln!(
        s,
        "  \"target_confidence\": {},",
        json_num(meta.target_confidence)
    );
    let _ = writeln!(
        s,
        "  \"lln_bound_at_target\": {},",
        meta.target_eps
            .map_or("null".to_owned(), |e| json_num(result.lln_bound(e)))
    );
    let _ = writeln!(
        s,
        "  \"timing\": {{\"elapsed_s\": {}, \"runs_per_sec\": {}, \"latency\": {{",
        json_num(meta.elapsed_s),
        json_num(meta.runs_per_sec),
    );
    let digests = meta.latency.iter_named();
    for (i, (name, d)) in digests.iter().enumerate() {
        let _ = writeln!(
            s,
            "    \"{name}\": {{\"count\": {}, \"p50_s\": {}, \"p90_s\": {}, \"p99_s\": {}, \
             \"max_s\": {}, \"sum_s\": {}}}{}",
            d.count,
            json_num(d.p50_s),
            json_num(d.p90_s),
            json_num(d.p99_s),
            json_num(d.max_s),
            json_num(d.sum_s),
            if i + 1 < digests.len() { "," } else { "" },
        );
    }
    s.push_str("  }},\n");
    let _ = writeln!(s, "  \"host_cpus\": {},", meta.host_cpus);
    let _ = writeln!(s, "  \"kernel\": \"{}\",", meta.kernel.as_arg());
    let _ = writeln!(s, "  \"estimator\": \"{}\",", result.estimator.as_arg());
    match &result.mlmc {
        Some(m) => {
            let _ = writeln!(
                s,
                "  \"mlmc\": {{\"n0\": {}, \"n1\": {}, \"mean0\": {}, \"mean1_diff\": {}, \
                 \"mean1_gate\": {}, \"mean1_rtl\": {}, \"s2_0\": {}, \"s2_1\": {}, \
                 \"cost0\": {}, \"cost1\": {}, \"share1\": {}, \"optimal_share1\": {}, \
                 \"plan_ratio\": {}, \"estimator_variance\": {}}},",
                m.n0,
                m.n1,
                json_num(m.mean0),
                json_num(m.mean1_diff),
                json_num(m.mean1_gate),
                json_num(m.mean1_rtl),
                json_num(m.var0),
                json_num(m.var1_diff),
                json_num(m.cost0),
                json_num(m.cost1),
                json_num(m.share1()),
                json_num(m.optimal_share1()),
                m.plan_ratio.map_or("null".to_owned(), json_num),
                json_num(m.estimator_variance()),
            );
        }
        None => s.push_str("  \"mlmc\": null,\n"),
    }
    let p = &meta.program;
    let _ = writeln!(
        s,
        "  \"program\": {{\"levels\": {}, \"gates\": {}, \"lane_width\": {}, \
         \"sweeps\": {}}},",
        p.levels, p.gates, p.lane_width, p.sweeps,
    );
    let sc = &meta.scheduler;
    let _ = writeln!(
        s,
        "  \"scheduler\": {{\"workers\": {}, \"merge_wait_s\": {}, \"reorder_peak\": {}, \
         \"memo_front_hits\": {}, \"memo_front_misses\": {}}},",
        sc.workers,
        json_num(sc.merge_wait_s),
        sc.reorder_peak,
        sc.memo_front_hits,
        sc.memo_front_misses,
    );
    let ff = &meta.fast_forward;
    let _ = writeln!(
        s,
        "  \"fast_forward\": {{\"enabled\": {}, \"rtl_resumes\": {}, \
         \"checkpoint_cache_hits\": {}, \"checkpoint_cache_misses\": {}, \
         \"checkpoint_cache_evictions\": {}, \"early_exits\": {}, \"confirm_failures\": {}, \
         \"cycles_skipped\": {}}},",
        ff.enabled,
        ff.rtl_resumes,
        ff.checkpoint_cache_hits,
        ff.checkpoint_cache_misses,
        ff.checkpoint_cache_evictions,
        ff.early_exits,
        ff.confirm_failures,
        ff.cycles_skipped,
    );
    let _ = writeln!(
        s,
        "  \"class_counts\": {{\"masked\": {}, \"memory_only\": {}, \"mixed\": {}}},",
        result.class_counts.masked, result.class_counts.memory_only, result.class_counts.mixed
    );
    let _ = writeln!(s, "  \"analytic_runs\": {},", result.analytic_runs);
    let _ = writeln!(s, "  \"rtl_runs\": {},", result.rtl_runs);
    let _ = writeln!(s, "  \"successes\": {},", result.successes);
    let _ = writeln!(
        s,
        "  \"first_success\": {},",
        result
            .first_success
            .map_or("null".to_owned(), |i| i.to_string())
    );
    let _ = writeln!(
        s,
        "  \"counters\": {},",
        counters_json(&result.counters, &result.kernel_counters)
    );
    s.push_str("  \"trace\": [");
    for (i, (runs, ssf)) in result.trace.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "[{runs}, {}]", json_num(*ssf));
    }
    s.push_str("]\n}\n");
    s
}

/// Write the metrics file (temp + rename, like checkpoints).
pub fn write_metrics(path: &Path, result: &CampaignResult, meta: &MetricsMeta) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, metrics_json(result, meta))?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::StopReason;

    #[test]
    fn json_round_trips_checkpoint_bits_exactly() {
        let mut attribution = BTreeMap::new();
        attribution.insert(MpuBit::Enable, 0.1 + 0.2); // a value with ugly bits
        attribution.insert(MpuBit::Base(1, 3), f64::MIN_POSITIVE);
        let mut stats = RunningStats::new();
        for x in [0.0, 1.25, 1.0 / 3.0, 7e-300] {
            stats.push(x);
        }
        let ck = CampaignCheckpoint {
            seed: 0xDEAD_BEEF,
            requested_runs: 4096,
            chunk_runs: 512,
            strategy: "importance".to_owned(),
            kernel: CampaignKernel::Batched,
            merged_chunks: 3,
            stats,
            w_sum: 1234.5678901234567,
            w_sq_sum: 9.87654321e-12,
            class_counts: ClassCounts {
                masked: 100,
                memory_only: 20,
                mixed: 7,
            },
            analytic_runs: 20,
            rtl_runs: 7,
            successes: 5,
            attribution,
            boundaries: vec![(512, 0.001953125), (1024, 0.1 / 3.0), (1536, 0.25)],
            counters: CampaignCounters {
                cycle_memo_hits: 12,
                cycle_memo_misses: 34,
                conclusion_memo_hits: 5,
                conclusion_memo_misses: 6,
                conclusions_analytic: 20,
                conclusions_rtl: 7,
                soc_clones: 3,
                soc_restores: 4,
                pulses_propagated: 9000,
                out_of_run: 2,
            },
            kernel_counters: KernelCounters {
                lane_batches: 24,
                lanes_occupied: 1500,
                frame_groups: 70,
                gates_visited: 123456,
            },
            first_success: Some(777),
            estimator: EstimatorKind::Mlmc,
            mlmc: Some(MlmcCheckpointState {
                plan_ratio: Some(0.1 + 0.2),
                level0: {
                    let mut st = RunningStats::new();
                    st.push(1.0 / 7.0);
                    st.push(0.0);
                    st
                },
                level1_diff: {
                    let mut st = RunningStats::new();
                    st.push(-1.0 / 3.0);
                    st
                },
                level1_gate: RunningStats::new(),
                level1_rtl: RunningStats::new(),
                chunk_levels: vec![1, 0, 1, 0, 0, 0, 1],
            }),
        };
        let round = CampaignCheckpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(round, ck);
        let m = round.mlmc.as_ref().unwrap();
        assert_eq!(
            m.plan_ratio.unwrap().to_bits(),
            (0.1f64 + 0.2).to_bits(),
            "plan ratio must round-trip bit-exactly"
        );
        let (_, d0, _) = m.level1_diff.to_raw();
        assert_eq!(d0.to_bits(), (-1.0f64 / 3.0).to_bits());
        // Bit-exactness of the Welford state, not just PartialEq.
        let (n0, m0, s0) = ck.stats.to_raw();
        let (n1, m1, s1) = round.stats.to_raw();
        assert_eq!(
            (n0, m0.to_bits(), s0.to_bits()),
            (n1, m1.to_bits(), s1.to_bits())
        );
        assert_eq!(round.w_sum.to_bits(), ck.w_sum.to_bits());
        for ((_, a), (_, b)) in round.boundaries.iter().zip(&ck.boundaries) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn checkpoint_rejects_foreign_formats_and_bad_bits() {
        assert!(CampaignCheckpoint::from_json("{}").is_err());
        assert!(CampaignCheckpoint::from_json("{\"format\": \"something-else\"}").is_err());
        assert!(CampaignCheckpoint::from_json("not json at all").is_err());
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let doc =
            JsonValue::parse(r#"{"a": [1, -2.5e3, "x\n\"y\"", true, null], "b": {"c": 0.125}}"#)
                .unwrap();
        let arr = doc.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\n\"y\""));
        assert_eq!(arr[3], JsonValue::Bool(true));
        assert_eq!(arr[4], JsonValue::Null);
        assert_eq!(
            doc.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_f64),
            Some(0.125)
        );
        assert!(JsonValue::parse("{\"a\": 1} trailing").is_err());
        assert!(JsonValue::parse("{\"a\": }").is_err());
    }

    #[test]
    fn metrics_json_is_parseable_and_self_consistent() {
        let result = CampaignResult {
            strategy: "random".to_owned(),
            n: 1024,
            ssf: 0.017,
            sample_variance: 1.2e-2,
            ess: 1020.5,
            successes: 17,
            trace: vec![(512, 0.015), (1024, 0.017)],
            class_counts: ClassCounts {
                masked: 900,
                memory_only: 100,
                mixed: 24,
            },
            analytic_runs: 100,
            rtl_runs: 24,
            attribution: BTreeMap::new(),
            stop: StopReason::TargetEps,
            counters: CampaignCounters::default(),
            kernel_counters: KernelCounters::default(),
            first_success: Some(40),
            estimator: EstimatorKind::Mlmc,
            mlmc: Some(crate::multilevel::MlmcSummary {
                n0: 900,
                n1: 124,
                mean0: 0.016,
                var0: 2.0e-2,
                mean1_diff: 0.001,
                var1_diff: 1.0e-4,
                mean1_gate: 0.018,
                mean1_rtl: 0.017,
                cost0: 1.0,
                cost1: 9.0,
                plan_ratio: Some(0.125),
                chunk_levels: vec![1, 0],
            }),
        };
        let meta = MetricsMeta {
            seed: 7,
            requested_runs: 4096,
            target_eps: Some(0.05),
            target_confidence: 0.95,
            elapsed_s: 1.5,
            runs_per_sec: 682.6,
            host_cpus: 8,
            fast_forward: FastForwardStats {
                enabled: true,
                rtl_resumes: 24,
                checkpoint_cache_hits: 20,
                checkpoint_cache_misses: 4,
                checkpoint_cache_evictions: 0,
                early_exits: 11,
                confirm_failures: 1,
                cycles_skipped: 4321,
            },
            kernel: CampaignKernel::Compiled,
            program: ProgramStats {
                levels: 9,
                gates: 321,
                lane_width: 256,
                sweeps: 4,
            },
            scheduler: SchedulerStats {
                workers: 2,
                merge_wait_s: 0.25,
                reorder_peak: 3,
                memo_front_hits: 10,
                memo_front_misses: 14,
            },
            latency: {
                let mut shard = crate::metrics::LatencyShard::default();
                shard.chunk_wall.record(0.012);
                shard.chunk_wall.record(0.034);
                shard.checkpoint_write.record(0.002);
                shard.summaries()
            },
        };
        let doc = JsonValue::parse(&metrics_json(&result, &meta)).unwrap();
        assert_eq!(
            doc.get("format").and_then(JsonValue::as_str),
            Some(METRICS_FORMAT)
        );
        assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(1024));
        assert_eq!(
            doc.get("stop_reason").and_then(JsonValue::as_str),
            Some("target_eps")
        );
        assert_eq!(doc.get("ess").and_then(JsonValue::as_f64), Some(1020.5));
        assert_eq!(
            doc.get("first_success").and_then(JsonValue::as_u64),
            Some(40)
        );
        assert!(doc.get("counters").and_then(|c| c.get("kernel")).is_some());
        assert_eq!(doc.get("host_cpus").and_then(JsonValue::as_u64), Some(8));
        assert_eq!(
            doc.get("kernel").and_then(JsonValue::as_str),
            Some("compiled")
        );
        assert_eq!(
            doc.get("estimator").and_then(JsonValue::as_str),
            Some("mlmc")
        );
        let mlmc = doc.get("mlmc").unwrap();
        assert_eq!(mlmc.get("n0").and_then(JsonValue::as_u64), Some(900));
        assert_eq!(mlmc.get("n1").and_then(JsonValue::as_u64), Some(124));
        assert_eq!(
            mlmc.get("plan_ratio").and_then(JsonValue::as_f64),
            Some(0.125)
        );
        assert!(mlmc.get("estimator_variance").and_then(JsonValue::as_f64) > Some(0.0));
        let prog = doc.get("program").unwrap();
        assert_eq!(prog.get("levels").and_then(JsonValue::as_u64), Some(9));
        assert_eq!(
            prog.get("lane_width").and_then(JsonValue::as_u64),
            Some(256)
        );
        let sched = doc.get("scheduler").unwrap();
        assert_eq!(sched.get("workers").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(
            sched.get("memo_front_misses").and_then(JsonValue::as_u64),
            Some(14)
        );
        let ff = doc.get("fast_forward").unwrap();
        assert_eq!(ff.get("enabled"), Some(&JsonValue::Bool(true)));
        assert_eq!(ff.get("early_exits").and_then(JsonValue::as_u64), Some(11));
        assert_eq!(
            ff.get("cycles_skipped").and_then(JsonValue::as_u64),
            Some(4321)
        );
        let timing = doc.get("timing").unwrap();
        assert_eq!(
            timing.get("elapsed_s").and_then(JsonValue::as_f64),
            Some(1.5)
        );
        assert_eq!(
            timing.get("runs_per_sec").and_then(JsonValue::as_f64),
            Some(682.6)
        );
        let lat = timing.get("latency").unwrap();
        let cw = lat.get("chunk_wall").unwrap();
        assert_eq!(cw.get("count").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(cw.get("max_s").and_then(JsonValue::as_f64), Some(0.034));
        assert_eq!(
            lat.get("merge_wait")
                .and_then(|h| h.get("count"))
                .and_then(JsonValue::as_u64),
            Some(0)
        );
        assert!(
            doc.get("elapsed_s").is_none(),
            "elapsed_s moved into timing"
        );
        let trace = doc.get("trace").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].as_arr().unwrap()[0].as_u64(), Some(1024));
    }

    #[test]
    fn schema_validator_accepts_and_rejects() {
        let schema = JsonValue::parse(
            r#"{
                "type": "object",
                "required": ["name", "count"],
                "properties": {
                    "name": {"type": "string", "enum": ["a", "b"]},
                    "count": {"type": "integer"},
                    "extra": {"type": ["number", "null"]},
                    "list": {"type": "array", "items": {"type": "number"}}
                }
            }"#,
        )
        .unwrap();
        let ok = JsonValue::parse(r#"{"name": "a", "count": 3, "extra": null, "list": [1, 2.5]}"#)
            .unwrap();
        assert_eq!(validate_against_schema(&ok, &schema), Ok(()));
        let missing = JsonValue::parse(r#"{"name": "a"}"#).unwrap();
        assert!(validate_against_schema(&missing, &schema)
            .unwrap_err()
            .contains("count"));
        let bad_enum = JsonValue::parse(r#"{"name": "z", "count": 3}"#).unwrap();
        assert!(validate_against_schema(&bad_enum, &schema).is_err());
        let bad_type = JsonValue::parse(r#"{"name": "a", "count": 3.5}"#).unwrap();
        assert!(validate_against_schema(&bad_type, &schema).is_err());
        let bad_item = JsonValue::parse(r#"{"name": "a", "count": 3, "list": ["x"]}"#).unwrap();
        assert!(validate_against_schema(&bad_item, &schema).is_err());
    }

    #[test]
    fn stderr_progress_continues() {
        let mut p = StderrProgress::with_interval("test", Duration::from_secs(3600));
        let ev = ProgressEvent {
            runs_done: 512,
            total_runs: 1024,
            ssf: 0.01,
            sample_variance: 1e-3,
            ess: 500.0,
            target_eps: None,
            lln_bound: None,
            class_counts: ClassCounts::default(),
            counters: CampaignCounters::default(),
            kernel_counters: KernelCounters::default(),
            elapsed_s: 0.5,
            runs_per_sec: 1024.0,
            mlmc: Some(MlmcProgress {
                level: 1,
                n0: 256,
                n1: 256,
            }),
            chunk_wall: LatencySummary {
                count: 1,
                p50_s: 0.01,
                p90_s: 0.01,
                p99_s: 0.01,
                max_s: 0.01,
                sum_s: 0.01,
            },
        };
        assert_eq!(p.on_progress(&ev), ObserverAction::Continue);
        // Second call inside the interval is rate-limited but still
        // continues (and the final boundary always prints).
        assert_eq!(p.on_progress(&ev), ObserverAction::Continue);
    }
}
