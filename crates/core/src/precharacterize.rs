//! The complete system pre-characterization (paper §4).
//!
//! Orchestrates the three steps on the synthetic benchmark:
//!
//! 1. responding-signal cone extraction → [`SampleSpace`],
//! 2. switching-signature correlation → [`CorrelationData`],
//! 3. register lifetime/contamination → [`RegisterCharacterization`],
//!
//! and derives the per-cell error lifetime `L(g)` used by the sampling
//! distributions: a register's own lifetime, or, for a combinational cell,
//! the maximum lifetime over the registers that can latch its error (the
//! registers in its DFF-free forward closure).

use crate::correlation::CorrelationData;
use crate::lifetime::{default_sample_cycles, RegisterCharacterization, RegisterKind};
use crate::model::SystemModel;
use crate::space::SampleSpace;
use crate::trace::TraceSink;
use std::collections::{HashMap, HashSet, VecDeque};
use xlmc_netlist::{CellKind, GateId};
use xlmc_soc::golden::GoldenRun;
use xlmc_soc::workloads;

/// The full pre-characterization product.
#[derive(Debug, Clone)]
pub struct Precharacterization {
    /// Step 1: the per-timing-distance sample space.
    pub space: SampleSpace,
    /// Step 2: frame-aligned bit-flip correlations.
    pub correlation: CorrelationData,
    /// Step 3: register lifetime/contamination and classification.
    pub registers: RegisterCharacterization,
    /// Derived `L(g)` for every sample-space cell.
    cell_lifetime: HashMap<GateId, u32>,
    /// Derived responding-signal suppression correlation for every
    /// sample-space cell (registers: their own measured fraction;
    /// combinational cells: the maximum over their latch targets).
    cell_suppress: HashMap<GateId, f64>,
    /// Length of the synthetic golden run used.
    pub synthetic_cycles: u64,
}

impl Precharacterization {
    /// Run the pre-characterization on the built-in synthetic benchmark.
    ///
    /// `t_max` bounds the timing-distance range; `halo_radius` expands the
    /// spatial sample space around the cones (see [`SampleSpace::build`]).
    pub fn run(model: &SystemModel, t_max: i64, halo_radius: f64) -> Self {
        Self::run_traced(model, t_max, halo_radius, &TraceSink::disabled())
    }

    /// [`Self::run`], with each pre-characterization step recorded as a
    /// span on `sink` (`cat = "prechar"`).
    pub fn run_traced(model: &SystemModel, t_max: i64, halo_radius: f64, sink: &TraceSink) -> Self {
        let golden = {
            let _span = sink.span("prechar", "synthetic-golden");
            let synth = workloads::synthetic_precharacterization();
            GoldenRun::record(&synth.program, 20_000, 64)
        };
        Self::run_with_golden_traced(model, &golden, t_max, halo_radius, sink)
    }

    /// Run the pre-characterization against a caller-provided synthetic
    /// golden run (for custom stimulus).
    pub fn run_with_golden(
        model: &SystemModel,
        synthetic: &GoldenRun,
        t_max: i64,
        halo_radius: f64,
    ) -> Self {
        Self::run_with_golden_traced(model, synthetic, t_max, halo_radius, &TraceSink::disabled())
    }

    /// [`Self::run_with_golden`], with each step spanned on `sink`.
    pub fn run_with_golden_traced(
        model: &SystemModel,
        synthetic: &GoldenRun,
        t_max: i64,
        halo_radius: f64,
        sink: &TraceSink,
    ) -> Self {
        let space = {
            let _span = sink.span("prechar", "cones");
            SampleSpace::build(model, t_max, halo_radius)
        };
        let correlation = {
            let _span = sink.span("prechar", "signatures+correlation");
            CorrelationData::compute(model, synthetic, &space)
        };
        let registers = {
            let _span = sink.span("prechar", "lifetime");
            RegisterCharacterization::measure(synthetic, &default_sample_cycles(synthetic, 5))
        };
        let (cell_lifetime, cell_suppress) = {
            let _span = sink.span("prechar", "classification");
            derive_cell_characters(model, &space, &registers)
        };
        Self {
            space,
            correlation,
            registers,
            cell_lifetime,
            cell_suppress,
            synthetic_cycles: synthetic.cycles,
        }
    }

    /// The error lifetime `L(g)` of a sample-space cell (0 for cells whose
    /// errors reach no register).
    pub fn cell_lifetime(&self, g: GateId) -> u32 {
        self.cell_lifetime.get(&g).copied().unwrap_or(0)
    }

    /// The injection-measured responding-signal *suppression* correlation
    /// of a sample-space cell: for a register its own measured fraction,
    /// for a combinational cell the maximum over the registers that can
    /// latch its transient (its DFF-free forward closure).
    pub fn cell_suppress(&self, g: GateId) -> f64 {
        self.cell_suppress.get(&g).copied().unwrap_or(0.0)
    }

    /// The classification of a DFF cell, `None` for non-register cells.
    pub fn dff_kind(&self, model: &SystemModel, g: GateId) -> Option<RegisterKind> {
        model.mpu.bit_of(g).map(|bit| self.registers.kind(bit))
    }
}

/// `L(g)` and the suppression correlation for every sample-space cell:
/// registers carry their measured values; combinational cells inherit the
/// maximum over the registers in their DFF-free forward closure (the
/// registers their transient can latch into).
fn derive_cell_characters(
    model: &SystemModel,
    space: &SampleSpace,
    registers: &RegisterCharacterization,
) -> (HashMap<GateId, u32>, HashMap<GateId, f64>) {
    let netlist = model.mpu.netlist();
    let fanouts = netlist.fanouts();
    let mut lifetimes = HashMap::new();
    let mut suppress = HashMap::new();
    for &g in &space.all_cells() {
        let (lifetime, supp) = if netlist.gate(g).kind == CellKind::Dff {
            model
                .mpu
                .bit_of(g)
                .map(|b| {
                    let c = registers.bit(b);
                    (c.lifetime, c.rs_suppress_fraction)
                })
                .unwrap_or((0, 0.0))
        } else {
            // Forward closure up to (and including) the first registers.
            let mut best_l = 0u32;
            let mut best_s = 0.0f64;
            let mut seen: HashSet<GateId> = HashSet::new();
            let mut queue: VecDeque<GateId> = VecDeque::from([g]);
            while let Some(id) = queue.pop_front() {
                if !seen.insert(id) {
                    continue;
                }
                if netlist.gate(id).kind == CellKind::Dff {
                    if let Some(bit) = model.mpu.bit_of(id) {
                        let c = registers.bit(bit);
                        best_l = best_l.max(c.lifetime);
                        best_s = best_s.max(c.rs_suppress_fraction);
                    }
                    continue;
                }
                for &c in fanouts.of(id) {
                    queue.push_back(c);
                }
            }
            (best_l, best_s)
        };
        lifetimes.insert(g, lifetime);
        suppress.insert(g, supp);
    }
    (lifetimes, suppress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LIFETIME_CAP;
    use xlmc_soc::MpuBit;

    fn prechar() -> (SystemModel, Precharacterization) {
        let model = SystemModel::with_defaults().unwrap();
        let p = Precharacterization::run(&model, 8, 0.0);
        (model, p)
    }

    #[test]
    fn register_lifetimes_flow_through_to_cells() {
        let (model, p) = prechar();
        // An unused config register keeps its capped lifetime.
        let unused = model.mpu.dff(MpuBit::Base(2, 9));
        assert_eq!(p.cell_lifetime(unused), LIFETIME_CAP);
        // A pipeline register has a short one.
        let pipe = model.mpu.dff(MpuBit::PipeAddr(2));
        assert!(p.cell_lifetime(pipe) <= 5);
    }

    #[test]
    fn comb_cells_inherit_downstream_register_lifetimes() {
        let (model, p) = prechar();
        // The hold mux in front of an unused config register latches into
        // that register: its lifetime must be the register's.
        let netlist = model.mpu.netlist();
        let unused = model.mpu.dff(MpuBit::Base(2, 9));
        let hold_mux = netlist.gate(unused).fanin[0];
        assert_eq!(p.cell_lifetime(hold_mux), LIFETIME_CAP);
    }

    #[test]
    fn dff_kind_queries_classification() {
        let (model, p) = prechar();
        let pipe = model.mpu.dff(MpuBit::PipeValid);
        assert_eq!(p.dff_kind(&model, pipe), Some(RegisterKind::Computation));
        let unused = model.mpu.dff(MpuBit::Perms(3, 2));
        assert_eq!(p.dff_kind(&model, unused), Some(RegisterKind::Memory));
        // Non-register cells have no kind.
        let rs = model.mpu.responding_signal();
        assert_eq!(p.dff_kind(&model, rs), None);
    }

    #[test]
    fn every_space_cell_has_a_lifetime_entry() {
        let (_, p) = prechar();
        for &g in &p.space.all_cells() {
            // Entry exists (may be zero for dead-end cells).
            let _ = p.cell_lifetime(g);
        }
        assert!(p.synthetic_cycles > 100);
    }
}
