//! Two-level multilevel Monte Carlo (MLMC) over the cross-level flow.
//!
//! The paper's estimator pays a gate-level transient simulation on every
//! sampled run. Following "Representing Gate-Level SET Faults by Multiple
//! SEU Faults at RTL" (arXiv:2103.05106), a gate-level SET is well modeled
//! by the multi-bit SEU set it can latch — which this module derives once
//! per (cell, injection cycle) from the pre-characterization
//! ([`SetToSeuMap`], with the transient model's logical masking,
//! electrical attenuation and latching windows folded in statically) — so
//! a **cheap level-0 sampler** can skip the netlist entirely: map the
//! sampled spot, cycle and phase to its SEU set, then run the existing
//! downstream conclusion machinery (hardening filter, classification,
//! analytic evaluation or fast-forward RTL resume). Writing `r = w·e_rtl`
//! for the level-0 weighted indicator
//! and `g = w·e_gate` for the full flow's, the telescoped identity
//!
//! ```text
//! E[g] = E[r] + E[g − r]
//! ```
//!
//! turns the campaign into two streams: many cheap level-0 runs estimate
//! `E[r]`, and a few **coupled** level-1 runs — the *same* `(seed,
//! run-index)` fault evaluated at both levels under twin RNG streams —
//! estimate the correction `E[g − r]`. Coupling is what makes the
//! correction low-variance: both levels see the identical sample, weight
//! and hardening draws, so `g − r` is nonzero only where multi-cell
//! transient interaction actually changes the verdict.
//!
//! [`MlmcEstimator`] holds the fixed per-level cost model and the sample
//! allocation: after a fixed pilot of alternating chunks, the live Welford
//! `s²` of each level picks the level-1 share `n₁/n ∝ √(s₁²/c₁)` that
//! minimizes total cost at a given variance target, and [`MlmcPlan`]
//! unrolls that share into a deterministic per-chunk level schedule
//! (Bresenham rounding — a pure function of the ratio, so merge,
//! checkpoint and resume stay bit-deterministic at any thread count).
//!
//! The per-chunk executors here are deliberately scalar: the correction
//! level is sampled rarely and the cheap level never touches the netlist,
//! so `--kernel` has nothing to batch — which also makes MLMC results
//! trivially identical across all three kernels.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::estimator::ChunkPartial;
use crate::fastforward::{FastForwardStats, RtlFastForward, SharedConclusionMemo};
use crate::flow::{FaultRunner, FlowScratch, RunView, StrikeClass};
use crate::model::{Evaluation, SystemModel};
use crate::precharacterize::Precharacterization;
use crate::rng::SplitMix64;
use crate::sampling::SamplingStrategy;
use crate::trace::{CounterScratch, ProvenanceRecord};
use rand::Rng;
use serde::{Deserialize, Serialize};
use xlmc_fault::{AttackSample, RadiationSpot};
use xlmc_netlist::{CellKind, GateId, Topology};
use xlmc_soc::MpuBit;

/// Chunk-level tag: the cheap pure-RTL sampler.
pub(crate) const LEVEL_RTL: u8 = 0;
/// Chunk-level tag: the gate-accurate sampler (and, under MLMC, the
/// coupled correction term).
pub(crate) const LEVEL_GATE: u8 = 1;

/// One statically-timed strike → latch path of a combinational cell: the
/// register bit its pulse can reach, and the sample-independent timing of
/// the pulse when it arrives at that register's D pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeuPath {
    /// The register bit at the end of the path.
    pub bit: MpuBit,
    /// Accumulated gate delay from the struck cell to the D pin, ps. The
    /// pulse arrives at `strike_time + delay_ps`.
    pub delay_ps: f64,
    /// Surviving pulse width at the D pin after per-level electrical
    /// attenuation, ps.
    pub duration_ps: f64,
}

/// The SEU set one sampled cell maps to at RTL.
#[derive(Debug, Clone, PartialEq)]
pub struct SetToSeuEntry {
    /// Register bits the cell's transient can latch into (sorted, deduped):
    /// the cell's own bit for a register; for a combinational cell, the
    /// union over injection cycles of its timed-path targets.
    pub bits: Vec<MpuBit>,
    /// Per-injection-cycle timed paths of a combinational cell (indexed by
    /// `te`; empty for registers). At query time a path contributes its
    /// bit only when the sampled strike phase lands the pulse inside the
    /// latching window.
    paths_by_te: Vec<Vec<SeuPath>>,
    /// Whether every reachable bit shares one register class — one of the
    /// two conditions for the SET being exactly representable at RTL.
    pub single_class: bool,
    /// Whether the cell *is* a mapped register: a radius-0 strike on it is
    /// the same single-bit SEU at both levels (no pulse shaping between
    /// the strike and the latch), so the correction term is provably zero.
    pub exact: bool,
}

impl SetToSeuEntry {
    /// The statically-masked timed paths of this cell for injection cycle
    /// `te` (empty for registers and out-of-range cycles).
    pub fn paths_at(&self, te: u64) -> &[SeuPath] {
        self.paths_by_te
            .get(te as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// The prechar-derived SET → multi-bit-SEU map of arXiv:2103.05106, for
/// every cell of the sample space.
///
/// A register cell maps to its own bit (a strike flips the storage node
/// regardless of timing). A combinational cell maps to **statically timed
/// and masked paths**, one set per injection cycle: for a *single-cell*
/// strike every input of [`xlmc_gatesim::transient::TransientSim`] except
/// the strike phase — the golden run's cycle values (logical masking), the
/// path delays and the per-level attenuation (electrical masking) — is a
/// pure function of `(cell, te)`, so the sim's propagation recurrences can
/// be run once per `(cell, te)` at build time. At query time only the
/// strike phase remains free: a path latches exactly when
/// `strike_time + delay` lands its surviving pulse inside the
/// `[T − setup, T + hold]` window, mirroring the sim's check at each D
/// pin. Level 0 is therefore **exact for radius-0 samples**; all that is
/// left to the coupled level-1 correction is multi-cell pulse interaction
/// (merged transients, reconvergent cancellation) on radius > 0 strikes.
#[derive(Debug, Clone)]
pub struct SetToSeuMap {
    entries: HashMap<GateId, SetToSeuEntry>,
    /// Clock period of the transient model the timings were derived from.
    clock_period_ps: f64,
    /// Latching window `[T − setup, T + hold]` of the same model.
    window_lo: f64,
    window_hi: f64,
}

impl SetToSeuMap {
    /// Derive the map for every sample-space cell against `eval`'s golden
    /// run, one masked path set per injection cycle.
    pub fn build(model: &SystemModel, eval: &Evaluation, prechar: &Precharacterization) -> Self {
        let netlist = model.mpu.netlist();
        let fanouts = netlist.fanouts();
        let cfg = model.transient.config();
        let golden = &eval.golden;
        let cycles = golden.cycles as usize;
        // Topological ranks, exactly as the transient sim orders its
        // worklist (u32::MAX marks sources and DFFs — never propagated
        // through).
        let topo = Topology::new(netlist).expect("the MPU netlist is loop-free");
        let mut rank = vec![u32::MAX; netlist.len()];
        for (r, &id) in topo.order().iter().enumerate() {
            rank[id.index()] = r as u32;
        }
        // Seed every entry; combinational cells get their per-te path
        // tables filled in the sweep below.
        let mut entries: HashMap<GateId, SetToSeuEntry> = HashMap::new();
        let mut comb: Vec<GateId> = Vec::new();
        for &g in &prechar.space.all_cells() {
            let mut bits: Vec<MpuBit> = Vec::new();
            let mut paths_by_te: Vec<Vec<SeuPath>> = Vec::new();
            let mut exact = false;
            match netlist.gate(g).kind {
                CellKind::Dff => {
                    if let Some(b) = model.mpu.bit_of(g) {
                        bits.push(b);
                        exact = true;
                    }
                }
                CellKind::Input | CellKind::Const(_) | CellKind::Output => {}
                _ => {
                    paths_by_te = vec![Vec::new(); cycles];
                    comb.push(g);
                }
            }
            entries.insert(
                g,
                SetToSeuEntry {
                    bits,
                    paths_by_te,
                    single_class: false,
                    exact,
                },
            );
        }
        // One pulse sweep per (cycle, combinational cell): the transient
        // sim's rank-ordered propagation — logical masking against the
        // cycle's stable values, electrical attenuation, death below the
        // minimum width — with the strike moment left symbolic (delays
        // accumulate relative to it).
        let mut pulse: Vec<Option<(f64, f64)>> = vec![None; netlist.len()];
        let mut touched: Vec<GateId> = Vec::new();
        let mut queue: BinaryHeap<Reverse<(u32, GateId)>> = BinaryHeap::new();
        let mut queued: Vec<bool> = vec![false; netlist.len()];
        let mut enqueued: Vec<GateId> = Vec::new();
        let mut ins: Vec<bool> = Vec::new();
        let mut pulsing: Vec<usize> = Vec::new();
        for te in 0..cycles {
            let state = model.mpu.state_vector(&golden.mpu_states[te]);
            let stim = &golden.stimulus[te];
            let inputs = model.mpu.input_values(stim.request, stim.cfg_write);
            let values = model.cycle_sim.eval(netlist, &state, &inputs);
            for &g in &comb {
                pulse[g.index()] = Some((0.0, cfg.initial_duration_ps));
                touched.push(g);
                for &c in fanouts.of(g) {
                    if rank[c.index()] != u32::MAX && !queued[c.index()] {
                        queued[c.index()] = true;
                        enqueued.push(c);
                        queue.push(Reverse((rank[c.index()], c)));
                    }
                }
                while let Some(Reverse((_, id))) = queue.pop() {
                    if pulse[id.index()].is_some() {
                        continue;
                    }
                    let gate = netlist.gate(id);
                    pulsing.clear();
                    for (i, f) in gate.fanin.iter().enumerate() {
                        if pulse[f.index()].is_some() {
                            pulsing.push(i);
                        }
                    }
                    if pulsing.is_empty() {
                        continue;
                    }
                    // Logical masking: does flipping the pulsing inputs
                    // flip the output under the cycle's stable values?
                    ins.clear();
                    ins.extend(gate.fanin.iter().map(|f| values.value(*f)));
                    let nominal = gate.kind.eval(&ins);
                    for &i in &pulsing {
                        ins[i] = !ins[i];
                    }
                    if gate.kind.eval(&ins) == nominal {
                        continue;
                    }
                    // Electrical masking: the pulse dies once narrower
                    // than the minimum propagatable width.
                    let width = pulsing
                        .iter()
                        .map(|&i| pulse[gate.fanin[i].index()].unwrap().1)
                        .fold(0.0f64, f64::max)
                        - cfg.attenuation_ps;
                    if width < cfg.min_duration_ps {
                        continue;
                    }
                    let delay = pulsing
                        .iter()
                        .map(|&i| pulse[gate.fanin[i].index()].unwrap().0)
                        .fold(0.0f64, f64::max)
                        + gate.kind.delay_ps();
                    pulse[id.index()] = Some((delay, width));
                    touched.push(id);
                    for &c in fanouts.of(id) {
                        if rank[c.index()] != u32::MAX && !queued[c.index()] {
                            queued[c.index()] = true;
                            enqueued.push(c);
                            queue.push(Reverse((rank[c.index()], c)));
                        }
                    }
                }
                // A path per register whose D pin carries a surviving
                // pulse; the latching-window check is deferred to query
                // time (only the strike phase is sample-dependent).
                let entry = entries.get_mut(&g).expect("seeded above");
                for &t in &touched {
                    let (delay_ps, duration_ps) = pulse[t.index()].expect("touched ⇒ pulsing");
                    for &c in fanouts.of(t) {
                        let consumer = netlist.gate(c);
                        if consumer.kind == CellKind::Dff && consumer.fanin[0] == t {
                            if let Some(bit) = model.mpu.bit_of(c) {
                                entry.paths_by_te[te].push(SeuPath {
                                    bit,
                                    delay_ps,
                                    duration_ps,
                                });
                                entry.bits.push(bit);
                            }
                        }
                    }
                }
                // One driver per D pin ⇒ at most one path per bit.
                entry.paths_by_te[te].sort_unstable_by_key(|p| p.bit);
                for &t in &touched {
                    pulse[t.index()] = None;
                }
                touched.clear();
                for &q in &enqueued {
                    queued[q.index()] = false;
                }
                enqueued.clear();
                queue.clear();
            }
        }
        for e in entries.values_mut() {
            e.bits.sort_unstable();
            e.bits.dedup();
            e.single_class = !e.bits.is_empty() && {
                let kind = prechar.registers.kind(e.bits[0]);
                e.bits.iter().all(|&b| prechar.registers.kind(b) == kind)
            };
        }
        Self {
            entries,
            clock_period_ps: cfg.clock_period_ps,
            window_lo: cfg.clock_period_ps - cfg.setup_ps,
            window_hi: cfg.clock_period_ps + cfg.hold_ps,
        }
    }

    /// The entry for one cell (`None` for cells outside the sample space).
    pub fn entry(&self, g: GateId) -> Option<&SetToSeuEntry> {
        self.entries.get(&g)
    }

    /// Number of mapped cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clock period of the transient model the timings were derived from
    /// (callers turn a sampled phase into `strike_time_ps` with it).
    pub fn clock_period_ps(&self) -> f64 {
        self.clock_period_ps
    }

    /// The latching window `[T − setup, T + hold]` paths are tested
    /// against, ps.
    pub fn latch_window_ps(&self) -> (f64, f64) {
        (self.window_lo, self.window_hi)
    }

    /// Union the SEU sets of the struck cells for injection cycle `te` at
    /// strike time `strike_time_ps` into `out` (sorted, deduped — the
    /// canonical bit-pattern order the conclusion memo keys on). Register
    /// strikes always contribute their bit; a combinational path
    /// contributes only when its pulse overlaps the latching window — the
    /// same `pulse_lo ≤ window_hi ∧ pulse_hi ≥ window_lo` test the
    /// transient sim applies at each D pin.
    pub fn seu_bits_into(
        &self,
        struck: &[GateId],
        te: u64,
        strike_time_ps: f64,
        out: &mut Vec<MpuBit>,
    ) {
        out.clear();
        for &g in struck {
            if let Some(e) = self.entries.get(&g) {
                if e.exact {
                    out.extend_from_slice(&e.bits);
                } else {
                    for p in e.paths_at(te) {
                        let lo = strike_time_ps + p.delay_ps;
                        if lo <= self.window_hi && lo + p.duration_ps >= self.window_lo {
                            out.push(p.bit);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Whether a sample's SET is **exactly representable** at RTL: a
    /// radius-0 strike on a mapped register cell (single register class,
    /// no pulse filtering between the strike and the latch). For such
    /// samples the level-0 verdict provably equals the gate-level verdict,
    /// so the coupled correction term is zero — the property the
    /// `property_based` suite pins.
    pub fn exactly_representable(&self, sample: &AttackSample) -> bool {
        sample.radius == 0.0
            && self
                .entries
                .get(&sample.center)
                .is_some_and(|e| e.exact && e.single_class)
    }
}

/// Lower clamp on the level-1 chunk share: the correction stream must keep
/// growing so the stopping rule always has a live `s₁²` to consult.
const MIN_LEVEL1_SHARE: f64 = 0.05;
/// Upper clamp on the level-1 chunk share (degenerating to gate-only would
/// make MLMC strictly worse than `--estimator single`).
const MAX_LEVEL1_SHARE: f64 = 0.95;

/// The two-level sample-allocation engine.
///
/// Holds the **fixed, deterministic** per-level cost model (never
/// wall-clock — timings would leak the schedule into the plan and break
/// bit-determinism) and turns pilot variances into an [`MlmcPlan`]. With
/// per-level variances `s₀², s₁²` and costs `c₀, c₁`, total cost at a
/// fixed estimator variance is minimized by `n_ℓ ∝ √(s_ℓ²/c_ℓ)` (the
/// standard MLMC allocation), so the level-1 share is
/// `√(s₁²/c₁) / (√(s₀²/c₀) + √(s₁²/c₁))`, clamped away from the
/// degenerate endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlmcEstimator {
    /// Relative cost of one level-0 run (conclusion machinery only).
    pub cost0: f64,
    /// Relative cost of one coupled level-1 run (full gate-level strike +
    /// transient propagation, plus the RTL twin).
    pub cost1: f64,
}

impl Default for MlmcEstimator {
    fn default() -> Self {
        Self {
            cost0: 1.0,
            cost1: 9.0,
        }
    }
}

impl MlmcEstimator {
    /// Chunks executed before the measured plan takes over, on the fixed
    /// alternating pattern [`Self::pilot_level`]. Starting at level 1
    /// guarantees `n₁ > 0` for any campaign length (a single-chunk
    /// campaign degenerates to the gate-marginal estimate).
    pub const PILOT_CHUNKS: usize = 4;

    /// The fixed pilot schedule: chunks 0, 2, … are level 1 (coupled),
    /// chunks 1, 3, … are level 0.
    pub fn pilot_level(chunk: usize) -> u8 {
        if chunk.is_multiple_of(2) {
            LEVEL_GATE
        } else {
            LEVEL_RTL
        }
    }

    /// The cost-optimal level-1 sample share for the given per-level
    /// variances, clamped to `[0.05, 0.95]` (both clamps also cover the
    /// all-masked pilot where both variances are zero).
    pub fn optimal_share1(&self, s0_sq: f64, s1_sq: f64) -> f64 {
        let d0 = (s0_sq.max(0.0) / self.cost0).sqrt();
        let d1 = (s1_sq.max(0.0) / self.cost1).sqrt();
        let share = if d0 + d1 > 0.0 { d1 / (d0 + d1) } else { 0.0 };
        share.clamp(MIN_LEVEL1_SHARE, MAX_LEVEL1_SHARE)
    }

    /// Freeze pilot variances into a deterministic chunk-level plan.
    pub fn plan(&self, s0_sq: f64, s1_sq: f64) -> MlmcPlan {
        MlmcPlan {
            ratio: self.optimal_share1(s0_sq, s1_sq),
        }
    }
}

/// A frozen chunk-level schedule: the pilot pattern followed by Bresenham
/// rounding of the level-1 share. A pure function of `ratio`, so the
/// schedule — and with it every merged statistic — survives checkpoint,
/// resume and any thread count bit-identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlmcPlan {
    /// Target fraction of post-pilot chunks evaluated at level 1.
    pub ratio: f64,
}

impl MlmcPlan {
    /// The level of campaign chunk `chunk` under this plan.
    pub fn level_of_chunk(&self, chunk: usize) -> u8 {
        if chunk < MlmcEstimator::PILOT_CHUNKS {
            return MlmcEstimator::pilot_level(chunk);
        }
        // Bresenham: chunk j (post-pilot) is level 1 exactly when the
        // running rounded count ⌊(j+1)·ratio⌋ advances.
        let j = (chunk - MlmcEstimator::PILOT_CHUNKS) as f64;
        if ((j + 1.0) * self.ratio).floor() > (j * self.ratio).floor() {
            LEVEL_GATE
        } else {
            LEVEL_RTL
        }
    }
}

/// Per-level accounting of one MLMC campaign, carried on
/// [`crate::estimator::CampaignResult`]. Every field is — like the rest of
/// the result — a pure function of `(seed, n, strategy)`: bit-identical at
/// any thread count and under every kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlmcSummary {
    /// Level-0 (pure-RTL) runs folded.
    pub n0: u64,
    /// Coupled level-1 runs folded.
    pub n1: u64,
    /// Level-0 sample mean of `w·e_rtl`.
    pub mean0: f64,
    /// Level-0 sample variance.
    pub var0: f64,
    /// Level-1 sample mean of the signed correction `w·(e_gate − e_rtl)`.
    pub mean1_diff: f64,
    /// Level-1 sample variance of the correction.
    pub var1_diff: f64,
    /// Level-1 marginal mean of `w·e_gate` (the gate-only estimate over
    /// the coupled runs; carries the estimate when `n0 == 0`).
    pub mean1_gate: f64,
    /// Level-1 marginal mean of `w·e_rtl`.
    pub mean1_rtl: f64,
    /// The fixed cost-model constants the allocation used.
    pub cost0: f64,
    /// See [`MlmcSummary::cost0`].
    pub cost1: f64,
    /// The published post-pilot level-1 chunk share (`None` when the
    /// campaign ended inside the pilot).
    pub plan_ratio: Option<f64>,
    /// The level of every merged chunk, in chunk order — enough for a
    /// harness to re-derive exactly which run indices were coupled.
    pub chunk_levels: Vec<u8>,
}

impl MlmcSummary {
    /// The variance of the combined point estimate,
    /// `s₀²/n₀ + s₁²/n₁` (terms with no samples drop out).
    pub fn estimator_variance(&self) -> f64 {
        let mut v = 0.0;
        if self.n0 > 0 {
            v += self.var0 / self.n0 as f64;
        }
        if self.n1 > 0 {
            v += self.var1_diff / self.n1 as f64;
        }
        v
    }

    /// Realized level-1 share of all folded runs.
    pub fn share1(&self) -> f64 {
        let total = self.n0 + self.n1;
        if total == 0 {
            0.0
        } else {
            self.n1 as f64 / total as f64
        }
    }

    /// The cost-optimal level-1 share implied by the *final* measured
    /// variances (what the plan would be with hindsight).
    pub fn optimal_share1(&self) -> f64 {
        MlmcEstimator {
            cost0: self.cost0,
            cost1: self.cost1,
        }
        .optimal_share1(self.var0, self.var1_diff)
    }
}

/// Per-worker buffers for the MLMC chunk executors: the strike/SEU
/// scratch and fast-forward state of the level-0 path, plus a full
/// [`FlowScratch`] for the gate half of coupled runs. Like `FlowScratch`,
/// only valid against one `(model, evaluation, prechar)` triple.
#[derive(Debug, Default)]
pub struct MlmcScratch {
    struck: Vec<GateId>,
    struck2: Vec<GateId>,
    bits: Vec<MpuBit>,
    ff: RtlFastForward,
    flow: FlowScratch,
}

impl MlmcScratch {
    /// Enable or disable the RTL fast-forward accelerations on both the
    /// level-0 resume state and the gate-path scratch.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.ff.set_enabled(enabled);
        self.flow.set_fast_forward(enabled);
    }

    /// Combined fast-forward counters of both paths.
    pub fn fast_forward_stats(&self) -> FastForwardStats {
        let mut s = self.ff.stats();
        s.add(&self.flow.fast_forward_stats());
        s
    }

    /// Drain latency observations from both the level-0 resume state and
    /// the nested gate-path scratch into one shard for the chunk partial.
    pub(crate) fn take_latency(&mut self) -> crate::metrics::LatencyShard {
        let mut shard = crate::metrics::LatencyShard {
            snapshot_restore: self.ff.take_restore_latency(),
            ..crate::metrics::LatencyShard::default()
        };
        shard.absorb(&self.flow.take_latency());
        shard
    }
}

/// The level-0 evaluation of one sample: map the spot to its multi-bit SEU
/// set and run only the downstream conclusion machinery — no gatesim, no
/// transient arithmetic. RNG discipline matches the gate path (hardening
/// draws happen inside `conclude_with`, after the strategy's draw), so a
/// clone of the post-draw stream couples the two levels.
#[allow(clippy::too_many_arguments)]
fn level0_view<'s>(
    runner: &FaultRunner<'_>,
    map: &SetToSeuMap,
    sample: &AttackSample,
    rng: &mut impl Rng,
    struck: &mut Vec<GateId>,
    struck2: &mut Vec<GateId>,
    bits: &'s mut Vec<MpuBit>,
    ff: &mut RtlFastForward,
    memo: &SharedConclusionMemo,
) -> RunView<'s> {
    let te = match sample.injection_cycle(runner.eval.target_cycle) {
        Some(te) if te < runner.eval.golden.cycles => te,
        _ => {
            bits.clear();
            return RunView {
                success: false,
                class: StrikeClass::Masked,
                faulty_bits: bits,
                analytic: false,
                injection_cycle: None,
                pulses_propagated: 0,
                gates_visited: 0,
            };
        }
    };
    let spot = RadiationSpot {
        center: sample.center,
        radius: sample.radius,
    };
    spot.impacted_cells_into(&runner.model.placement, struck);
    if let Some(mf) = runner.multi_fault {
        // Same stream position as the gate path: one entropy word right
        // after the primary spot query, before the hardening draws —
        // coupled pairs therefore see the *same* second spot.
        let second = mf.second_spot(rng.next_u64());
        second.impacted_cells_into(&runner.model.placement, struck2);
        struck.extend_from_slice(struck2);
        struck.sort_unstable();
        struck.dedup();
    }
    let strike_time = sample.strike_time_ps(map.clock_period_ps());
    map.seu_bits_into(struck, te, strike_time, bits);
    runner.conclude_with(te, rng, bits, ff, memo, None)
}

/// Execute runs `start..end` at level 0. Shares the campaign conclusion
/// memo with every other chunk (the verdict is a pure function of
/// `(T_e, bits)`, whichever level asked first).
///
/// Level-0 chunks contribute **no** attribution, trace provenance or
/// `first_success`: those are gate-level notions, so only coupled chunks
/// feed them. The one exception is the `--replay` target: when `replay`
/// names a run in this chunk, its level-0 record is emitted so the replay
/// cross-check can compare like against like ([`replay_run_level0`]
/// re-derives it solo).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_chunk_level0(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    map: &SetToSeuMap,
    seed: u64,
    start: usize,
    end: usize,
    scratch: &mut MlmcScratch,
    memo: &SharedConclusionMemo,
    ctr: &mut CounterScratch,
    replay: Option<u64>,
) -> ChunkPartial {
    ctr.begin_chunk();
    let mut p = ChunkPartial {
        level: LEVEL_RTL,
        ..ChunkPartial::default()
    };
    let MlmcScratch {
        struck,
        struck2,
        bits,
        ff,
        ..
    } = scratch;
    for i in start..end {
        let mut rng = SplitMix64::for_run(seed, i as u64);
        let sample = strategy.draw(&mut rng);
        let w = strategy.weight(&sample);
        let view = level0_view(
            runner, map, &sample, &mut rng, struck, struck2, bits, ff, memo,
        );
        if replay == Some(i as u64) {
            p.provenance.push(ProvenanceRecord {
                run_index: i as u64,
                t: sample.t,
                center: sample.center,
                radius: sample.radius,
                phase: sample.phase,
                te: view.injection_cycle,
                weight: w,
                class: view.class,
                success: view.success,
                analytic: view.analytic,
            });
        }
        match view.class {
            StrikeClass::Masked => p.class_counts.masked += 1,
            StrikeClass::MemoryOnly => p.class_counts.memory_only += 1,
            StrikeClass::Mixed => p.class_counts.mixed += 1,
        }
        if view.class != StrikeClass::Masked {
            if view.analytic {
                p.analytic_runs += 1;
            } else {
                p.rtl_runs += 1;
            }
        }
        ctr.record_run(
            &mut p.counters,
            view.injection_cycle,
            view.faulty_bits,
            view.analytic,
            0,
        );
        p.w_sum += w;
        p.w_sq_sum += w * w;
        let x = if view.success {
            p.successes += 1;
            w
        } else {
            0.0
        };
        p.stats.push(x);
    }
    p
}

/// Execute runs `start..end` as coupled level-1 pairs: the gate-accurate
/// flow and the level-0 twin on the *same* sample under twin post-draw RNG
/// streams, folding the signed difference `w·(e_gate − e_rtl)` into the
/// chunk's primary stream (and both marginals into the side stats).
///
/// The gate half consumes the original per-run stream — exactly the
/// stream `--estimator single` would consume — so its marginal is
/// bit-identical to a gate-only campaign over the same run indices.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_chunk_level1(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    map: &SetToSeuMap,
    seed: u64,
    start: usize,
    end: usize,
    scratch: &mut MlmcScratch,
    memo: &SharedConclusionMemo,
    ctr: &mut CounterScratch,
    record_provenance: bool,
) -> ChunkPartial {
    ctr.begin_chunk();
    let mut p = ChunkPartial {
        level: LEVEL_GATE,
        ..ChunkPartial::default()
    };
    let MlmcScratch {
        struck,
        struck2,
        bits,
        ff,
        flow,
    } = scratch;
    for i in start..end {
        let mut rng = SplitMix64::for_run(seed, i as u64);
        let sample = strategy.draw(&mut rng);
        let w = strategy.weight(&sample);
        // Twin streams: the gate half keeps the original (single-estimator)
        // stream, the RTL twin replays the identical post-draw state — so
        // both halves see the same hardening draws and the correction term
        // isolates the genuine cross-level model gap.
        let mut rng_rtl = rng.clone();
        let gate = runner.run_shared(&sample, &mut rng, flow, Some(memo));
        let rtl = level0_view(
            runner,
            map,
            &sample,
            &mut rng_rtl,
            struck,
            struck2,
            bits,
            ff,
            memo,
        );
        match gate.class {
            StrikeClass::Masked => p.class_counts.masked += 1,
            StrikeClass::MemoryOnly => p.class_counts.memory_only += 1,
            StrikeClass::Mixed => p.class_counts.mixed += 1,
        }
        if gate.class != StrikeClass::Masked {
            if gate.analytic {
                p.analytic_runs += 1;
            } else {
                p.rtl_runs += 1;
            }
        }
        ctr.record_run(
            &mut p.counters,
            gate.injection_cycle,
            gate.faulty_bits,
            gate.analytic,
            gate.pulses_propagated,
        );
        p.kernel_counters.gates_visited += gate.gates_visited;
        p.w_sum += w;
        p.w_sq_sum += w * w;
        let g = if gate.success { w } else { 0.0 };
        let r = if rtl.success { w } else { 0.0 };
        if gate.success {
            p.successes += 1;
            if p.first_success.is_none() {
                p.first_success = Some(i as u64);
            }
            for &bit in gate.faulty_bits {
                *p.attribution.entry(bit).or_insert(0.0) += w;
            }
        }
        p.stats.push(g - r);
        p.gate_stats.push(g);
        p.rtl_stats.push(r);
        if record_provenance {
            p.provenance.push(ProvenanceRecord {
                run_index: i as u64,
                t: sample.t,
                center: sample.center,
                radius: sample.radius,
                phase: sample.phase,
                te: gate.injection_cycle,
                weight: w,
                class: gate.class,
                success: gate.success,
                analytic: gate.analytic,
            });
        }
    }
    p
}

/// One coupled evaluation's raw record, for the statistical acceptance
/// harness: both verdicts of campaign run `run_index` under the exact
/// per-run streams the engine uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedRecord {
    /// Campaign run index.
    pub run_index: u64,
    /// The importance weight `w` of the drawn sample.
    pub weight: f64,
    /// Gate-accurate verdict `e_gate`.
    pub gate_success: bool,
    /// Level-0 pure-RTL verdict `e_rtl`.
    pub rtl_success: bool,
}

impl PairedRecord {
    /// The weighted gate indicator `w·e_gate`.
    pub fn gate_term(&self) -> f64 {
        if self.gate_success {
            self.weight
        } else {
            0.0
        }
    }

    /// The weighted RTL indicator `w·e_rtl`.
    pub fn rtl_term(&self) -> f64 {
        if self.rtl_success {
            self.weight
        } else {
            0.0
        }
    }

    /// The signed correction sample `w·(e_gate − e_rtl)`.
    pub fn diff(&self) -> f64 {
        self.gate_term() - self.rtl_term()
    }
}

/// Re-derive campaign run `run_index` as a coupled pair, solo: the same
/// `SplitMix64::for_run(seed, run_index)` stream, twin post-draw clones,
/// both levels. Both verdicts are pure functions of `(seed, run_index,
/// strategy)`, so the record must match what a level-1 chunk folded.
pub fn coupled_run(
    runner: &FaultRunner<'_>,
    map: &SetToSeuMap,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    run_index: u64,
) -> PairedRecord {
    let memo = SharedConclusionMemo::default();
    coupled_run_with(
        runner,
        map,
        strategy,
        seed,
        run_index,
        &mut MlmcScratch::default(),
        &memo,
    )
}

/// [`coupled_run`] with caller-owned scratch and memo, for harnesses that
/// re-walk thousands of runs (the memo is verdict-invariant, so reuse
/// never changes a record).
pub fn coupled_run_with(
    runner: &FaultRunner<'_>,
    map: &SetToSeuMap,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    run_index: u64,
    scratch: &mut MlmcScratch,
    memo: &SharedConclusionMemo,
) -> PairedRecord {
    let mut rng = SplitMix64::for_run(seed, run_index);
    let sample = strategy.draw(&mut rng);
    let weight = strategy.weight(&sample);
    let mut rng_rtl = rng.clone();
    let MlmcScratch {
        struck,
        struck2,
        bits,
        ff,
        flow,
    } = scratch;
    let gate_success = runner
        .run_shared(&sample, &mut rng, flow, Some(memo))
        .success;
    let rtl_success = level0_view(
        runner,
        map,
        &sample,
        &mut rng_rtl,
        struck,
        struck2,
        bits,
        ff,
        memo,
    )
    .success;
    PairedRecord {
        run_index,
        weight,
        gate_success,
        rtl_success,
    }
}

/// Re-derive campaign run `run_index` at **level 0** solo: the same
/// `SplitMix64::for_run(seed, run_index)` stream, the SEU-map conclusion
/// path instead of the gate kernel. Under `--estimator mlmc` this is what
/// a level-0 chunk recorded for the run, so `--replay` must compare
/// against this — the gate flow's verdict legitimately differs wherever
/// the level-1 correction term is non-zero.
pub fn replay_run_level0(
    runner: &FaultRunner<'_>,
    map: &SetToSeuMap,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    run_index: u64,
) -> ProvenanceRecord {
    let memo = SharedConclusionMemo::default();
    let mut scratch = MlmcScratch::default();
    let mut rng = SplitMix64::for_run(seed, run_index);
    let sample = strategy.draw(&mut rng);
    let weight = strategy.weight(&sample);
    let MlmcScratch {
        struck,
        struck2,
        bits,
        ff,
        ..
    } = &mut scratch;
    let view = level0_view(
        runner, map, &sample, &mut rng, struck, struck2, bits, ff, &memo,
    );
    ProvenanceRecord {
        run_index,
        t: sample.t,
        center: sample.center,
        radius: sample.radius,
        phase: sample.phase,
        te: view.injection_cycle,
        weight,
        class: view.class,
        success: view.success,
        analytic: view.analytic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Evaluation;
    use crate::sampling::{baseline_distribution, ExperimentConfig, ImportanceSampling};
    use xlmc_soc::workloads;

    #[test]
    fn pilot_schedule_alternates_and_starts_coupled() {
        assert_eq!(MlmcEstimator::pilot_level(0), LEVEL_GATE);
        assert_eq!(MlmcEstimator::pilot_level(1), LEVEL_RTL);
        assert_eq!(MlmcEstimator::pilot_level(2), LEVEL_GATE);
        assert_eq!(MlmcEstimator::pilot_level(3), LEVEL_RTL);
    }

    #[test]
    fn optimal_share_matches_closed_form_and_clamps() {
        let est = MlmcEstimator::default();
        // Equal variances: share1 = sqrt(1/c1) / (1 + sqrt(1/c1)) with
        // c0 = 1 — i.e. 1/(1 + sqrt(c1)).
        let share = est.optimal_share1(0.01, 0.01);
        let expect = 1.0 / (1.0 + est.cost1.sqrt());
        assert!((share - expect).abs() < 1e-12, "{share} vs {expect}");
        // A cheap level with all the variance pushes toward level 0.
        assert!(est.optimal_share1(1.0, 1e-8) < 0.06);
        assert_eq!(est.optimal_share1(1.0, 0.0), MIN_LEVEL1_SHARE);
        // All the variance in the correction pushes toward level 1.
        assert!(est.optimal_share1(1e-8, 1.0) > 0.9);
        assert_eq!(est.optimal_share1(0.0, 1.0), MAX_LEVEL1_SHARE);
        // Degenerate all-masked pilot: both clamps meet at the minimum.
        assert_eq!(est.optimal_share1(0.0, 0.0), MIN_LEVEL1_SHARE);
    }

    #[test]
    fn plan_realizes_the_requested_share() {
        for ratio in [0.05, 0.25, 1.0 / 3.0, 0.5, 0.95] {
            let plan = MlmcPlan { ratio };
            let post = 4000usize;
            let ones: usize = (MlmcEstimator::PILOT_CHUNKS..MlmcEstimator::PILOT_CHUNKS + post)
                .map(|c| plan.level_of_chunk(c) as usize)
                .sum();
            let realized = ones as f64 / post as f64;
            assert!(
                (realized - ratio).abs() < 1e-3,
                "ratio {ratio}: realized {realized}"
            );
        }
        // The schedule is a pure function of the ratio bits.
        let a = MlmcPlan { ratio: 0.37 };
        let b = MlmcPlan { ratio: 0.37 };
        for c in 0..256 {
            assert_eq!(a.level_of_chunk(c), b.level_of_chunk(c));
        }
    }

    #[test]
    fn summary_variance_combines_per_level_terms() {
        let s = MlmcSummary {
            n0: 1000,
            n1: 100,
            mean0: 0.02,
            var0: 0.01,
            mean1_diff: 0.001,
            var1_diff: 0.0004,
            mean1_gate: 0.021,
            mean1_rtl: 0.02,
            cost0: 1.0,
            cost1: 9.0,
            plan_ratio: Some(0.2),
            chunk_levels: vec![1, 0, 1, 0, 0],
        };
        let expect = 0.01 / 1000.0 + 0.0004 / 100.0;
        assert!((s.estimator_variance() - expect).abs() < 1e-15);
        assert!((s.share1() - 100.0 / 1100.0).abs() < 1e-12);
        assert!(s.optimal_share1() > 0.0 && s.optimal_share1() < 1.0);
        // No level-0 samples: only the correction term contributes.
        let degenerate = MlmcSummary { n0: 0, ..s };
        assert!((degenerate.estimator_variance() - 0.0004 / 100.0).abs() < 1e-15);
    }

    fn fixture() -> (
        SystemModel,
        Evaluation,
        Precharacterization,
        ExperimentConfig,
    ) {
        let model = SystemModel::with_defaults().unwrap();
        let eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let cfg = ExperimentConfig {
            t_max: 8,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        (model, eval, prechar, cfg)
    }

    #[test]
    fn map_covers_the_sample_space_and_marks_registers_exact() {
        let (model, eval, prechar, _cfg) = fixture();
        let map = SetToSeuMap::build(&model, &eval, &prechar);
        assert_eq!(map.len(), prechar.space.all_cells().len());
        // A register cell maps to exactly its own bit and is exact.
        let dff = model.mpu.dff(MpuBit::Violation);
        let e = map.entry(dff).expect("violation DFF is in the space");
        assert!(e.exact);
        assert!(e.paths_at(0).is_empty());
        assert_eq!(e.bits, vec![MpuBit::Violation]);
        // The hold mux in front of a register reaches that register with a
        // zero-delay, full-width path (it drives the D pin directly, so no
        // logical masking can intervene at any cycle).
        let netlist = model.mpu.netlist();
        let unused = model.mpu.dff(MpuBit::Base(2, 9));
        let hold_mux = netlist.gate(unused).fanin[0];
        if let Some(e) = map.entry(hold_mux) {
            assert!(!e.exact);
            assert!(e.bits.contains(&MpuBit::Base(2, 9)), "{:?}", e.bits);
            let te = eval.target_cycle - 1;
            let p = e
                .paths_at(te)
                .iter()
                .find(|p| p.bit == MpuBit::Base(2, 9))
                .expect("direct D-pin path");
            assert_eq!(p.delay_ps, 0.0);
            assert!(p.duration_ps > 0.0);
        }
    }

    #[test]
    fn seu_union_is_sorted_and_deduped() {
        let (model, eval, prechar, _cfg) = fixture();
        let map = SetToSeuMap::build(&model, &eval, &prechar);
        let cells = prechar.space.all_cells();
        let struck: Vec<GateId> = cells.iter().take(20).copied().collect();
        let (window_lo, _) = map.latch_window_ps();
        let mut out = Vec::new();
        map.seu_bits_into(&struck, eval.target_cycle - 1, window_lo, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(out, sorted);
    }

    #[test]
    fn latching_window_filters_paths_by_strike_time() {
        let (model, eval, prechar, _cfg) = fixture();
        let map = SetToSeuMap::build(&model, &eval, &prechar);
        let netlist = model.mpu.netlist();
        let unused = model.mpu.dff(MpuBit::Base(2, 9));
        let hold_mux = netlist.gate(unused).fanin[0];
        let (window_lo, window_hi) = map.latch_window_ps();
        let te = eval.target_cycle - 1;
        let e = map.entry(hold_mux).expect("hold mux is strikeable");
        let p = e
            .paths_at(te)
            .iter()
            .find(|p| p.bit == MpuBit::Base(2, 9))
            .unwrap();
        let mut out = Vec::new();
        // A strike whose pulse dies long before the capture window latches
        // nothing from this cell; one landing inside the window does.
        let early = window_lo - p.delay_ps - p.duration_ps - 1.0;
        map.seu_bits_into(&[hold_mux], te, early, &mut out);
        assert!(!out.contains(&MpuBit::Base(2, 9)), "{out:?}");
        let inside = (window_lo + window_hi) / 2.0 - p.delay_ps;
        map.seu_bits_into(&[hold_mux], te, inside, &mut out);
        assert!(out.contains(&MpuBit::Base(2, 9)), "{out:?}");
        // A direct register strike ignores timing entirely.
        map.seu_bits_into(&[unused], te, early, &mut out);
        assert_eq!(out, vec![MpuBit::Base(2, 9)]);
    }

    #[test]
    fn exactly_representable_samples_agree_across_levels() {
        // The provable-zero-correction case: a radius-0 strike on the
        // violation register at t = 1 succeeds identically at both levels.
        let (model, eval, prechar, cfg) = fixture();
        let map = SetToSeuMap::build(&model, &eval, &prechar);
        let runner = FaultRunner {
            model: &model,
            eval: &eval,
            prechar: &prechar,
            hardening: None,
            multi_fault: None,
        };
        let fd = baseline_distribution(&model, &cfg);
        let strategy = ImportanceSampling::new(
            fd,
            &model,
            &prechar,
            cfg.alpha,
            cfg.beta,
            cfg.radius_options.clone(),
        );
        let mut scratch = MlmcScratch::default();
        let memo = SharedConclusionMemo::default();
        let mut checked = 0usize;
        for i in 0..600u64 {
            let mut rng = SplitMix64::for_run(77, i);
            let sample = strategy.draw(&mut rng);
            if !map.exactly_representable(&sample) {
                continue;
            }
            let rec = coupled_run_with(&runner, &map, &strategy, 77, i, &mut scratch, &memo);
            assert_eq!(
                rec.gate_success, rec.rtl_success,
                "run {i}: sample {sample:?}"
            );
            checked += 1;
        }
        assert!(
            checked > 10,
            "want exact samples in 600 draws, got {checked}"
        );
    }

    #[test]
    fn coupled_run_is_deterministic_and_matches_scratch_reuse() {
        let (model, eval, prechar, cfg) = fixture();
        let map = SetToSeuMap::build(&model, &eval, &prechar);
        let runner = FaultRunner {
            model: &model,
            eval: &eval,
            prechar: &prechar,
            hardening: None,
            multi_fault: None,
        };
        let fd = baseline_distribution(&model, &cfg);
        let strategy = ImportanceSampling::new(
            fd,
            &model,
            &prechar,
            cfg.alpha,
            cfg.beta,
            cfg.radius_options.clone(),
        );
        let mut scratch = MlmcScratch::default();
        let memo = SharedConclusionMemo::default();
        for i in [0u64, 3, 17, 400] {
            let fresh = coupled_run(&runner, &map, &strategy, 9, i);
            let reused = coupled_run_with(&runner, &map, &strategy, 9, i, &mut scratch, &memo);
            assert_eq!(fresh, reused, "run {i}");
        }
    }
}
