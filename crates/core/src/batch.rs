//! Batched campaign chunk execution over the 64-lane transient kernel.
//!
//! One chunk of runs is executed in three phases:
//!
//! 1. **Draw** (scalar): each run's sample, weight and RNG come from
//!    `SplitMix64::for_run(seed, run_index)` exactly as in the scalar
//!    engine — batching never touches the per-run random streams.
//! 2. **Strike** (packed): in-run samples are stratified by injection
//!    cycle (sorted by `(T_e, run_index)` so runs sharing a frame land in
//!    the same lane batch), grouped into batches of up to
//!    [`LANES`](xlmc_gatesim::LANES) lanes, and propagated through
//!    [`TransientSim::strike_batch_with`](xlmc_gatesim::transient::TransientSim)
//!    in one worklist pass per batch.
//! 3. **Conclude + fold** (scalar): each lane's latched pattern goes
//!    through the unchanged hardening/classification/resume pipeline with
//!    its own RNG, and the per-run results are folded into the chunk
//!    partial **in run-index order**, so the Welford/Chan statistics are
//!    bit-identical to the scalar engine's at any thread count and any
//!    lane assignment.

use std::sync::OnceLock;
use std::time::Instant;

use xlmc_fault::{AttackSample, LaneStrikes};
use xlmc_gatesim::{
    BatchLane, BatchStrikeOutcome, BatchTransientScratch, CompiledStrikeOutcome,
    CompiledTransientScratch, CycleValues, StrikeOutcome, TransientScratch, WideMask, LANES,
    WIDE_LANES,
};
use xlmc_netlist::GateId;
use xlmc_soc::MpuBit;

use crate::estimator::{fold_run, CampaignKernel, ChunkPartial, RunObs};
use crate::fastforward::{ConclusionFront, FastForwardStats, RtlFastForward, SharedConclusionMemo};
use crate::flow::{FaultRunner, StrikeClass};
use crate::metrics::{LatencyHist, LatencyShard};
use crate::rng::SplitMix64;
use crate::sampling::SamplingStrategy;
use crate::trace::{CounterScratch, KernelCounters, TraceSink};
use rand::RngCore;

/// Campaign-wide memo of the per-cycle stable netlist values.
///
/// The injection-cycle values are a pure function of `T_e` on the golden
/// run, so every worker shares one lazily-filled slot per cycle instead of
/// re-deriving its own copy — the duplicated per-worker warmup was the
/// main multi-thread overhead of the scalar engine.
pub(crate) struct SharedCycleCache {
    slots: Vec<OnceLock<CycleValues>>,
}

impl SharedCycleCache {
    /// An empty cache covering `cycles` golden cycles.
    pub(crate) fn new(cycles: u64) -> Self {
        Self {
            slots: (0..cycles).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The stable values of injection cycle `te` (computed once per
    /// campaign, whichever worker gets there first).
    fn get<'c>(&'c self, runner: &FaultRunner<'_>, te: u64) -> &'c CycleValues {
        self.slots[te as usize].get_or_init(|| {
            let golden = &runner.eval.golden;
            let netlist = runner.model.mpu.netlist();
            let mut state = Vec::new();
            let mut inputs = Vec::new();
            runner
                .model
                .mpu
                .state_vector_into(&golden.mpu_states[te as usize], &mut state);
            let stim = &golden.stimulus[te as usize];
            runner
                .model
                .mpu
                .input_values_into(stim.request, stim.cfg_write, &mut inputs);
            let mut cv = CycleValues::default();
            runner
                .model
                .cycle_sim
                .eval_into(netlist, &state, &inputs, &mut cv);
            cv
        })
    }
}

/// One run's scalar-phase products: the drawn sample, its importance
/// weight, and the RNG state *after* the draw (the only later consumer is
/// the hardening filter, which runs lane-by-lane in the conclude phase).
struct RunDraw {
    sample: AttackSample,
    w: f64,
    rng: SplitMix64,
}

/// One run's concluded outcome, buffered until the run-order fold.
struct RunRecord {
    success: bool,
    class: StrikeClass,
    analytic: bool,
    bits: Vec<MpuBit>,
    pulses: usize,
}

impl RunRecord {
    fn empty() -> Self {
        Self {
            success: false,
            class: StrikeClass::Masked,
            analytic: false,
            bits: Vec::new(),
            pulses: 0,
        }
    }
}

/// Reusable per-worker buffers for [`run_chunk_batched`]. Like
/// [`FlowScratch`](crate::flow::FlowScratch), the RTL fast-forward state is
/// valid against one `(model, evaluation, prechar)` triple only.
#[derive(Default)]
pub(crate) struct BatchChunkScratch {
    draws: Vec<RunDraw>,
    te: Vec<Option<u64>>,
    /// In-chunk indices of in-run samples, sorted by `(T_e, index)`.
    order: Vec<u32>,
    lane_strikes: LaneStrikes,
    transient: BatchTransientScratch,
    strike_out: BatchStrikeOutcome,
    faulty_regs: Vec<GateId>,
    faulty_bits: Vec<MpuBit>,
    records: Vec<RunRecord>,
    ff: RtlFastForward,
    /// Per-worker unlocked mirror of the shared conclusion memo.
    front: ConclusionFront,
    /// Compiled-kernel buffers (used by [`run_chunk_compiled`] only).
    ctransient: CompiledTransientScratch,
    cstrike_out: CompiledStrikeOutcome,
    /// Wall-clock latency of each packed transient sweep — pure
    /// telemetry, harvested per chunk into the chunk partial.
    sweep_hist: LatencyHist,
}

impl BatchChunkScratch {
    /// Enable or disable the RTL fast-forward accelerations for this
    /// worker's resumes.
    pub(crate) fn set_fast_forward(&mut self, enabled: bool) {
        self.ff.set_enabled(enabled);
    }

    /// The fast-forward counters accumulated by chunks on this scratch.
    pub(crate) fn fast_forward_stats(&self) -> FastForwardStats {
        self.ff.stats()
    }

    /// `(front hits, shared-memo fallbacks)` of this worker's memo front.
    pub(crate) fn memo_front_stats(&self) -> (u64, u64) {
        self.front.contention_stats()
    }

    /// Drain the latency observations accumulated since the last call
    /// (kernel sweeps plus fast-forward positioning) into a shard the
    /// campaign engine attaches to the finished chunk's partial.
    pub(crate) fn take_latency(&mut self) -> LatencyShard {
        LatencyShard {
            kernel_sweep: std::mem::take(&mut self.sweep_hist),
            snapshot_restore: self.ff.take_restore_latency(),
            ..LatencyShard::default()
        }
    }
}

impl std::fmt::Debug for BatchChunkScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchChunkScratch").finish_non_exhaustive()
    }
}

#[cfg(test)]
impl BatchChunkScratch {
    /// Run `i` of the last executed chunk, as
    /// `(success, class, analytic, faulty_bits, weight)` — the per-run
    /// observables the lane-equivalence tests compare against the scalar
    /// engine.
    fn recorded(&self, i: usize) -> (bool, StrikeClass, bool, &[MpuBit], f64) {
        let r = &self.records[i];
        (r.success, r.class, r.analytic, &r.bits, self.draws[i].w)
    }
}

/// Phase 1 shared by both packed kernels: scalar draws identical to the
/// scalar engine, then stratification by injection cycle. Same-frame runs
/// share batches (fewer value groups per batch), and the `(T_e, index)`
/// sort key keeps the grouping a pure function of the chunk contents —
/// independent of threads and lane assignment.
fn draw_and_stratify(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    start: usize,
    end: usize,
    scratch: &mut BatchChunkScratch,
) {
    let m = end - start;
    scratch.draws.clear();
    scratch.te.clear();
    scratch.order.clear();
    if scratch.records.len() < m {
        scratch.records.resize_with(m, RunRecord::empty);
    }
    let golden_cycles = runner.eval.golden.cycles;
    for i in 0..m {
        let mut rng = SplitMix64::for_run(seed, (start + i) as u64);
        let sample = strategy.draw(&mut rng);
        let w = strategy.weight(&sample);
        let te = sample
            .injection_cycle(runner.eval.target_cycle)
            .filter(|&te| te < golden_cycles);
        match te {
            Some(_) => scratch.order.push(i as u32),
            None => {
                // Out-of-run: masked without a strike, like the scalar path.
                let rec = &mut scratch.records[i];
                rec.success = false;
                rec.class = StrikeClass::Masked;
                rec.analytic = false;
                rec.bits.clear();
                rec.pulses = 0;
            }
        }
        scratch.te.push(te);
        scratch.draws.push(RunDraw { sample, w, rng });
    }
    let te = &scratch.te;
    scratch
        .order
        .sort_unstable_by_key(|&i| (te[i as usize].unwrap(), i));
}

/// Execute runs `start..end` through the 64-lane batched kernel.
///
/// Produces the same [`ChunkPartial`] as the scalar
/// [`run_chunk`](crate::estimator) bit-for-bit: per-run samples, weights,
/// strike outcomes, hardening draws and the fold order are all identical;
/// only the transient propagation is shared across lanes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_chunk_batched(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    start: usize,
    end: usize,
    scratch: &mut BatchChunkScratch,
    cycles: &SharedCycleCache,
    memo: &SharedConclusionMemo,
    ctr: &mut CounterScratch,
    record_provenance: bool,
    sink: &TraceSink,
    tid: u32,
) -> ChunkPartial {
    ctr.begin_chunk();
    let m = end - start;
    let draw_span = sink.span_on(tid, "chunk", "draw");
    draw_and_stratify(runner, strategy, seed, start, end, scratch);
    drop(draw_span);

    // Phase 2 + 3: strike each batch in one packed pass, conclude per lane.
    let period = runner.model.transient.config().clock_period_ps;
    let netlist = runner.model.mpu.netlist();
    let mut kc = KernelCounters::default();
    for batch in scratch.order.chunks(LANES) {
        let strike_span = sink.span_on(tid, "chunk", "strike");
        scratch.lane_strikes.clear();
        for &ri in batch {
            let ri = ri as usize;
            // The second-spot entropy word comes off the run's own stream
            // here — the same stream position as the scalar engine, which
            // draws it right after the primary spot query and before the
            // hardening draws in `conclude_with`.
            let spot2 = runner
                .multi_fault
                .map(|mf| mf.second_spot(scratch.draws[ri].rng.next_u64()));
            scratch.lane_strikes.push_sample_with(
                &scratch.draws[ri].sample,
                spot2.as_ref(),
                &runner.model.placement,
                period,
            );
        }
        let mut groups: Vec<(u64, &CycleValues)> = Vec::new();
        let mut cur_te = scratch.te[batch[0] as usize].unwrap();
        let mut mask = 0u64;
        for (lane, &ri) in batch.iter().enumerate() {
            let te = scratch.te[ri as usize].unwrap();
            if te != cur_te {
                groups.push((mask, cycles.get(runner, cur_te)));
                cur_te = te;
                mask = 0;
            }
            mask |= 1u64 << lane;
        }
        groups.push((mask, cycles.get(runner, cur_te)));
        let lanes: Vec<BatchLane<'_>> = (0..batch.len())
            .map(|l| BatchLane {
                struck: scratch.lane_strikes.struck(l),
                strike_time_ps: scratch.lane_strikes.strike_time_ps(l),
            })
            .collect();
        let t_sweep = Instant::now();
        runner.model.transient.strike_batch_with(
            netlist,
            &groups,
            &lanes,
            &mut scratch.transient,
            &mut scratch.strike_out,
        );
        scratch.sweep_hist.record(t_sweep.elapsed().as_secs_f64());
        drop(lanes);
        kc.lane_batches += 1;
        kc.lanes_occupied += batch.len();
        kc.frame_groups += groups.len();
        kc.gates_visited += scratch.strike_out.gates_visited();
        drop(strike_span);

        let _conclude_span = sink.span_on(tid, "chunk", "conclude");
        for (lane, &ri) in batch.iter().enumerate() {
            let ri = ri as usize;
            let te = scratch.te[ri].unwrap();
            scratch
                .strike_out
                .faulty_registers_into(lane, &mut scratch.faulty_regs);
            scratch.faulty_bits.clear();
            scratch.faulty_bits.extend(
                scratch
                    .faulty_regs
                    .iter()
                    .filter_map(|&d| runner.model.mpu.bit_of(d)),
            );
            let view = runner.conclude_with(
                te,
                &mut scratch.draws[ri].rng,
                &mut scratch.faulty_bits,
                &mut scratch.ff,
                memo,
                Some(&mut scratch.front),
            );
            let rec = &mut scratch.records[ri];
            rec.success = view.success;
            rec.class = view.class;
            rec.analytic = view.analytic;
            rec.bits.clear();
            rec.bits.extend_from_slice(view.faulty_bits);
            rec.pulses = scratch.strike_out.pulses_propagated(lane);
        }
    }

    // Fold in run-index order: the Welford push sequence — and the counter
    // fold — must match the scalar engine exactly.
    let _fold_span = sink.span_on(tid, "chunk", "fold");
    fold_records(scratch, ctr, start, m, kc, record_provenance)
}

/// Fold the chunk's buffered records into a partial, in run-index order.
fn fold_records(
    scratch: &mut BatchChunkScratch,
    ctr: &mut CounterScratch,
    start: usize,
    m: usize,
    kc: KernelCounters,
    record_provenance: bool,
) -> ChunkPartial {
    let mut p = ChunkPartial {
        level: crate::multilevel::LEVEL_GATE,
        kernel_counters: kc,
        ..ChunkPartial::default()
    };
    for i in 0..m {
        let rec = &scratch.records[i];
        fold_run(
            &mut p,
            ctr,
            RunObs {
                run_index: (start + i) as u64,
                sample: &scratch.draws[i].sample,
                te: scratch.te[i],
                pulses: rec.pulses,
                class: rec.class,
                analytic: rec.analytic,
                success: rec.success,
                w: scratch.draws[i].w,
                faulty_bits: &rec.bits,
            },
            record_provenance,
        );
    }
    p
}

/// Execute runs `start..end` through the 256-wide compiled-program kernel.
///
/// Identical phase structure to [`run_chunk_batched`], but the strike
/// phase packs up to [`WIDE_LANES`] runs per sweep of the netlist's
/// levelized [`GateProgram`](xlmc_netlist::GateProgram) — a straight-line
/// opcode loop over flat arrays instead of per-cell worklist dispatch.
/// Per-run results, counters and the fold order are bit-identical to both
/// other kernels.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_chunk_compiled(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    start: usize,
    end: usize,
    scratch: &mut BatchChunkScratch,
    cycles: &SharedCycleCache,
    memo: &SharedConclusionMemo,
    ctr: &mut CounterScratch,
    record_provenance: bool,
    sink: &TraceSink,
    tid: u32,
) -> ChunkPartial {
    ctr.begin_chunk();
    let m = end - start;
    let draw_span = sink.span_on(tid, "chunk", "draw");
    draw_and_stratify(runner, strategy, seed, start, end, scratch);
    drop(draw_span);

    let period = runner.model.transient.config().clock_period_ps;
    let netlist = runner.model.mpu.netlist();
    let program = netlist
        .program()
        .expect("model netlist was levelized at construction");
    let mut kc = KernelCounters::default();
    for batch in scratch.order.chunks(WIDE_LANES) {
        let strike_span = sink.span_on(tid, "chunk", "strike");
        scratch.lane_strikes.clear();
        for &ri in batch {
            let ri = ri as usize;
            // The second-spot entropy word comes off the run's own stream
            // here — the same stream position as the scalar engine, which
            // draws it right after the primary spot query and before the
            // hardening draws in `conclude_with`.
            let spot2 = runner
                .multi_fault
                .map(|mf| mf.second_spot(scratch.draws[ri].rng.next_u64()));
            scratch.lane_strikes.push_sample_with(
                &scratch.draws[ri].sample,
                spot2.as_ref(),
                &runner.model.placement,
                period,
            );
        }
        // Consecutive-`T_e` lane groups as 256-wide masks (the stratify
        // sort made equal cycles contiguous).
        let mut groups: Vec<(WideMask, &CycleValues)> = Vec::new();
        let mut cur_te = scratch.te[batch[0] as usize].unwrap();
        let mut mask: WideMask = [0; 4];
        for (lane, &ri) in batch.iter().enumerate() {
            let te = scratch.te[ri as usize].unwrap();
            if te != cur_te {
                groups.push((mask, cycles.get(runner, cur_te)));
                cur_te = te;
                mask = [0; 4];
            }
            mask[lane / 64] |= 1u64 << (lane % 64);
        }
        groups.push((mask, cycles.get(runner, cur_te)));
        let lanes: Vec<BatchLane<'_>> = (0..batch.len())
            .map(|l| BatchLane {
                struck: scratch.lane_strikes.struck(l),
                strike_time_ps: scratch.lane_strikes.strike_time_ps(l),
            })
            .collect();
        let t_sweep = Instant::now();
        runner.model.transient.strike_compiled_with(
            netlist,
            program,
            &groups,
            &lanes,
            &mut scratch.ctransient,
            &mut scratch.cstrike_out,
        );
        scratch.sweep_hist.record(t_sweep.elapsed().as_secs_f64());
        drop(lanes);
        kc.lane_batches += 1;
        kc.lanes_occupied += batch.len();
        kc.frame_groups += groups.len();
        kc.gates_visited += scratch.cstrike_out.gates_visited();
        drop(strike_span);

        let _conclude_span = sink.span_on(tid, "chunk", "conclude");
        for (lane, &ri) in batch.iter().enumerate() {
            let ri = ri as usize;
            let te = scratch.te[ri].unwrap();
            scratch
                .cstrike_out
                .faulty_registers_into(lane, &mut scratch.faulty_regs);
            scratch.faulty_bits.clear();
            scratch.faulty_bits.extend(
                scratch
                    .faulty_regs
                    .iter()
                    .filter_map(|&d| runner.model.mpu.bit_of(d)),
            );
            let view = runner.conclude_with(
                te,
                &mut scratch.draws[ri].rng,
                &mut scratch.faulty_bits,
                &mut scratch.ff,
                memo,
                Some(&mut scratch.front),
            );
            let rec = &mut scratch.records[ri];
            rec.success = view.success;
            rec.class = view.class;
            rec.analytic = view.analytic;
            rec.bits.clear();
            rec.bits.extend_from_slice(view.faulty_bits);
            rec.pulses = scratch.cstrike_out.pulses_propagated(lane);
        }
    }

    // Fold in run-index order, exactly like the other kernels.
    let _fold_span = sink.span_on(tid, "chunk", "fold");
    fold_records(scratch, ctr, start, m, kc, record_provenance)
}

/// One gate-level-path measurement: the strike phase alone — stratified
/// lane batches through the selected kernel — with the draw, conclude and
/// fold phases (which are kernel-invariant) excluded. This is what the
/// compiled-kernel speedup claim is about; end-to-end campaign throughput
/// dilutes it with per-run scalar work every kernel pays identically.
#[derive(Debug, Clone, Copy)]
pub struct GatePathBench {
    /// In-run lanes struck per pass over the drawn set.
    pub lanes: usize,
    /// Kernel sweeps per pass.
    pub sweeps: usize,
    /// Wall time of the fastest timed pass.
    pub best_pass_s: f64,
    /// Checksum: pulses propagated in one pass (kernel-invariant).
    pub pulses: u64,
    /// Checksum: faulty registers of one pass, summed over `id + 1`
    /// (kernel-invariant; latched and upset DFFs both count).
    pub faulty: u64,
}

impl GatePathBench {
    /// Strike-kernel throughput in lanes (runs) per second.
    pub fn lanes_per_sec(&self) -> f64 {
        self.lanes as f64 / self.best_pass_s
    }
}

/// Benchmark the gate-level path of `kernel`: draw and stratify `runs`
/// samples once (seeded exactly like a campaign chunk), warm the shared
/// cycle-value cache and the kernel scratch with one untimed pass, then
/// time `passes` strike-only passes and keep the fastest (interference on
/// a shared host only ever slows a pass down).
pub fn gate_path_bench(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    runs: usize,
    seed: u64,
    kernel: CampaignKernel,
    passes: usize,
) -> GatePathBench {
    let mut scratch = BatchChunkScratch::default();
    draw_and_stratify(runner, strategy, seed, 0, runs, &mut scratch);
    let cycles = SharedCycleCache::new(runner.eval.golden.cycles);
    for &ri in &scratch.order {
        cycles.get(runner, scratch.te[ri as usize].unwrap());
    }

    let period = runner.model.transient.config().clock_period_ps;
    let netlist = runner.model.mpu.netlist();
    let mut stransient = TransientScratch::default();
    let mut sout = StrikeOutcome::default();
    let mut faulty_regs: Vec<GateId> = Vec::new();
    let mut bench = GatePathBench {
        lanes: scratch.order.len(),
        sweeps: 0,
        best_pass_s: f64::INFINITY,
        pulses: 0,
        faulty: 0,
    };

    let mut pass = |scratch: &mut BatchChunkScratch, checksum: Option<&mut GatePathBench>| {
        let mut sweeps = 0usize;
        let mut pulses = 0u64;
        let mut faulty = 0u64;
        match kernel {
            CampaignKernel::Scalar => {
                for &ri in &scratch.order {
                    let ri = ri as usize;
                    let te = scratch.te[ri].unwrap();
                    scratch.lane_strikes.clear();
                    scratch.lane_strikes.push_sample(
                        &scratch.draws[ri].sample,
                        &runner.model.placement,
                        period,
                    );
                    runner.model.transient.strike_with(
                        netlist,
                        cycles.get(runner, te),
                        scratch.lane_strikes.struck(0),
                        scratch.lane_strikes.strike_time_ps(0),
                        &mut stransient,
                        &mut sout,
                    );
                    sweeps += 1;
                    pulses += sout.pulses_propagated as u64;
                    sout.faulty_registers_into(&mut faulty_regs);
                    faulty += faulty_regs
                        .iter()
                        .map(|g| g.index() as u64 + 1)
                        .sum::<u64>();
                }
            }
            CampaignKernel::Batched => {
                for batch in scratch.order.chunks(LANES) {
                    scratch.lane_strikes.clear();
                    for &ri in batch {
                        scratch.lane_strikes.push_sample(
                            &scratch.draws[ri as usize].sample,
                            &runner.model.placement,
                            period,
                        );
                    }
                    let mut groups: Vec<(u64, &CycleValues)> = Vec::new();
                    let mut cur_te = scratch.te[batch[0] as usize].unwrap();
                    let mut mask = 0u64;
                    for (lane, &ri) in batch.iter().enumerate() {
                        let te = scratch.te[ri as usize].unwrap();
                        if te != cur_te {
                            groups.push((mask, cycles.get(runner, cur_te)));
                            cur_te = te;
                            mask = 0;
                        }
                        mask |= 1u64 << lane;
                    }
                    groups.push((mask, cycles.get(runner, cur_te)));
                    let lanes: Vec<BatchLane<'_>> = (0..batch.len())
                        .map(|l| BatchLane {
                            struck: scratch.lane_strikes.struck(l),
                            strike_time_ps: scratch.lane_strikes.strike_time_ps(l),
                        })
                        .collect();
                    runner.model.transient.strike_batch_with(
                        netlist,
                        &groups,
                        &lanes,
                        &mut scratch.transient,
                        &mut scratch.strike_out,
                    );
                    drop(lanes);
                    sweeps += 1;
                    for lane in 0..batch.len() {
                        pulses += scratch.strike_out.pulses_propagated(lane) as u64;
                        scratch
                            .strike_out
                            .faulty_registers_into(lane, &mut faulty_regs);
                        faulty += faulty_regs
                            .iter()
                            .map(|g| g.index() as u64 + 1)
                            .sum::<u64>();
                    }
                }
            }
            CampaignKernel::Compiled => {
                let program = netlist
                    .program()
                    .expect("model netlist was levelized at construction");
                for batch in scratch.order.chunks(WIDE_LANES) {
                    scratch.lane_strikes.clear();
                    for &ri in batch {
                        scratch.lane_strikes.push_sample(
                            &scratch.draws[ri as usize].sample,
                            &runner.model.placement,
                            period,
                        );
                    }
                    let mut groups: Vec<(WideMask, &CycleValues)> = Vec::new();
                    let mut cur_te = scratch.te[batch[0] as usize].unwrap();
                    let mut mask: WideMask = [0; 4];
                    for (lane, &ri) in batch.iter().enumerate() {
                        let te = scratch.te[ri as usize].unwrap();
                        if te != cur_te {
                            groups.push((mask, cycles.get(runner, cur_te)));
                            cur_te = te;
                            mask = [0; 4];
                        }
                        mask[lane / 64] |= 1u64 << (lane % 64);
                    }
                    groups.push((mask, cycles.get(runner, cur_te)));
                    let lanes: Vec<BatchLane<'_>> = (0..batch.len())
                        .map(|l| BatchLane {
                            struck: scratch.lane_strikes.struck(l),
                            strike_time_ps: scratch.lane_strikes.strike_time_ps(l),
                        })
                        .collect();
                    runner.model.transient.strike_compiled_with(
                        netlist,
                        program,
                        &groups,
                        &lanes,
                        &mut scratch.ctransient,
                        &mut scratch.cstrike_out,
                    );
                    drop(lanes);
                    sweeps += 1;
                    for lane in 0..batch.len() {
                        pulses += scratch.cstrike_out.pulses_propagated(lane) as u64;
                        scratch
                            .cstrike_out
                            .faulty_registers_into(lane, &mut faulty_regs);
                        faulty += faulty_regs
                            .iter()
                            .map(|g| g.index() as u64 + 1)
                            .sum::<u64>();
                    }
                }
            }
        }
        if let Some(b) = checksum {
            b.sweeps = sweeps;
            b.pulses = pulses;
            b.faulty = faulty;
        }
    };

    // Untimed warmup: sizes every scratch buffer and fills the checksums.
    pass(&mut scratch, Some(&mut bench));
    for _ in 0..passes {
        let start = Instant::now();
        pass(&mut scratch, None);
        bench.best_pass_s = bench.best_pass_s.min(start.elapsed().as_secs_f64());
    }
    bench
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowScratch;
    use crate::harden::{HardenedSet, HardenedVariant, HardeningModel};
    use crate::model::{Evaluation, SystemModel};
    use crate::precharacterize::Precharacterization;
    use crate::sampling::{
        baseline_distribution, ConeSampling, ExperimentConfig, ImportanceSampling, RandomSampling,
    };
    use xlmc_soc::workloads;

    struct Fixture {
        model: SystemModel,
        eval: Evaluation,
        prechar: Precharacterization,
        cfg: ExperimentConfig,
    }

    fn fixture() -> Fixture {
        let model = SystemModel::with_defaults().unwrap();
        let eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let cfg = ExperimentConfig {
            t_max: 20,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            eval,
            prechar,
            cfg,
        }
    }

    fn strategies(f: &Fixture) -> Vec<Box<dyn SamplingStrategy>> {
        let fd = baseline_distribution(&f.model, &f.cfg);
        vec![
            Box::new(RandomSampling::new(fd.clone())),
            Box::new(ConeSampling::new(
                fd.clone(),
                &f.prechar,
                f.cfg.radius_options.clone(),
            )),
            Box::new(ImportanceSampling::new(
                fd,
                &f.model,
                &f.prechar,
                f.cfg.alpha,
                f.cfg.beta,
                f.cfg.radius_options.clone(),
            )),
        ]
    }

    /// The lane-equivalence property at system level: for every run of a
    /// full chunk, the batched kernel's (outcome, weight) is bit-identical
    /// to the scalar engine's — across all three sampling strategies, with
    /// and without the randomized hardening countermeasure (which exercises
    /// the per-lane RNG hand-off).
    #[test]
    fn batched_chunk_runs_match_scalar_runs() {
        let f = fixture();
        let hardened = HardenedVariant::Uniform(HardenedSet::new(
            [xlmc_soc::MpuBit::Violation, xlmc_soc::MpuBit::Enable],
            HardeningModel::default(),
        ));
        for hardening in [None, Some(&hardened)] {
            let runner = FaultRunner {
                model: &f.model,
                eval: &f.eval,
                prechar: &f.prechar,
                hardening,
                multi_fault: None,
            };
            for strat in strategies(&f) {
                for seed in [3u64, 77] {
                    let n = 200;
                    let cache = SharedCycleCache::new(runner.eval.golden.cycles);
                    let memo = SharedConclusionMemo::default();
                    let mut bscratch = BatchChunkScratch::default();
                    let mut ctr = CounterScratch::default();
                    let sink = TraceSink::disabled();
                    run_chunk_batched(
                        &runner,
                        strat.as_ref(),
                        seed,
                        0,
                        n,
                        &mut bscratch,
                        &cache,
                        &memo,
                        &mut ctr,
                        false,
                        &sink,
                        0,
                    );

                    let mut flow = FlowScratch::default();
                    for i in 0..n {
                        let mut rng = SplitMix64::for_run(seed, i as u64);
                        let sample = strat.draw(&mut rng);
                        let w = strat.weight(&sample);
                        let out = runner.run_with(&sample, &mut rng, &mut flow);
                        let (bs, bc, ba, bbits, bw) = bscratch.recorded(i);
                        let ctx = format!(
                            "strategy {} seed {seed} run {i} hardened {}",
                            strat.name(),
                            hardening.is_some()
                        );
                        assert_eq!(bs, out.success, "{ctx}");
                        assert_eq!(bc, out.class, "{ctx}");
                        assert_eq!(ba, out.analytic, "{ctx}");
                        assert_eq!(bbits, out.faulty_bits, "{ctx}");
                        assert!(bw == w, "{ctx}: weight {bw} != {w}");
                    }
                }
            }
        }
    }

    /// The batched partial equals the scalar partial field by field (the
    /// stats fold is the bit-identical aggregate of the per-run check
    /// above — this pins the fold order too).
    #[test]
    fn batched_partial_matches_scalar_partial() {
        let f = fixture();
        let runner = FaultRunner {
            model: &f.model,
            eval: &f.eval,
            prechar: &f.prechar,
            hardening: None,
            multi_fault: None,
        };
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let cache = SharedCycleCache::new(runner.eval.golden.cycles);
        let memo = SharedConclusionMemo::default();
        let mut bscratch = BatchChunkScratch::default();
        let mut flow = FlowScratch::default();
        let mut ctr = CounterScratch::default();
        let sink = TraceSink::disabled();
        // Also covers partial batches: 1, 63, 64, 65 runs.
        for (start, len) in [(0usize, 1usize), (1, 63), (64, 64), (128, 65), (193, 128)] {
            let b = run_chunk_batched(
                &runner,
                &strat,
                9,
                start,
                start + len,
                &mut bscratch,
                &cache,
                &memo,
                &mut ctr,
                false,
                &sink,
                0,
            );
            let s = crate::estimator::scalar_chunk_for_tests(
                &runner,
                &strat,
                9,
                start,
                start + len,
                &mut flow,
            );
            assert_eq!(b.stats.count(), s.stats.count(), "len {len}");
            assert!(b.stats.mean() == s.stats.mean(), "len {len} mean");
            assert!(b.stats.variance() == s.stats.variance(), "len {len} var");
            assert_eq!(b.class_counts, s.class_counts, "len {len}");
            assert_eq!(b.analytic_runs, s.analytic_runs, "len {len}");
            assert_eq!(b.rtl_runs, s.rtl_runs, "len {len}");
            assert_eq!(b.successes, s.successes, "len {len}");
            assert_eq!(b.attribution, s.attribution, "len {len}");
            // The chunk-local counter model is kernel-invariant too.
            assert_eq!(b.counters, s.counters, "len {len}");
            assert_eq!(b.first_success, s.first_success, "len {len}");
        }
    }

    /// The 256-wide compiled kernel reproduces the scalar engine run by
    /// run on *all five* attack workloads (each exercises a different
    /// target register cone), with and without hardening.
    #[test]
    fn compiled_chunk_runs_match_scalar_runs_across_workloads() {
        let model = SystemModel::with_defaults().unwrap();
        let cfg = ExperimentConfig {
            t_max: 20,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        let hardened = HardenedVariant::Uniform(HardenedSet::new(
            [xlmc_soc::MpuBit::Violation, xlmc_soc::MpuBit::Enable],
            HardeningModel::default(),
        ));
        for workload in [
            workloads::illegal_write(),
            workloads::illegal_read(),
            workloads::dma_exfiltration(),
            workloads::trap_escalation(),
            workloads::instruction_skip(),
        ] {
            let eval = Evaluation::new(workload).unwrap();
            for hardening in [None, Some(&hardened)] {
                let runner = FaultRunner {
                    model: &model,
                    eval: &eval,
                    prechar: &prechar,
                    hardening,
                    multi_fault: None,
                };
                let strat = RandomSampling::new(baseline_distribution(&model, &cfg));
                let seed = 41u64;
                // 300 runs crosses the 256-lane boundary.
                let n = 300;
                let cache = SharedCycleCache::new(runner.eval.golden.cycles);
                let memo = SharedConclusionMemo::default();
                let mut cscratch = BatchChunkScratch::default();
                let mut ctr = CounterScratch::default();
                let sink = TraceSink::disabled();
                run_chunk_compiled(
                    &runner,
                    &strat,
                    seed,
                    0,
                    n,
                    &mut cscratch,
                    &cache,
                    &memo,
                    &mut ctr,
                    false,
                    &sink,
                    0,
                );
                let mut flow = FlowScratch::default();
                for i in 0..n {
                    let mut rng = SplitMix64::for_run(seed, i as u64);
                    let sample = strat.draw(&mut rng);
                    let w = strat.weight(&sample);
                    let out = runner.run_with(&sample, &mut rng, &mut flow);
                    let (cs, cc, ca, cbits, cw) = cscratch.recorded(i);
                    let ctx = format!(
                        "workload {} run {i} hardened {}",
                        runner.eval.workload.name,
                        hardening.is_some()
                    );
                    assert_eq!(cs, out.success, "{ctx}");
                    assert_eq!(cc, out.class, "{ctx}");
                    assert_eq!(ca, out.analytic, "{ctx}");
                    assert_eq!(cbits, out.faulty_bits, "{ctx}");
                    assert!(cw == w, "{ctx}: weight {cw} != {w}");
                }
            }
        }
    }

    /// Under the double-glitch mode both packed kernels still reproduce
    /// the scalar engine run by run: the second-spot entropy word is drawn
    /// at the same per-run stream position in all three kernels, so lane
    /// packing never perturbs the second strike (or the hardening draws
    /// that follow it on the same stream).
    #[test]
    fn kernels_match_scalar_under_double_glitch() {
        let f = fixture();
        let fd = baseline_distribution(&f.model, &f.cfg);
        let glitch = xlmc_fault::DoubleGlitch::new(fd.spatial.clone(), fd.radius.clone());
        let hardened = HardenedVariant::Uniform(HardenedSet::new(
            [xlmc_soc::MpuBit::Violation, xlmc_soc::MpuBit::Enable],
            HardeningModel::default(),
        ));
        for hardening in [None, Some(&hardened)] {
            let runner = FaultRunner {
                model: &f.model,
                eval: &f.eval,
                prechar: &f.prechar,
                hardening,
                multi_fault: Some(&glitch),
            };
            let strat = RandomSampling::new(fd.clone());
            let seed = 23u64;
            let n = 300;
            for compiled in [false, true] {
                let cache = SharedCycleCache::new(runner.eval.golden.cycles);
                let memo = SharedConclusionMemo::default();
                let mut scratch = BatchChunkScratch::default();
                let mut ctr = CounterScratch::default();
                let sink = TraceSink::disabled();
                if compiled {
                    run_chunk_compiled(
                        &runner,
                        &strat,
                        seed,
                        0,
                        n,
                        &mut scratch,
                        &cache,
                        &memo,
                        &mut ctr,
                        false,
                        &sink,
                        0,
                    );
                } else {
                    run_chunk_batched(
                        &runner,
                        &strat,
                        seed,
                        0,
                        n,
                        &mut scratch,
                        &cache,
                        &memo,
                        &mut ctr,
                        false,
                        &sink,
                        0,
                    );
                }
                let mut flow = FlowScratch::default();
                for i in 0..n {
                    let mut rng = SplitMix64::for_run(seed, i as u64);
                    let sample = strat.draw(&mut rng);
                    let w = strat.weight(&sample);
                    let out = runner.run_with(&sample, &mut rng, &mut flow);
                    let (bs, bc, ba, bbits, bw) = scratch.recorded(i);
                    let ctx = format!(
                        "compiled={compiled} hardened={} run {i}",
                        hardening.is_some()
                    );
                    assert_eq!(bs, out.success, "{ctx}");
                    assert_eq!(bc, out.class, "{ctx}");
                    assert_eq!(ba, out.analytic, "{ctx}");
                    assert_eq!(bbits, out.faulty_bits, "{ctx}");
                    assert!(bw == w, "{ctx}: weight {bw} != {w}");
                }
            }
        }
    }

    /// The compiled partial equals the scalar partial field by field at
    /// every 256-lane tail shape (1/63/64/65/255/256/257).
    #[test]
    fn compiled_partial_matches_scalar_partial() {
        let f = fixture();
        let runner = FaultRunner {
            model: &f.model,
            eval: &f.eval,
            prechar: &f.prechar,
            hardening: None,
            multi_fault: None,
        };
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let cache = SharedCycleCache::new(runner.eval.golden.cycles);
        let memo = SharedConclusionMemo::default();
        let mut cscratch = BatchChunkScratch::default();
        let mut flow = FlowScratch::default();
        let mut ctr = CounterScratch::default();
        let sink = TraceSink::disabled();
        for (start, len) in [
            (0usize, 1usize),
            (1, 63),
            (64, 64),
            (128, 65),
            (0, 255),
            (7, 256),
            (11, 257),
        ] {
            let c = run_chunk_compiled(
                &runner,
                &strat,
                9,
                start,
                start + len,
                &mut cscratch,
                &cache,
                &memo,
                &mut ctr,
                false,
                &sink,
                0,
            );
            let s = crate::estimator::scalar_chunk_for_tests(
                &runner,
                &strat,
                9,
                start,
                start + len,
                &mut flow,
            );
            assert_eq!(c.stats.count(), s.stats.count(), "len {len}");
            assert!(c.stats.mean() == s.stats.mean(), "len {len} mean");
            assert!(c.stats.variance() == s.stats.variance(), "len {len} var");
            assert_eq!(c.class_counts, s.class_counts, "len {len}");
            assert_eq!(c.analytic_runs, s.analytic_runs, "len {len}");
            assert_eq!(c.rtl_runs, s.rtl_runs, "len {len}");
            assert_eq!(c.successes, s.successes, "len {len}");
            assert_eq!(c.attribution, s.attribution, "len {len}");
            assert_eq!(c.counters, s.counters, "len {len}");
            assert_eq!(c.first_success, s.first_success, "len {len}");
        }
    }
}
