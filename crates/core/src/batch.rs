//! Batched campaign chunk execution over the 64-lane transient kernel.
//!
//! One chunk of runs is executed in three phases:
//!
//! 1. **Draw** (scalar): each run's sample, weight and RNG come from
//!    `SplitMix64::for_run(seed, run_index)` exactly as in the scalar
//!    engine — batching never touches the per-run random streams.
//! 2. **Strike** (packed): in-run samples are stratified by injection
//!    cycle (sorted by `(T_e, run_index)` so runs sharing a frame land in
//!    the same lane batch), grouped into batches of up to
//!    [`LANES`](xlmc_gatesim::LANES) lanes, and propagated through
//!    [`TransientSim::strike_batch_with`](xlmc_gatesim::transient::TransientSim)
//!    in one worklist pass per batch.
//! 3. **Conclude + fold** (scalar): each lane's latched pattern goes
//!    through the unchanged hardening/classification/resume pipeline with
//!    its own RNG, and the per-run results are folded into the chunk
//!    partial **in run-index order**, so the Welford/Chan statistics are
//!    bit-identical to the scalar engine's at any thread count and any
//!    lane assignment.

use std::sync::OnceLock;

use xlmc_fault::{AttackSample, LaneStrikes};
use xlmc_gatesim::{BatchLane, BatchStrikeOutcome, BatchTransientScratch, CycleValues, LANES};
use xlmc_netlist::GateId;
use xlmc_soc::MpuBit;

use crate::estimator::{fold_run, ChunkPartial, RunObs};
use crate::fastforward::{FastForwardStats, RtlFastForward, SharedConclusionMemo};
use crate::flow::{FaultRunner, StrikeClass};
use crate::rng::SplitMix64;
use crate::sampling::SamplingStrategy;
use crate::trace::{CounterScratch, KernelCounters, TraceSink};

/// Campaign-wide memo of the per-cycle stable netlist values.
///
/// The injection-cycle values are a pure function of `T_e` on the golden
/// run, so every worker shares one lazily-filled slot per cycle instead of
/// re-deriving its own copy — the duplicated per-worker warmup was the
/// main multi-thread overhead of the scalar engine.
pub(crate) struct SharedCycleCache {
    slots: Vec<OnceLock<CycleValues>>,
}

impl SharedCycleCache {
    /// An empty cache covering `cycles` golden cycles.
    pub(crate) fn new(cycles: u64) -> Self {
        Self {
            slots: (0..cycles).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The stable values of injection cycle `te` (computed once per
    /// campaign, whichever worker gets there first).
    fn get<'c>(&'c self, runner: &FaultRunner<'_>, te: u64) -> &'c CycleValues {
        self.slots[te as usize].get_or_init(|| {
            let golden = &runner.eval.golden;
            let netlist = runner.model.mpu.netlist();
            let mut state = Vec::new();
            let mut inputs = Vec::new();
            runner
                .model
                .mpu
                .state_vector_into(&golden.mpu_states[te as usize], &mut state);
            let stim = &golden.stimulus[te as usize];
            runner
                .model
                .mpu
                .input_values_into(stim.request, stim.cfg_write, &mut inputs);
            let mut cv = CycleValues::default();
            runner
                .model
                .cycle_sim
                .eval_into(netlist, &state, &inputs, &mut cv);
            cv
        })
    }
}

/// One run's scalar-phase products: the drawn sample, its importance
/// weight, and the RNG state *after* the draw (the only later consumer is
/// the hardening filter, which runs lane-by-lane in the conclude phase).
struct RunDraw {
    sample: AttackSample,
    w: f64,
    rng: SplitMix64,
}

/// One run's concluded outcome, buffered until the run-order fold.
struct RunRecord {
    success: bool,
    class: StrikeClass,
    analytic: bool,
    bits: Vec<MpuBit>,
    pulses: usize,
}

impl RunRecord {
    fn empty() -> Self {
        Self {
            success: false,
            class: StrikeClass::Masked,
            analytic: false,
            bits: Vec::new(),
            pulses: 0,
        }
    }
}

/// Reusable per-worker buffers for [`run_chunk_batched`]. Like
/// [`FlowScratch`](crate::flow::FlowScratch), the RTL fast-forward state is
/// valid against one `(model, evaluation, prechar)` triple only.
#[derive(Default)]
pub(crate) struct BatchChunkScratch {
    draws: Vec<RunDraw>,
    te: Vec<Option<u64>>,
    /// In-chunk indices of in-run samples, sorted by `(T_e, index)`.
    order: Vec<u32>,
    lane_strikes: LaneStrikes,
    transient: BatchTransientScratch,
    strike_out: BatchStrikeOutcome,
    faulty_regs: Vec<GateId>,
    faulty_bits: Vec<MpuBit>,
    records: Vec<RunRecord>,
    ff: RtlFastForward,
}

impl BatchChunkScratch {
    /// Enable or disable the RTL fast-forward accelerations for this
    /// worker's resumes.
    pub(crate) fn set_fast_forward(&mut self, enabled: bool) {
        self.ff.set_enabled(enabled);
    }

    /// The fast-forward counters accumulated by chunks on this scratch.
    pub(crate) fn fast_forward_stats(&self) -> FastForwardStats {
        self.ff.stats()
    }
}

impl std::fmt::Debug for BatchChunkScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchChunkScratch").finish_non_exhaustive()
    }
}

#[cfg(test)]
impl BatchChunkScratch {
    /// Run `i` of the last executed chunk, as
    /// `(success, class, analytic, faulty_bits, weight)` — the per-run
    /// observables the lane-equivalence tests compare against the scalar
    /// engine.
    fn recorded(&self, i: usize) -> (bool, StrikeClass, bool, &[MpuBit], f64) {
        let r = &self.records[i];
        (r.success, r.class, r.analytic, &r.bits, self.draws[i].w)
    }
}

/// Execute runs `start..end` through the 64-lane batched kernel.
///
/// Produces the same [`ChunkPartial`] as the scalar
/// [`run_chunk`](crate::estimator) bit-for-bit: per-run samples, weights,
/// strike outcomes, hardening draws and the fold order are all identical;
/// only the transient propagation is shared across lanes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_chunk_batched(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    start: usize,
    end: usize,
    scratch: &mut BatchChunkScratch,
    cycles: &SharedCycleCache,
    memo: &SharedConclusionMemo,
    ctr: &mut CounterScratch,
    record_provenance: bool,
    sink: &TraceSink,
    tid: u32,
) -> ChunkPartial {
    ctr.begin_chunk();
    let m = end - start;
    scratch.draws.clear();
    scratch.te.clear();
    scratch.order.clear();
    if scratch.records.len() < m {
        scratch.records.resize_with(m, RunRecord::empty);
    }

    // Phase 1: scalar draws, identical to the scalar engine.
    let draw_span = sink.span_on(tid, "chunk", "draw");
    let golden_cycles = runner.eval.golden.cycles;
    for i in 0..m {
        let mut rng = SplitMix64::for_run(seed, (start + i) as u64);
        let sample = strategy.draw(&mut rng);
        let w = strategy.weight(&sample);
        let te = sample
            .injection_cycle(runner.eval.target_cycle)
            .filter(|&te| te < golden_cycles);
        match te {
            Some(_) => scratch.order.push(i as u32),
            None => {
                // Out-of-run: masked without a strike, like the scalar path.
                let rec = &mut scratch.records[i];
                rec.success = false;
                rec.class = StrikeClass::Masked;
                rec.analytic = false;
                rec.bits.clear();
                rec.pulses = 0;
            }
        }
        scratch.te.push(te);
        scratch.draws.push(RunDraw { sample, w, rng });
    }
    drop(draw_span);

    // Stratify: same-frame runs share batches (fewer value groups per
    // batch), and the `(T_e, index)` key keeps the grouping a pure function
    // of the chunk contents — independent of threads and lane assignment.
    {
        let te = &scratch.te;
        scratch
            .order
            .sort_unstable_by_key(|&i| (te[i as usize].unwrap(), i));
    }

    // Phase 2 + 3: strike each batch in one packed pass, conclude per lane.
    let period = runner.model.transient.config().clock_period_ps;
    let netlist = runner.model.mpu.netlist();
    let mut kc = KernelCounters::default();
    for batch in scratch.order.chunks(LANES) {
        let strike_span = sink.span_on(tid, "chunk", "strike");
        scratch.lane_strikes.clear();
        for &ri in batch {
            scratch.lane_strikes.push_sample(
                &scratch.draws[ri as usize].sample,
                &runner.model.placement,
                period,
            );
        }
        let mut groups: Vec<(u64, &CycleValues)> = Vec::new();
        let mut cur_te = scratch.te[batch[0] as usize].unwrap();
        let mut mask = 0u64;
        for (lane, &ri) in batch.iter().enumerate() {
            let te = scratch.te[ri as usize].unwrap();
            if te != cur_te {
                groups.push((mask, cycles.get(runner, cur_te)));
                cur_te = te;
                mask = 0;
            }
            mask |= 1u64 << lane;
        }
        groups.push((mask, cycles.get(runner, cur_te)));
        let lanes: Vec<BatchLane<'_>> = (0..batch.len())
            .map(|l| BatchLane {
                struck: scratch.lane_strikes.struck(l),
                strike_time_ps: scratch.lane_strikes.strike_time_ps(l),
            })
            .collect();
        runner.model.transient.strike_batch_with(
            netlist,
            &groups,
            &lanes,
            &mut scratch.transient,
            &mut scratch.strike_out,
        );
        drop(lanes);
        kc.lane_batches += 1;
        kc.lanes_occupied += batch.len();
        kc.frame_groups += groups.len();
        kc.gates_visited += scratch.strike_out.gates_visited();
        drop(strike_span);

        let _conclude_span = sink.span_on(tid, "chunk", "conclude");
        for (lane, &ri) in batch.iter().enumerate() {
            let ri = ri as usize;
            let te = scratch.te[ri].unwrap();
            scratch
                .strike_out
                .faulty_registers_into(lane, &mut scratch.faulty_regs);
            scratch.faulty_bits.clear();
            scratch.faulty_bits.extend(
                scratch
                    .faulty_regs
                    .iter()
                    .filter_map(|&d| runner.model.mpu.bit_of(d)),
            );
            let view = runner.conclude_with(
                te,
                &mut scratch.draws[ri].rng,
                &mut scratch.faulty_bits,
                &mut scratch.ff,
                memo,
            );
            let rec = &mut scratch.records[ri];
            rec.success = view.success;
            rec.class = view.class;
            rec.analytic = view.analytic;
            rec.bits.clear();
            rec.bits.extend_from_slice(view.faulty_bits);
            rec.pulses = scratch.strike_out.pulses_propagated(lane);
        }
    }

    // Fold in run-index order: the Welford push sequence — and the counter
    // fold — must match the scalar engine exactly.
    let _fold_span = sink.span_on(tid, "chunk", "fold");
    let mut p = ChunkPartial {
        kernel_counters: kc,
        ..ChunkPartial::default()
    };
    for i in 0..m {
        let rec = &scratch.records[i];
        fold_run(
            &mut p,
            ctr,
            RunObs {
                run_index: (start + i) as u64,
                sample: &scratch.draws[i].sample,
                te: scratch.te[i],
                pulses: rec.pulses,
                class: rec.class,
                analytic: rec.analytic,
                success: rec.success,
                w: scratch.draws[i].w,
                faulty_bits: &rec.bits,
            },
            record_provenance,
        );
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowScratch;
    use crate::harden::{HardenedSet, HardeningModel};
    use crate::model::{Evaluation, SystemModel};
    use crate::precharacterize::Precharacterization;
    use crate::sampling::{
        baseline_distribution, ConeSampling, ExperimentConfig, ImportanceSampling, RandomSampling,
    };
    use xlmc_soc::workloads;

    struct Fixture {
        model: SystemModel,
        eval: Evaluation,
        prechar: Precharacterization,
        cfg: ExperimentConfig,
    }

    fn fixture() -> Fixture {
        let model = SystemModel::with_defaults().unwrap();
        let eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let cfg = ExperimentConfig {
            t_max: 20,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            eval,
            prechar,
            cfg,
        }
    }

    fn strategies(f: &Fixture) -> Vec<Box<dyn SamplingStrategy>> {
        let fd = baseline_distribution(&f.model, &f.cfg);
        vec![
            Box::new(RandomSampling::new(fd.clone())),
            Box::new(ConeSampling::new(
                fd.clone(),
                &f.prechar,
                f.cfg.radius_options.clone(),
            )),
            Box::new(ImportanceSampling::new(
                fd,
                &f.model,
                &f.prechar,
                f.cfg.alpha,
                f.cfg.beta,
                f.cfg.radius_options.clone(),
            )),
        ]
    }

    /// The lane-equivalence property at system level: for every run of a
    /// full chunk, the batched kernel's (outcome, weight) is bit-identical
    /// to the scalar engine's — across all three sampling strategies, with
    /// and without the randomized hardening countermeasure (which exercises
    /// the per-lane RNG hand-off).
    #[test]
    fn batched_chunk_runs_match_scalar_runs() {
        let f = fixture();
        let hardened = HardenedSet::new(
            [xlmc_soc::MpuBit::Violation, xlmc_soc::MpuBit::Enable],
            HardeningModel::default(),
        );
        for hardening in [None, Some(&hardened)] {
            let runner = FaultRunner {
                model: &f.model,
                eval: &f.eval,
                prechar: &f.prechar,
                hardening,
            };
            for strat in strategies(&f) {
                for seed in [3u64, 77] {
                    let n = 200;
                    let cache = SharedCycleCache::new(runner.eval.golden.cycles);
                    let memo = SharedConclusionMemo::default();
                    let mut bscratch = BatchChunkScratch::default();
                    let mut ctr = CounterScratch::default();
                    let sink = TraceSink::disabled();
                    run_chunk_batched(
                        &runner,
                        strat.as_ref(),
                        seed,
                        0,
                        n,
                        &mut bscratch,
                        &cache,
                        &memo,
                        &mut ctr,
                        false,
                        &sink,
                        0,
                    );

                    let mut flow = FlowScratch::default();
                    for i in 0..n {
                        let mut rng = SplitMix64::for_run(seed, i as u64);
                        let sample = strat.draw(&mut rng);
                        let w = strat.weight(&sample);
                        let out = runner.run_with(&sample, &mut rng, &mut flow);
                        let (bs, bc, ba, bbits, bw) = bscratch.recorded(i);
                        let ctx = format!(
                            "strategy {} seed {seed} run {i} hardened {}",
                            strat.name(),
                            hardening.is_some()
                        );
                        assert_eq!(bs, out.success, "{ctx}");
                        assert_eq!(bc, out.class, "{ctx}");
                        assert_eq!(ba, out.analytic, "{ctx}");
                        assert_eq!(bbits, out.faulty_bits, "{ctx}");
                        assert!(bw == w, "{ctx}: weight {bw} != {w}");
                    }
                }
            }
        }
    }

    /// The batched partial equals the scalar partial field by field (the
    /// stats fold is the bit-identical aggregate of the per-run check
    /// above — this pins the fold order too).
    #[test]
    fn batched_partial_matches_scalar_partial() {
        let f = fixture();
        let runner = FaultRunner {
            model: &f.model,
            eval: &f.eval,
            prechar: &f.prechar,
            hardening: None,
        };
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let cache = SharedCycleCache::new(runner.eval.golden.cycles);
        let memo = SharedConclusionMemo::default();
        let mut bscratch = BatchChunkScratch::default();
        let mut flow = FlowScratch::default();
        let mut ctr = CounterScratch::default();
        let sink = TraceSink::disabled();
        // Also covers partial batches: 1, 63, 64, 65 runs.
        for (start, len) in [(0usize, 1usize), (1, 63), (64, 64), (128, 65), (193, 128)] {
            let b = run_chunk_batched(
                &runner,
                &strat,
                9,
                start,
                start + len,
                &mut bscratch,
                &cache,
                &memo,
                &mut ctr,
                false,
                &sink,
                0,
            );
            let s = crate::estimator::scalar_chunk_for_tests(
                &runner,
                &strat,
                9,
                start,
                start + len,
                &mut flow,
            );
            assert_eq!(b.stats.count(), s.stats.count(), "len {len}");
            assert!(b.stats.mean() == s.stats.mean(), "len {len} mean");
            assert!(b.stats.variance() == s.stats.variance(), "len {len} var");
            assert_eq!(b.class_counts, s.class_counts, "len {len}");
            assert_eq!(b.analytic_runs, s.analytic_runs, "len {len}");
            assert_eq!(b.rtl_runs, s.rtl_runs, "len {len}");
            assert_eq!(b.successes, s.successes, "len {len}");
            assert_eq!(b.attribution, s.attribution, "len {len}");
            // The chunk-local counter model is kernel-invariant too.
            assert_eq!(b.counters, s.counters, "len {len}");
            assert_eq!(b.first_success, s.first_success, "len {len}");
        }
    }
}
