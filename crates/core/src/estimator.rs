//! The Monte Carlo SSF estimator and campaign driver (paper §3.3).
//!
//! `SSF = E_{T,P}[E]` is estimated by `ŜSF = (1/N) Σ w_i · e_i` with
//! importance weights `w_i = f(s_i)/g(s_i)` supplied by the sampling
//! strategy. The campaign records everything the paper's evaluation section
//! reports: the convergence trace (Figure 9(a)), the sample variance
//! (Figure 9(b)), the strike-outcome split (Figure 10(a)), the
//! analytic-vs-RTL run counts, and the per-register SSF attribution that
//! drives the hardening study.
//!
//! The driver folds chunk partials **incrementally in chunk order**, which
//! is what makes the [`crate::telemetry`] layer deterministic: progress
//! events, the `--target-eps` stopping rule, and periodic checkpoints all
//! observe the same merged prefix at a given chunk boundary regardless of
//! the thread count or kernel.

pub use crate::batch::{gate_path_bench, GatePathBench};
use crate::batch::{run_chunk_batched, run_chunk_compiled, BatchChunkScratch, SharedCycleCache};
use crate::fastforward::{FastForwardStats, SharedConclusionMemo};
use crate::flow::{FaultRunner, FlowScratch, StrikeClass};
use crate::json::{bits_str, json_num};
use crate::metrics::{self, EventLog, LatencyShard, MetricsRegistry, MlmcProgress, StallWatchdog};
use crate::multilevel::{
    self, MlmcEstimator, MlmcPlan, MlmcScratch, MlmcSummary, SetToSeuMap, LEVEL_GATE, LEVEL_RTL,
};
use crate::rng::SplitMix64;
use crate::sampling::SamplingStrategy;
use crate::stats::RunningStats;
use crate::telemetry::{
    self, CampaignCheckpoint, CampaignObserver, MetricsMeta, NullObserver, ObserverAction,
    ProgramStats, ProgressEvent, SchedulerStats,
};
use crate::trace::{
    self, CampaignCounters, CounterScratch, KernelCounters, ProvenanceRecord, TraceSink,
    PROVENANCE_RING_CAP,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};
use xlmc_fault::AttackSample;
use xlmc_soc::MpuBit;

/// Runs per shard. Fixed — independent of the thread count and of the
/// kernel — so the chunk partition, and therefore every merged statistic,
/// is a pure function of `(seed, n, strategy)`. Eight full 64-lane batches
/// per shard: the batched kernel stratifies a shard's runs by injection
/// frame before packing lanes, so a bigger shard means longer same-frame
/// stretches and fewer cycle-value groups per batch. The trace stays usable
/// because `trace_points` caps its resolution anyway.
///
/// Public so acceptance harnesses can re-derive each chunk's run range
/// from [`crate::multilevel::MlmcSummary::chunk_levels`] (chunk `c`
/// covers runs `c·CHUNK_RUNS .. min((c+1)·CHUNK_RUNS, n)`).
pub const CHUNK_RUNS: usize = 512;

/// The `--target-eps` stopping rule never fires before this many runs: the
/// Welford variance of the first chunk can be degenerately small (e.g. all
/// strikes masked), which would satisfy any bound trivially.
pub const EARLY_STOP_MIN_RUNS: usize = 2 * CHUNK_RUNS;

/// Default checkpoint cadence in runs (rounded up to whole chunks).
pub const DEFAULT_CHECKPOINT_EVERY_RUNS: usize = 8 * CHUNK_RUNS;

/// Counts of strike outcomes by class (paper Figure 10(a)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Strikes with no latched error.
    pub masked: usize,
    /// Errors only in memory-type registers.
    pub memory_only: usize,
    /// At least one computation-type register in error.
    pub mixed: usize,
}

impl ClassCounts {
    /// Total strikes counted.
    pub fn total(&self) -> usize {
        self.masked + self.memory_only + self.mixed
    }

    /// `(masked, memory_only, mixed)` as fractions of the total.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.masked as f64 / t,
            self.memory_only as f64 / t,
            self.mixed as f64 / t,
        )
    }

    fn add(&mut self, other: &ClassCounts) {
        self.masked += other.masked;
        self.memory_only += other.memory_only;
        self.mixed += other.mixed;
    }
}

/// Why a campaign returned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// All requested runs were executed.
    #[default]
    Completed,
    /// The `--target-eps` LLN bound dropped below `1 − confidence`.
    TargetEps,
    /// A [`CampaignObserver`] returned [`ObserverAction::Abort`].
    Aborted,
}

impl StopReason {
    /// The stable string used in the metrics JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::TargetEps => "target_eps",
            StopReason::Aborted => "aborted",
        }
    }
}

/// The result of one sampling campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Strategy name.
    pub strategy: String,
    /// Number of samples folded into the estimate. Equals the requested
    /// run count unless the campaign stopped early (see [`StopReason`]).
    pub n: usize,
    /// The SSF estimate `ŜSF`.
    pub ssf: f64,
    /// Sample variance of the weighted indicator `w · e` (the paper's
    /// Figure 9(b) metric).
    pub sample_variance: f64,
    /// The importance-sampling effective sample size `(Σw)²/Σw²` over the
    /// drawn weights (equals `n` when every weight is 1, i.e. under the
    /// baseline random strategy).
    pub ess: f64,
    /// Number of successful attacks (unweighted).
    pub successes: usize,
    /// Running-estimate trace `(n, ŜSF_n)` for convergence plots.
    pub trace: Vec<(usize, f64)>,
    /// Strike-class split.
    pub class_counts: ClassCounts,
    /// Runs settled by the analytical evaluator.
    pub analytic_runs: usize,
    /// Runs requiring RTL resume.
    pub rtl_runs: usize,
    /// Weighted success mass attributed to each faulty register. Ordered by
    /// bit so reports and serialized results are stable run-to-run.
    pub attribution: BTreeMap<MpuBit, f64>,
    /// Why the campaign returned.
    pub stop: StopReason,
    /// Kernel-invariant hot-path counters (chunk-local memo model; see
    /// [`crate::trace`]). Identical across kernels and thread counts.
    pub counters: CampaignCounters,
    /// Kernel-shape counters (lane occupancy, frame strata, gate visits).
    /// These legitimately differ between the scalar and batched kernels.
    pub kernel_counters: KernelCounters,
    /// Index of the first successful run, `None` when no run succeeded.
    /// Like every statistic, a pure function of `(seed, n, strategy)`.
    /// Under MLMC this is gate-level: the first success of a *coupled*
    /// chunk (level-0 successes are not attributable). `--replay` is
    /// level-aware: a run that a level-0 chunk evaluated is re-derived via
    /// [`crate::multilevel::replay_run_level0`], not the gate flow.
    pub first_success: Option<u64>,
    /// Which estimator produced this result.
    pub estimator: EstimatorKind,
    /// Per-level MLMC accounting (`None` under the single estimator).
    pub mlmc: Option<MlmcSummary>,
}

impl CampaignResult {
    /// The LLN bound on `Pr[|ŜSF − SSF| ≥ eps]` after `n` samples.
    pub fn lln_bound(&self, eps: f64) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        (self.sample_variance / (self.n as f64 * eps * eps)).min(1.0)
    }
}

/// Which per-chunk executor the campaign engine uses.
///
/// All kernels produce bit-identical [`CampaignResult`]s (the lane
/// batching is transparent down to the last `f64` ulp); `Compiled` is the
/// default because it amortizes each transient sweep over up to 256 runs
/// through the levelized straight-line
/// [`GateProgram`](xlmc_netlist::GateProgram) instead of per-cell
/// worklist dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CampaignKernel {
    /// One run at a time through [`FaultRunner::run_with`].
    Scalar,
    /// Up to 64 runs per packed transient pass
    /// (`TransientSim::strike_batch_with`).
    Batched,
    /// Up to 256 runs per compiled straight-line sweep
    /// (`TransientSim::strike_compiled_with`).
    #[default]
    Compiled,
}

impl CampaignKernel {
    /// The `--kernel` argument spelling (also used in checkpoint headers).
    pub fn as_arg(&self) -> &'static str {
        match self {
            CampaignKernel::Scalar => "scalar",
            CampaignKernel::Batched => "batched",
            CampaignKernel::Compiled => "compiled",
        }
    }

    /// Monte Carlo runs packed per transient pass.
    pub fn lane_width(&self) -> usize {
        match self {
            CampaignKernel::Scalar => 1,
            CampaignKernel::Batched => xlmc_gatesim::LANES,
            CampaignKernel::Compiled => xlmc_gatesim::WIDE_LANES,
        }
    }
}

/// Which SSF estimator the campaign runs.
///
/// `Single` is the paper's estimator: every run pays the gate-accurate
/// flow. `Mlmc` is the two-level telescoped estimator
/// `E[f] = E[f_rtl] + E[f_gate − f_rtl]` from [`crate::multilevel`]: most
/// chunks run the cheap pure-RTL level-0 sampler, and a measured fraction
/// run coupled level-1 pairs whose signed difference corrects the cheap
/// level's bias. Both estimators are unbiased; MLMC reaches the same
/// `--target-eps` goal with far fewer gate-level runs. MLMC results are
/// bit-identical at any thread count and — because its per-level executors
/// are scalar — under all three kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EstimatorKind {
    /// Gate-accurate flow on every run (the paper's estimator).
    #[default]
    Single,
    /// Two-level multilevel Monte Carlo (RTL-cheap / gate-accurate).
    Mlmc,
}

impl EstimatorKind {
    /// The `--estimator` argument spelling (also used in checkpoint and
    /// metrics headers).
    pub fn as_arg(&self) -> &'static str {
        match self {
            EstimatorKind::Single => "single",
            EstimatorKind::Mlmc => "mlmc",
        }
    }
}

/// Knobs of the campaign engine, shared by every figure binary.
///
/// The thread count and the kernel are pure scheduling choices: campaign
/// results are bit-identical at any `threads` value and under either
/// kernel (see [`crate::rng`] and [`CampaignKernel`]). The telemetry knobs
/// (`metrics_path`, `checkpoint_path`) never change the statistics either;
/// `target_eps` changes only *where* the campaign stops, and it does so
/// deterministically (the stopping decision is a function of the merged
/// chunk prefix, which is schedule-independent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignOptions {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Upper bound on convergence-trace points (the trace records the
    /// running estimate at shard boundaries, downsampled to this many).
    pub trace_points: usize,
    /// The per-chunk executor.
    pub kernel: CampaignKernel,
    /// The SSF estimator (`--estimator single|mlmc`).
    pub estimator: EstimatorKind,
    /// Adaptive stopping: halt once the §3.3 LLN bound at this `eps`
    /// drops to `1 − target_confidence` (checked at chunk boundaries,
    /// never before [`EARLY_STOP_MIN_RUNS`] runs). `None` disables.
    pub target_eps: Option<f64>,
    /// Confidence level for the stopping rule (default 0.95).
    pub target_confidence: f64,
    /// Where to write the campaign metrics JSON (`--metrics`).
    pub metrics_path: Option<PathBuf>,
    /// Where to read/write the campaign checkpoint (`--checkpoint`). If
    /// the file exists, the campaign resumes from it.
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint cadence in runs, rounded up to whole chunks
    /// (`--checkpoint-every`).
    pub checkpoint_every_runs: usize,
    /// Where to write the Chrome trace-event JSON (`--trace`): spans,
    /// counters and provenance records, openable in Perfetto.
    pub trace_path: Option<PathBuf>,
    /// Re-execute this run solo after the campaign (`--replay N`) under
    /// full span tracing, asserting its verdict matches the campaign's
    /// provenance record.
    pub replay: Option<u64>,
    /// RTL fast-forward accelerations — exact-cycle snapshot cache and
    /// golden-reconvergence early exit (`--fast-forward on|off`). A pure
    /// scheduling choice: results are bit-identical either way.
    pub fast_forward: bool,
    /// Where to append the streaming lifecycle event log (`--events`):
    /// one JSON object per line, flushed per line, pinned by
    /// `schemas/events.schema.json`. A pure observer — results are
    /// bit-identical with the log on or off.
    pub events_path: Option<PathBuf>,
    /// Where to write the Prometheus text exposition (`--prom`): the
    /// metrics registry rendered atomically (temp + rename) at checkpoint
    /// cadence and once at the end. Also a pure observer.
    pub prom_path: Option<PathBuf>,
    /// Stall watchdog budget in seconds (`--stall-timeout`): if the
    /// multi-thread merge loop sees no chunk within this budget, a
    /// `worker_stalled` event with a per-worker state dump is emitted
    /// (requires `--events`; `0` disables).
    pub stall_timeout_s: f64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            trace_points: 200,
            kernel: CampaignKernel::default(),
            estimator: EstimatorKind::default(),
            target_eps: None,
            target_confidence: 0.95,
            metrics_path: None,
            checkpoint_path: None,
            checkpoint_every_runs: DEFAULT_CHECKPOINT_EVERY_RUNS,
            trace_path: None,
            replay: None,
            fast_forward: true,
            events_path: None,
            prom_path: None,
            stall_timeout_s: 30.0,
        }
    }
}

impl CampaignOptions {
    /// Options with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Options with an explicit kernel.
    pub fn with_kernel(kernel: CampaignKernel) -> Self {
        Self {
            kernel,
            ..Self::default()
        }
    }

    /// Parse the engine flags from the process arguments (used by the
    /// figure binaries); anything unrecognized is left for the caller.
    /// `--help`/`-h` prints the flag table and exits 0; an invalid value
    /// for a recognized flag prints an error and exits with status 2.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", Self::usage());
            std::process::exit(0);
        }
        match Self::parse_args(args) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Every value-taking flag [`parse_args`](Self::parse_args) accepts.
    /// The `--help` table and the contract test iterate this list, so a
    /// flag added to the parser without help text fails the build's tests.
    pub const VALUE_FLAGS: &'static [&'static str] = &[
        "--threads",
        "--kernel",
        "--estimator",
        "--target-eps",
        "--target-confidence",
        "--metrics",
        "--checkpoint",
        "--checkpoint-every",
        "--trace",
        "--replay",
        "--fast-forward",
        "--events",
        "--prom",
        "--stall-timeout",
    ];

    /// The `--help` flag table: every flag the campaign engine owns.
    pub fn usage() -> String {
        concat!(
            "campaign engine flags (shared by every figure/bench binary):\n",
            "  --threads N|auto       worker threads; 0 or \"auto\" = one per core\n",
            "                         (default 1)\n",
            "  --kernel scalar|batched|compiled\n",
            "                         per-chunk executor (default compiled); results\n",
            "                         are bit-identical under all three\n",
            "  --estimator single|mlmc\n",
            "                         gate-accurate single-level estimator, or the\n",
            "                         two-level RTL-cheap/gate-accurate multilevel\n",
            "                         Monte Carlo estimator (default single)\n",
            "  --target-eps X         stop once the LLN bound at eps X drops to\n",
            "                         1 - confidence (checked at chunk boundaries)\n",
            "  --target-confidence C  confidence for --target-eps, in (0, 1)\n",
            "                         (default 0.95)\n",
            "  --metrics PATH         write the campaign metrics JSON\n",
            "                         (xlmc-metrics-v5, schemas/metrics.schema.json)\n",
            "  --events PATH          stream the lifecycle event log as JSONL\n",
            "                         (schemas/events.schema.json), one flushed line\n",
            "                         per event; results are bit-identical on or off\n",
            "  --prom PATH            write the Prometheus text exposition, rewritten\n",
            "                         atomically at checkpoint cadence and at the end\n",
            "  --stall-timeout SECS   emit a worker_stalled event when the threaded\n",
            "                         merge loop sees no chunk for SECS seconds\n",
            "                         (needs --events; 0 disables; default 30)\n",
            "  --fast-forward on|off  RTL fast-forward (exact-cycle snapshot cache +\n",
            "                         golden-reconvergence early exit); results are\n",
            "                         bit-identical either way (default on)\n",
            "  --checkpoint PATH      read/write the campaign checkpoint; an\n",
            "                         existing file resumes the campaign\n",
            "  --checkpoint-every N   checkpoint cadence in runs, rounded up to\n",
            "                         whole chunks (default 4096)\n",
            "  --trace PATH           write Chrome trace-event JSON (spans, hot-path\n",
            "                         counters, per-run provenance) for Perfetto\n",
            "  --replay N             after the campaign, re-execute run N solo under\n",
            "                         tracing and check its verdict against the\n",
            "                         campaign's provenance record\n",
            "  --help, -h             print this table and exit\n",
            "Flags the engine does not own are left for the binary itself.",
        )
        .to_owned()
    }

    /// Parse the engine flags — `--threads N|auto`, `--kernel
    /// scalar|batched|compiled`, `--target-eps X`, `--target-confidence C`,
    /// `--metrics PATH`, `--checkpoint PATH`, `--checkpoint-every N`,
    /// `--trace PATH`, `--replay N`, `--fast-forward on|off` (each also
    /// accepting the `--flag=value` spelling) — from an argument list,
    /// skipping flags it does not own.
    pub fn parse_args<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut opts = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let (flag, mut inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
                None => (arg, None),
            };
            if !Self::VALUE_FLAGS.contains(&flag.as_str()) {
                continue;
            }
            let value = inline
                .take()
                .or_else(|| it.next())
                .ok_or_else(|| format!("{flag} requires a value"))?;
            match flag.as_str() {
                "--threads" => {
                    opts.threads = if value == "auto" {
                        0
                    } else {
                        value.parse().map_err(|_| {
                            format!(
                                "invalid --threads value {value:?}: expected a non-negative \
                                 integer or \"auto\""
                            )
                        })?
                    };
                }
                "--kernel" => opts.set_kernel_arg(&value),
                "--estimator" => {
                    opts.estimator = match value.as_str() {
                        "single" => EstimatorKind::Single,
                        "mlmc" => EstimatorKind::Mlmc,
                        _ => {
                            return Err(format!(
                                "invalid --estimator value {value:?}: expected \"single\" or \
                                 \"mlmc\""
                            ))
                        }
                    };
                }
                "--target-eps" => {
                    let eps: f64 = value.parse().map_err(|_| {
                        format!("invalid --target-eps value {value:?}: expected a number")
                    })?;
                    if !eps.is_finite() || eps <= 0.0 {
                        return Err(format!(
                            "invalid --target-eps value {value:?}: must be a positive number"
                        ));
                    }
                    opts.target_eps = Some(eps);
                }
                "--target-confidence" => {
                    let c: f64 = value.parse().map_err(|_| {
                        format!("invalid --target-confidence value {value:?}: expected a number")
                    })?;
                    if !(c > 0.0 && c < 1.0) {
                        return Err(format!(
                            "invalid --target-confidence value {value:?}: must be in (0, 1)"
                        ));
                    }
                    opts.target_confidence = c;
                }
                "--metrics" => opts.metrics_path = Some(PathBuf::from(value)),
                "--checkpoint" => opts.checkpoint_path = Some(PathBuf::from(value)),
                "--checkpoint-every" => {
                    let every: usize = value.parse().map_err(|_| {
                        format!(
                            "invalid --checkpoint-every value {value:?}: expected a positive integer"
                        )
                    })?;
                    if every == 0 {
                        return Err(
                            "invalid --checkpoint-every value \"0\": must be at least 1".to_owned()
                        );
                    }
                    opts.checkpoint_every_runs = every;
                }
                "--trace" => opts.trace_path = Some(PathBuf::from(value)),
                "--replay" => {
                    opts.replay = Some(value.parse().map_err(|_| {
                        format!("invalid --replay value {value:?}: expected a run index")
                    })?);
                }
                "--fast-forward" => {
                    opts.fast_forward = match value.as_str() {
                        "on" => true,
                        "off" => false,
                        _ => {
                            return Err(format!(
                                "invalid --fast-forward value {value:?}: expected \"on\" or \
                                 \"off\""
                            ))
                        }
                    };
                }
                "--events" => opts.events_path = Some(PathBuf::from(value)),
                "--prom" => opts.prom_path = Some(PathBuf::from(value)),
                "--stall-timeout" => {
                    let secs: f64 = value.parse().map_err(|_| {
                        format!("invalid --stall-timeout value {value:?}: expected seconds")
                    })?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err(format!(
                            "invalid --stall-timeout value {value:?}: must be a non-negative \
                             number of seconds"
                        ));
                    }
                    opts.stall_timeout_s = secs;
                }
                _ => unreachable!("flag list and match arms are in sync"),
            }
        }
        Ok(opts)
    }

    fn set_kernel_arg(&mut self, v: &str) {
        match v {
            "scalar" => self.kernel = CampaignKernel::Scalar,
            "batched" => self.kernel = CampaignKernel::Batched,
            "compiled" => self.kernel = CampaignKernel::Compiled,
            other => eprintln!("ignoring unknown --kernel value {other:?}"),
        }
    }

    /// The concrete worker count (resolving `0` to the core count).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Everything one shard of runs accumulates; merged in shard order.
#[derive(Debug, Default)]
pub(crate) struct ChunkPartial {
    /// The chunk's level tag: [`multilevel::LEVEL_GATE`] for gate-accurate
    /// chunks (every single-estimator chunk, and MLMC's coupled
    /// correction chunks), [`multilevel::LEVEL_RTL`] for MLMC's cheap
    /// level-0 chunks. The merge keys its per-level accumulators on it, so
    /// checkpoint/resume stays bit-deterministic across mixed-level runs.
    pub(crate) level: u8,
    /// The chunk's primary Welford stream: `w·e` for gate chunks, the
    /// signed correction `w·(e_gate − e_rtl)` for MLMC level-1 chunks.
    pub(crate) stats: RunningStats,
    /// The gate marginal `w·e_gate` (MLMC level-1 chunks only).
    pub(crate) gate_stats: RunningStats,
    /// The RTL marginal `w·e_rtl` (MLMC level-1 chunks only).
    pub(crate) rtl_stats: RunningStats,
    pub(crate) class_counts: ClassCounts,
    pub(crate) analytic_runs: usize,
    pub(crate) rtl_runs: usize,
    pub(crate) successes: usize,
    pub(crate) attribution: BTreeMap<MpuBit, f64>,
    /// Σw over the shard's drawn weights (for the effective sample size).
    pub(crate) w_sum: f64,
    /// Σw² over the shard's drawn weights.
    pub(crate) w_sq_sum: f64,
    /// Kernel-invariant hot-path counters for this shard.
    pub(crate) counters: CampaignCounters,
    /// Kernel-shape counters for this shard.
    pub(crate) kernel_counters: KernelCounters,
    /// First successful run index within this shard.
    pub(crate) first_success: Option<u64>,
    /// Per-run provenance, in run-index order (empty unless recording).
    pub(crate) provenance: Vec<ProvenanceRecord>,
    /// Worker-side latency observations (chunk wall time, kernel sweeps,
    /// snapshot restores). Pure telemetry: taken out before the fold and
    /// absorbed into the merger's registry, never into the statistics.
    pub(crate) latency: LatencyShard,
}

/// Everything `fold_run` needs to know about one executed run.
pub(crate) struct RunObs<'a> {
    pub(crate) run_index: u64,
    pub(crate) sample: &'a AttackSample,
    pub(crate) te: Option<u64>,
    pub(crate) pulses: usize,
    pub(crate) class: StrikeClass,
    pub(crate) analytic: bool,
    pub(crate) success: bool,
    pub(crate) w: f64,
    pub(crate) faulty_bits: &'a [MpuBit],
}

/// Fold one run's outcome into a shard partial. Both kernels route every
/// run through this single accumulator (in run-index order), so the
/// Welford push sequence — and with it every campaign statistic and
/// counter — cannot drift between the scalar and batched engines.
pub(crate) fn fold_run(
    p: &mut ChunkPartial,
    ctr: &mut CounterScratch,
    obs: RunObs<'_>,
    record_provenance: bool,
) {
    match obs.class {
        StrikeClass::Masked => p.class_counts.masked += 1,
        StrikeClass::MemoryOnly => p.class_counts.memory_only += 1,
        StrikeClass::Mixed => p.class_counts.mixed += 1,
    }
    if obs.class != StrikeClass::Masked {
        if obs.analytic {
            p.analytic_runs += 1;
        } else {
            p.rtl_runs += 1;
        }
    }
    ctr.record_run(
        &mut p.counters,
        obs.te,
        obs.faulty_bits,
        obs.analytic,
        obs.pulses,
    );
    p.w_sum += obs.w;
    p.w_sq_sum += obs.w * obs.w;
    let x = if obs.success {
        p.successes += 1;
        if p.first_success.is_none() {
            p.first_success = Some(obs.run_index);
        }
        for &bit in obs.faulty_bits {
            *p.attribution.entry(bit).or_insert(0.0) += obs.w;
        }
        obs.w
    } else {
        0.0
    };
    p.stats.push(x);
    if record_provenance {
        p.provenance.push(ProvenanceRecord {
            run_index: obs.run_index,
            t: obs.sample.t,
            center: obs.sample.center,
            radius: obs.sample.radius,
            phase: obs.sample.phase,
            te: obs.te,
            weight: obs.w,
            class: obs.class,
            success: obs.success,
            analytic: obs.analytic,
        });
    }
}

/// Execute runs `start..end` of the campaign, one at a time. Each run's
/// generator comes from `(seed, run_index)` alone, so a shard computes the
/// same partial on any worker.
#[allow(clippy::too_many_arguments)]
fn run_chunk(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    start: usize,
    end: usize,
    scratch: &mut FlowScratch,
    memo: &SharedConclusionMemo,
    ctr: &mut CounterScratch,
    record_provenance: bool,
) -> ChunkPartial {
    ctr.begin_chunk();
    let mut p = ChunkPartial {
        level: multilevel::LEVEL_GATE,
        ..ChunkPartial::default()
    };
    for i in start..end {
        let mut rng = SplitMix64::for_run(seed, i as u64);
        let sample = strategy.draw(&mut rng);
        let w = strategy.weight(&sample);
        let outcome = runner.run_shared(&sample, &mut rng, scratch, Some(memo));
        p.kernel_counters.gates_visited += outcome.gates_visited;
        fold_run(
            &mut p,
            ctr,
            RunObs {
                run_index: i as u64,
                sample: &sample,
                te: outcome.injection_cycle,
                pulses: outcome.pulses_propagated,
                class: outcome.class,
                analytic: outcome.analytic,
                success: outcome.success,
                w,
                faulty_bits: outcome.faulty_bits,
            },
            record_provenance,
        );
    }
    p
}

/// The scalar chunk executor, exposed to the crate's lane-equivalence
/// tests as the reference implementation.
#[cfg(test)]
pub(crate) fn scalar_chunk_for_tests(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    start: usize,
    end: usize,
    scratch: &mut FlowScratch,
) -> ChunkPartial {
    let mut ctr = CounterScratch::default();
    let memo = SharedConclusionMemo::default();
    run_chunk(
        runner, strategy, seed, start, end, scratch, &memo, &mut ctr, false,
    )
}

/// The merged campaign prefix: every statistic folded from chunks
/// `0..merged_chunks`, in chunk order. This is exactly what a checkpoint
/// snapshots — restoring it and folding the remaining chunks reproduces an
/// uninterrupted campaign bit-for-bit.
#[derive(Debug, Default)]
struct MergeState {
    /// Which estimator the accumulators below serve.
    estimator: EstimatorKind,
    /// The single-estimator stream (untouched under MLMC).
    stats: RunningStats,
    /// MLMC level-0 stream of `w·e_rtl` (empty under `Single`).
    level0: RunningStats,
    /// MLMC level-1 stream of the signed correction `w·(e_gate − e_rtl)`.
    level1_diff: RunningStats,
    /// MLMC level-1 gate marginal `w·e_gate`.
    level1_gate: RunningStats,
    /// MLMC level-1 RTL marginal `w·e_rtl`.
    level1_rtl: RunningStats,
    /// The published post-pilot level-1 chunk share, set when the pilot
    /// finishes merging (carried through checkpoints so a resumed campaign
    /// replays the identical schedule).
    plan_ratio: Option<f64>,
    /// Level tag of every merged chunk, in chunk order.
    chunk_levels: Vec<u8>,
    class_counts: ClassCounts,
    analytic_runs: usize,
    rtl_runs: usize,
    successes: usize,
    attribution: BTreeMap<MpuBit, f64>,
    w_sum: f64,
    w_sq_sum: f64,
    counters: CampaignCounters,
    kernel_counters: KernelCounters,
    first_success: Option<u64>,
    /// Running estimate at each merged chunk boundary, undownsampled.
    boundaries: Vec<(usize, f64)>,
    /// Chunks folded so far — also the index of the next chunk to fold.
    merged_chunks: usize,
}

impl MergeState {
    fn fold(&mut self, p: ChunkPartial, chunk_end: usize) {
        match self.estimator {
            EstimatorKind::Single => self.stats.merge(&p.stats),
            EstimatorKind::Mlmc => {
                self.chunk_levels.push(p.level);
                if p.level == LEVEL_RTL {
                    self.level0.merge(&p.stats);
                } else {
                    self.level1_diff.merge(&p.stats);
                    self.level1_gate.merge(&p.gate_stats);
                    self.level1_rtl.merge(&p.rtl_stats);
                }
            }
        }
        self.class_counts.add(&p.class_counts);
        self.analytic_runs += p.analytic_runs;
        self.rtl_runs += p.rtl_runs;
        self.successes += p.successes;
        for (bit, w) in p.attribution {
            *self.attribution.entry(bit).or_insert(0.0) += w;
        }
        self.w_sum += p.w_sum;
        self.w_sq_sum += p.w_sq_sum;
        self.counters.add(&p.counters);
        self.kernel_counters.add(&p.kernel_counters);
        // Chunks fold in order, so the first Some seen is the global first.
        if self.first_success.is_none() {
            self.first_success = p.first_success;
        }
        self.merged_chunks += 1;
        // Freeze the MLMC sample-allocation plan the moment the pilot is
        // fully merged: a pure function of the pilot variances, so every
        // schedule — threads, kernels, resume — derives the same ratio.
        if self.estimator == EstimatorKind::Mlmc
            && self.plan_ratio.is_none()
            && self.merged_chunks == MlmcEstimator::PILOT_CHUNKS
        {
            let est = MlmcEstimator::default();
            self.plan_ratio =
                Some(est.optimal_share1(self.level0.variance(), self.level1_diff.variance()));
        }
        self.boundaries.push((chunk_end, self.current_ssf()));
    }

    fn runs_merged(&self) -> usize {
        self.boundaries.last().map_or(0, |&(runs, _)| runs)
    }

    /// The running point estimate of the merged prefix: the plain Welford
    /// mean under `Single`, the telescoped `mean₀ + mean₁(diff)` under
    /// MLMC (degenerating to the coupled gate marginal while no level-0
    /// chunk has merged).
    fn current_ssf(&self) -> f64 {
        match self.estimator {
            EstimatorKind::Single => self.stats.mean(),
            EstimatorKind::Mlmc => {
                if self.level0.count() == 0 {
                    self.level1_gate.mean()
                } else {
                    self.level0.mean() + self.level1_diff.mean()
                }
            }
        }
    }

    /// The per-sample variance scale of the estimate: defined so that
    /// `sample_variance / n` is the variance of the point estimate under
    /// either estimator, keeping the LLN bound and the metrics schema
    /// uniform. For MLMC that is `n · (s₀²/n₀ + s₁²/n₁)` (a zero-count
    /// level drops out; with no level-0 chunks it reduces to the gate
    /// marginal's plain sample variance).
    fn current_sample_variance(&self) -> f64 {
        match self.estimator {
            EstimatorKind::Single => self.stats.variance(),
            EstimatorKind::Mlmc => {
                let n0 = self.level0.count();
                let n1 = self.level1_diff.count();
                let mut v = 0.0;
                if n0 > 0 {
                    v += self.level0.variance() / n0 as f64;
                }
                if n1 > 0 {
                    if self.level0.count() == 0 {
                        v += self.level1_gate.variance() / n1 as f64;
                    } else {
                        v += self.level1_diff.variance() / n1 as f64;
                    }
                }
                (n0 + n1) as f64 * v
            }
        }
    }

    /// Samples folded across every stream.
    fn total_count(&self) -> u64 {
        match self.estimator {
            EstimatorKind::Single => self.stats.count(),
            EstimatorKind::Mlmc => self.level0.count() + self.level1_diff.count(),
        }
    }

    /// The LLN bound `Pr[|ŜSF − SSF| ≥ eps] ≤ Var(ŜSF)/eps²` of the merged
    /// prefix, capped at 1.
    fn lln_bound(&self, eps: f64) -> f64 {
        let n = self.total_count();
        if n == 0 {
            return 1.0;
        }
        (self.current_sample_variance() / (n as f64 * eps * eps)).min(1.0)
    }

    /// Whether the stopping rule may fire: MLMC additionally requires both
    /// levels sampled, so the variance terms it bounds are both live (the
    /// alternating pilot guarantees this from the second chunk on).
    fn levels_ready(&self) -> bool {
        match self.estimator {
            EstimatorKind::Single => true,
            EstimatorKind::Mlmc => self.level0.count() > 0 && self.level1_diff.count() > 0,
        }
    }

    /// Effective sample size `(Σw)²/Σw²` (0 when no runs folded).
    fn ess(&self) -> f64 {
        if self.w_sq_sum > 0.0 {
            self.w_sum * self.w_sum / self.w_sq_sum
        } else {
            0.0
        }
    }

    fn to_checkpoint(
        &self,
        seed: u64,
        requested_runs: usize,
        strategy: &str,
        kernel: CampaignKernel,
    ) -> CampaignCheckpoint {
        CampaignCheckpoint {
            seed,
            requested_runs,
            chunk_runs: CHUNK_RUNS,
            strategy: strategy.to_owned(),
            kernel,
            estimator: self.estimator,
            mlmc: match self.estimator {
                EstimatorKind::Single => None,
                EstimatorKind::Mlmc => Some(telemetry::MlmcCheckpointState {
                    plan_ratio: self.plan_ratio,
                    level0: self.level0,
                    level1_diff: self.level1_diff,
                    level1_gate: self.level1_gate,
                    level1_rtl: self.level1_rtl,
                    chunk_levels: self.chunk_levels.clone(),
                }),
            },
            merged_chunks: self.merged_chunks,
            stats: self.stats,
            w_sum: self.w_sum,
            w_sq_sum: self.w_sq_sum,
            class_counts: self.class_counts,
            analytic_runs: self.analytic_runs,
            rtl_runs: self.rtl_runs,
            successes: self.successes,
            attribution: self.attribution.clone(),
            counters: self.counters,
            kernel_counters: self.kernel_counters,
            first_success: self.first_success,
            boundaries: self.boundaries.clone(),
        }
    }

    fn from_checkpoint(ck: CampaignCheckpoint) -> Self {
        let m = ck.mlmc.unwrap_or_default();
        Self {
            estimator: ck.estimator,
            stats: ck.stats,
            level0: m.level0,
            level1_diff: m.level1_diff,
            level1_gate: m.level1_gate,
            level1_rtl: m.level1_rtl,
            plan_ratio: m.plan_ratio,
            chunk_levels: m.chunk_levels,
            class_counts: ck.class_counts,
            analytic_runs: ck.analytic_runs,
            rtl_runs: ck.rtl_runs,
            successes: ck.successes,
            attribution: ck.attribution,
            w_sum: ck.w_sum,
            w_sq_sum: ck.w_sq_sum,
            counters: ck.counters,
            kernel_counters: ck.kernel_counters,
            first_success: ck.first_success,
            boundaries: ck.boundaries,
            merged_chunks: ck.merged_chunks,
        }
    }

    fn into_result(self, strategy: &str, stop: StopReason, trace_points: usize) -> CampaignResult {
        // Downsample boundaries to at most `trace_points`, always keeping
        // the final `(n, ŜSF)` point exactly once.
        let stride = self.boundaries.len().div_ceil(trace_points.max(1)).max(1);
        let mut trace: Vec<(usize, f64)> = self
            .boundaries
            .iter()
            .enumerate()
            .filter(|(i, _)| (i + 1) % stride == 0)
            .map(|(_, &b)| b)
            .collect();
        if trace.last() != self.boundaries.last() {
            if let Some(&last) = self.boundaries.last() {
                trace.push(last);
            }
        }
        let costs = MlmcEstimator::default();
        let mlmc = match self.estimator {
            EstimatorKind::Single => None,
            EstimatorKind::Mlmc => Some(MlmcSummary {
                n0: self.level0.count(),
                n1: self.level1_diff.count(),
                mean0: self.level0.mean(),
                var0: self.level0.variance(),
                mean1_diff: self.level1_diff.mean(),
                var1_diff: self.level1_diff.variance(),
                mean1_gate: self.level1_gate.mean(),
                mean1_rtl: self.level1_rtl.mean(),
                cost0: costs.cost0,
                cost1: costs.cost1,
                plan_ratio: self.plan_ratio,
                chunk_levels: self.chunk_levels.clone(),
            }),
        };
        CampaignResult {
            strategy: strategy.to_owned(),
            n: self.runs_merged(),
            ssf: self.current_ssf(),
            sample_variance: self.current_sample_variance(),
            ess: self.ess(),
            successes: self.successes,
            trace,
            class_counts: self.class_counts,
            analytic_runs: self.analytic_runs,
            rtl_runs: self.rtl_runs,
            attribution: self.attribution,
            stop,
            counters: self.counters,
            kernel_counters: self.kernel_counters,
            first_success: self.first_success,
            estimator: self.estimator,
            mlmc,
        }
    }
}

/// What the telemetry fan-out needs to know about one just-merged chunk,
/// captured before the fold consumes the partial.
struct ChunkMergeInfo {
    /// The merged chunk's index.
    chunk: usize,
    /// Its level tag ([`LEVEL_GATE`] for single-estimator chunks).
    level: u8,
    /// Its primary Welford stream, exactly as folded.
    stats: RunningStats,
}

/// The merger-side telemetry fan-out: one [`MetricsRegistry`] feeding the
/// streaming event log (`--events`), the Prometheus exposition (`--prom`)
/// and the stall watchdog (`--stall-timeout`). A pure observer — it only
/// reads the merged state, after the fold, so enabling any surface cannot
/// change a result bit.
struct TelemetryHub {
    registry: MetricsRegistry,
    events: Option<EventLog>,
    prom_path: Option<PathBuf>,
    prom_labels: Vec<(&'static str, String)>,
    watchdog: Option<StallWatchdog>,
    plan_emitted: bool,
}

impl TelemetryHub {
    fn new(options: &CampaignOptions, strategy: &str, plan_already_frozen: bool) -> Self {
        let events = options.events_path.as_deref().and_then(|p| {
            EventLog::create(p)
                .map_err(|e| eprintln!("failed to create events log {}: {e}", p.display()))
                .ok()
        });
        Self {
            registry: MetricsRegistry::new(),
            events,
            prom_path: options.prom_path.clone(),
            prom_labels: vec![
                ("strategy", strategy.to_owned()),
                ("kernel", options.kernel.as_arg().to_owned()),
                ("estimator", options.estimator.as_arg().to_owned()),
            ],
            watchdog: None,
            plan_emitted: plan_already_frozen,
        }
    }

    /// Append one event line (no-op without `--events`).
    fn emit(&mut self, event: &str, elapsed_s: f64, extra: &str) {
        if let Some(log) = self.events.as_mut() {
            log.emit(event, elapsed_s, extra);
        }
    }

    fn flush_events(&mut self) {
        if let Some(log) = self.events.as_mut() {
            log.flush();
        }
    }

    /// Rewrite the Prometheus exposition (no-op without `--prom`).
    fn write_prom(&self) {
        if let Some(path) = &self.prom_path {
            if let Err(e) = metrics::write_prom(path, &self.registry, &self.prom_labels) {
                eprintln!("failed to write prom exposition {}: {e}", path.display());
            }
        }
    }
}

fn validate_checkpoint(
    ck: &CampaignCheckpoint,
    path: &std::path::Path,
    seed: u64,
    n: usize,
    strategy: &str,
    kernel: CampaignKernel,
    estimator: EstimatorKind,
) {
    let mut mismatches = Vec::new();
    if ck.seed != seed {
        mismatches.push(format!("seed {} != {}", ck.seed, seed));
    }
    if ck.requested_runs != n {
        mismatches.push(format!("requested runs {} != {}", ck.requested_runs, n));
    }
    if ck.chunk_runs != CHUNK_RUNS {
        mismatches.push(format!("chunk size {} != {}", ck.chunk_runs, CHUNK_RUNS));
    }
    if ck.strategy != strategy {
        mismatches.push(format!("strategy {:?} != {:?}", ck.strategy, strategy));
    }
    if ck.kernel != kernel {
        mismatches.push(format!(
            "kernel {:?} != {:?}",
            ck.kernel.as_arg(),
            kernel.as_arg()
        ));
    }
    if ck.estimator != estimator {
        mismatches.push(format!(
            "estimator {:?} != {:?}",
            ck.estimator.as_arg(),
            estimator.as_arg()
        ));
    }
    if ck.estimator == EstimatorKind::Mlmc && ck.mlmc.is_none() {
        mismatches.push("corrupt mlmc checkpoint: per-level state missing".to_owned());
    }
    if ck.boundaries.len() != ck.merged_chunks {
        mismatches.push(format!(
            "corrupt cursor: {} boundaries for {} merged chunks",
            ck.boundaries.len(),
            ck.merged_chunks
        ));
    }
    if !mismatches.is_empty() {
        panic!(
            "checkpoint {} does not match this campaign ({}); delete it or point \
             --checkpoint elsewhere",
            path.display(),
            mismatches.join(", ")
        );
    }
}

/// Run a campaign of `n` attacks with the given strategy and seed
/// (sequential; see [`run_campaign_with`] for the threaded form).
pub fn run_campaign(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    n: usize,
    seed: u64,
) -> CampaignResult {
    run_campaign_with(runner, strategy, n, seed, &CampaignOptions::default())
}

/// Run a campaign of `n` attacks across `options.threads` workers.
///
/// The runs are split into fixed-size shards (`CHUNK_RUNS`); workers
/// steal shard indices from a shared counter, and the partials are merged
/// **in shard order** with Chan's parallel mean/variance combine
/// ([`RunningStats::merge`]). Because each run's RNG derives from
/// `(seed, run_index)` and the partition never depends on the schedule, the
/// returned result is bit-identical at any thread count.
pub fn run_campaign_with(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    n: usize,
    seed: u64,
    options: &CampaignOptions,
) -> CampaignResult {
    run_campaign_observed(runner, strategy, n, seed, options, &mut NullObserver)
}

/// [`run_campaign_with`] plus a [`CampaignObserver`] receiving a
/// [`ProgressEvent`] at every merged chunk boundary.
///
/// The merge loop is incremental: as soon as the next in-order chunk
/// partial is available it is folded, the observer is notified, the
/// `--target-eps` stopping rule is evaluated, and (when due) a checkpoint
/// is written. Out-of-order partials from faster workers wait in a small
/// reorder buffer. Because all of that happens on the merged *prefix* —
/// which is a pure function of `(seed, n, strategy)` — the event stream,
/// the stopping point, and any checkpoint are identical at any thread
/// count and under either kernel; only the wall-clock fields differ.
pub fn run_campaign_observed(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    n: usize,
    seed: u64,
    options: &CampaignOptions,
    observer: &mut dyn CampaignObserver,
) -> CampaignResult {
    let start_time = Instant::now();
    let chunks = n.div_ceil(CHUNK_RUNS);
    let chunk_bounds = |c: usize| (c * CHUNK_RUNS, ((c + 1) * CHUNK_RUNS).min(n));

    let mut state = MergeState {
        estimator: options.estimator,
        ..MergeState::default()
    };
    if let Some(path) = &options.checkpoint_path {
        match CampaignCheckpoint::load(path) {
            Ok(Some(ck)) => {
                validate_checkpoint(
                    &ck,
                    path,
                    seed,
                    n,
                    strategy.name(),
                    options.kernel,
                    options.estimator,
                );
                state = MergeState::from_checkpoint(ck);
            }
            Ok(None) => {}
            Err(e) => panic!("failed to read checkpoint {}: {e}", path.display()),
        }
    }
    // MLMC machinery: the SET → multi-bit-SEU map the cheap level injects
    // through, and the chunk-level plan cell. The pilot chunks use the
    // fixed alternating schedule; the post-pilot schedule is published by
    // the merger the moment the pilot is fully merged (or restored from a
    // checkpoint). Workers claiming a post-pilot chunk spin on the cell —
    // deadlock-free because chunk indices are claimed in order, so the
    // pilot chunks are always in flight before any worker needs the plan.
    let mlmc_on = options.estimator == EstimatorKind::Mlmc;
    let seu_map = mlmc_on.then(|| SetToSeuMap::build(runner.model, runner.eval, runner.prechar));
    let plan_cell: OnceLock<MlmcPlan> = OnceLock::new();
    if let Some(ratio) = state.plan_ratio {
        let _ = plan_cell.set(MlmcPlan { ratio });
    }
    let start_chunk = state.merged_chunks;
    let resumed_runs = state.runs_merged();
    let checkpoint_every_chunks = options.checkpoint_every_runs.div_ceil(CHUNK_RUNS).max(1);

    let mut hub = TelemetryHub::new(options, strategy.name(), state.plan_ratio.is_some());
    hub.emit(
        "campaign_started",
        0.0,
        &format!(
            ", \"seed\": {seed}, \"requested_runs\": {n}, \"kernel\": \"{}\", \
             \"estimator\": \"{}\", \"threads\": {}, \"resumed_runs\": {resumed_runs}",
            options.kernel.as_arg(),
            options.estimator.as_arg(),
            options.effective_threads(),
        ),
    );

    // Everything that happens at a merged chunk boundary, after the fold:
    // update the telemetry registry, stream the chunk_merged event, notify
    // the observer, evaluate the stopping rule, write a checkpoint (and at
    // the same cadence, flush the event log and rewrite the prom
    // exposition). Ordering matters for resume determinism — a stop
    // decision precedes the checkpoint write, so a checkpoint's cursor
    // never passes the first stopping boundary and a resumed campaign
    // re-derives the exact same stop point.
    let boundary = |state: &MergeState,
                    observer: &mut dyn CampaignObserver,
                    hub: &mut TelemetryHub,
                    info: ChunkMergeInfo|
     -> Option<StopReason> {
        let runs_done = state.runs_merged();
        let elapsed_s = start_time.elapsed().as_secs_f64();
        let fresh = (runs_done - resumed_runs) as f64;
        let runs_per_sec = if elapsed_s > 0.0 {
            fresh / elapsed_s
        } else {
            0.0
        };
        let reg = &mut hub.registry;
        reg.counter_set("runs_total", runs_done as u64);
        reg.counter_set("chunks_merged_total", state.merged_chunks as u64);
        reg.counter_set("successes_total", state.successes as u64);
        reg.gauge_set("ssf", state.current_ssf());
        reg.gauge_set("sample_variance", state.current_sample_variance());
        reg.gauge_set("ess", state.ess());
        reg.gauge_set("elapsed_seconds", elapsed_s);
        reg.gauge_set("runs_per_sec", runs_per_sec);
        if let Some(eps) = options.target_eps {
            reg.gauge_set("lln_bound", state.lln_bound(eps));
        }
        if hub.events.is_some() {
            // The chunk's exact Welford triple rides along as IEEE-754
            // bits, so the final SSF is rebuildable from the log alone.
            let (count, mean, m2) = info.stats.to_raw();
            let extra = format!(
                ", \"chunk\": {}, \"level\": {}, \"runs_done\": {runs_done}, \
                 \"count\": {count}, \"mean_bits\": {}, \"m2_bits\": {}, \"ssf_bits\": {}",
                info.chunk,
                info.level,
                bits_str(mean),
                bits_str(m2),
                bits_str(state.current_ssf()),
            );
            hub.emit("chunk_merged", elapsed_s, &extra);
        }
        if !hub.plan_emitted {
            if let Some(ratio) = state.plan_ratio {
                hub.plan_emitted = true;
                hub.emit(
                    "plan_frozen",
                    elapsed_s,
                    &format!(
                        ", \"chunk\": {}, \"ratio\": {}",
                        state.merged_chunks,
                        json_num(ratio)
                    ),
                );
            }
        }
        if let Some(wd) = hub.watchdog.as_mut() {
            wd.note_progress(Instant::now());
        }
        let event = ProgressEvent {
            runs_done,
            total_runs: n,
            ssf: state.current_ssf(),
            sample_variance: state.current_sample_variance(),
            ess: state.ess(),
            target_eps: options.target_eps,
            lln_bound: options.target_eps.map(|eps| state.lln_bound(eps)),
            class_counts: state.class_counts,
            counters: state.counters,
            kernel_counters: state.kernel_counters,
            elapsed_s,
            runs_per_sec,
            mlmc: (options.estimator == EstimatorKind::Mlmc).then(|| MlmcProgress {
                level: info.level,
                n0: state.level0.count(),
                n1: state.level1_diff.count(),
            }),
            chunk_wall: hub.registry.latency.chunk_wall.summary(),
        };
        if observer.on_progress(&event) == ObserverAction::Abort {
            return Some(StopReason::Aborted);
        }
        if let Some(eps) = options.target_eps {
            if runs_done >= EARLY_STOP_MIN_RUNS
                && state.levels_ready()
                && state.lln_bound(eps) <= 1.0 - options.target_confidence
            {
                hub.emit(
                    "early_stop",
                    elapsed_s,
                    &format!(
                        ", \"runs_done\": {runs_done}, \"lln_bound\": {}, \"target_eps\": {}",
                        json_num(state.lln_bound(eps)),
                        json_num(eps)
                    ),
                );
                return Some(StopReason::TargetEps);
            }
        }
        let merged_since_start = state.merged_chunks - start_chunk;
        if merged_since_start.is_multiple_of(checkpoint_every_chunks)
            || state.merged_chunks == chunks
        {
            if let Some(path) = &options.checkpoint_path {
                let t_ck = Instant::now();
                state
                    .to_checkpoint(seed, n, strategy.name(), options.kernel)
                    .save(path)
                    .unwrap_or_else(|e| {
                        panic!("failed to write checkpoint {}: {e}", path.display())
                    });
                hub.registry
                    .latency
                    .checkpoint_write
                    .record(t_ck.elapsed().as_secs_f64());
                hub.registry.counter_add("checkpoints_written_total", 1);
                hub.emit(
                    "checkpoint_written",
                    start_time.elapsed().as_secs_f64(),
                    &format!(
                        ", \"runs_done\": {runs_done}, \"merged_chunks\": {}",
                        state.merged_chunks
                    ),
                );
            }
            // Durability point: events pushed to the OS, prom rewritten.
            hub.flush_events();
            hub.write_prom();
        }
        None
    };

    // Span tracing never feeds the statistics (it only reads the clock),
    // and provenance is copied *out* of the fold — so neither can change a
    // result bit. Provenance is recorded whenever the trace file or a
    // replay needs it.
    let sink = if options.trace_path.is_some() {
        TraceSink::enabled()
    } else {
        TraceSink::disabled()
    };
    let record_provenance = options.trace_path.is_some() || options.replay.is_some();
    let mut ring: VecDeque<ProvenanceRecord> = VecDeque::new();
    let mut success_log: Vec<ProvenanceRecord> = Vec::new();
    let mut replay_capture: Option<ProvenanceRecord> = None;

    let mut stop = StopReason::Completed;
    // Schedule-dependent fast-forward counters, folded in from every worker
    // scratch at thread exit; they surface in the metrics JSON only.
    let ff_total = Mutex::new(FastForwardStats::default());
    // Conclusion-memo front totals (hits, shared fallbacks), same lifecycle.
    let front_total = Mutex::new((0u64, 0u64));
    // Merge-path scheduling observability; all schedule-dependent.
    let mut merge_wait_s = 0.0f64;
    let mut reorder_peak = 0usize;
    let mut workers = 0usize;
    if start_chunk < chunks {
        let threads = options.effective_threads().clamp(1, chunks - start_chunk);
        // Workers of the batched kernel share one lazily-filled cycle-value
        // cache (the values are a pure function of the injection cycle), so
        // adding threads no longer multiplies the warmup work. The MLMC
        // executors are scalar by design (the correction level is sampled
        // rarely, the cheap level never strikes the netlist), so they skip
        // the cache — which is also what makes `--estimator mlmc` results
        // trivially identical under all three kernels.
        let cycle_cache = match options.kernel {
            _ if mlmc_on => None,
            CampaignKernel::Scalar => None,
            _ => Some(SharedCycleCache::new(runner.eval.golden.cycles)),
        };
        // All workers share one conclusion memo: the verdict is a pure
        // function of `(T_e, post-hardening bits)`, so a pattern concluded
        // on any thread is a hit everywhere and sharing never changes a
        // result bit (racing duplicate computes insert identical values).
        let memo = SharedConclusionMemo::default();
        let memo = &memo;
        let ff_total = &ff_total;
        let sink = &sink;
        let seu_map = &seu_map;
        let plan_cell = &plan_cell;
        // Shared with the plan-cell spin below: an aborting merger can
        // exit before the pilot is fully folded, in which case the plan
        // is never published and waiting workers must bail instead.
        let stop_flag = AtomicBool::new(false);
        let stop_flag = &stop_flag;
        let run_one = |c: usize,
                       flow: &mut FlowScratch,
                       batch: &mut BatchChunkScratch,
                       mlmc: &mut MlmcScratch,
                       ctr: &mut CounterScratch,
                       tid: u32|
         -> ChunkPartial {
            let (start, end) = chunk_bounds(c);
            let _span = sink.span_args(tid, "campaign", "chunk", &[("chunk", c as f64)]);
            let chunk_t0 = Instant::now();
            let mut p = if let Some(map) = seu_map {
                let level = if c < MlmcEstimator::PILOT_CHUNKS {
                    MlmcEstimator::pilot_level(c)
                } else {
                    // The plan is published by the merger once the pilot
                    // prefix is folded; chunk indices are claimed in order,
                    // so the pilot is always in flight ahead of this wait.
                    // The wait can only end without a plan when an observer
                    // aborted mid-pilot and the merger left — the returned
                    // placeholder is behind the merge cursor and never folds.
                    let plan = loop {
                        if let Some(p) = plan_cell.get() {
                            break p;
                        }
                        if stop_flag.load(Ordering::Relaxed) {
                            return ChunkPartial::default();
                        }
                        std::thread::yield_now();
                    };
                    plan.level_of_chunk(c)
                };
                if level == LEVEL_RTL {
                    multilevel::run_chunk_level0(
                        runner,
                        strategy,
                        map,
                        seed,
                        start,
                        end,
                        mlmc,
                        memo,
                        ctr,
                        options.replay,
                    )
                } else {
                    multilevel::run_chunk_level1(
                        runner,
                        strategy,
                        map,
                        seed,
                        start,
                        end,
                        mlmc,
                        memo,
                        ctr,
                        record_provenance,
                    )
                }
            } else {
                match (options.kernel, &cycle_cache) {
                    (CampaignKernel::Compiled, Some(cache)) => run_chunk_compiled(
                        runner,
                        strategy,
                        seed,
                        start,
                        end,
                        batch,
                        cache,
                        memo,
                        ctr,
                        record_provenance,
                        sink,
                        tid,
                    ),
                    (_, Some(cache)) => run_chunk_batched(
                        runner,
                        strategy,
                        seed,
                        start,
                        end,
                        batch,
                        cache,
                        memo,
                        ctr,
                        record_provenance,
                        sink,
                        tid,
                    ),
                    (_, None) => run_chunk(
                        runner,
                        strategy,
                        seed,
                        start,
                        end,
                        flow,
                        memo,
                        ctr,
                        record_provenance,
                    ),
                }
            };
            // Harvest worker-side latency into the partial: the shard
            // rides the same in-order merge the statistics use, keeping
            // the telemetry deterministic in shape (counts differ only
            // in wall-clock values, never in which chunk they tag).
            p.latency.absorb(&flow.take_latency());
            p.latency.absorb(&batch.take_latency());
            p.latency.absorb(&mlmc.take_latency());
            p.latency
                .chunk_wall
                .record(chunk_t0.elapsed().as_secs_f64());
            p
        };
        let front_total = &front_total;
        let fold_ff = |flow: &FlowScratch, batch: &BatchChunkScratch, mlmc: &MlmcScratch| {
            let mut total = ff_total
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            total.add(&flow.fast_forward_stats());
            total.add(&batch.fast_forward_stats());
            total.add(&mlmc.fast_forward_stats());
            let (h, m) = batch.memo_front_stats();
            let mut ft = front_total
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            ft.0 += h;
            ft.1 += m;
        };

        workers = threads;
        if threads <= 1 {
            let mut flow = FlowScratch::default();
            let mut batch = BatchChunkScratch::default();
            let mut mlmc_scratch = MlmcScratch::default();
            flow.set_fast_forward(options.fast_forward);
            batch.set_fast_forward(options.fast_forward);
            mlmc_scratch.set_fast_forward(options.fast_forward);
            let mut ctr = CounterScratch::default();
            for c in start_chunk..chunks {
                let mut p = run_one(c, &mut flow, &mut batch, &mut mlmc_scratch, &mut ctr, 0);
                let prov = std::mem::take(&mut p.provenance);
                let level = p.level;
                let lat = std::mem::take(&mut p.latency);
                let info = ChunkMergeInfo {
                    chunk: c,
                    level,
                    stats: p.stats,
                };
                state.fold(p, chunk_bounds(c).1);
                hub.registry.latency.absorb(&lat);
                if let Some(ratio) = state.plan_ratio {
                    let _ = plan_cell.set(MlmcPlan { ratio });
                }
                absorb_provenance(
                    prov,
                    level,
                    options.replay,
                    &mut ring,
                    &mut success_log,
                    &mut replay_capture,
                );
                if let Some(reason) = boundary(&state, observer, &mut hub, info) {
                    stop = reason;
                    break;
                }
            }
            fold_ff(&flow, &batch, &mlmc_scratch);
        } else {
            // Arm the stall watchdog only where stalls are observable:
            // the threaded merge loop, which can wait on recv while
            // workers grind. Needs the event log (the stall report is an
            // event) and a positive budget.
            if hub.events.is_some() && options.stall_timeout_s > 0.0 {
                hub.watchdog = Some(StallWatchdog::new(
                    Duration::from_secs_f64(options.stall_timeout_s),
                    Instant::now(),
                ));
            }
            // Which chunk each worker is currently executing
            // (`usize::MAX` = idle/between chunks) — the state dump a
            // worker_stalled event reports.
            let worker_states: Vec<AtomicUsize> =
                (0..threads).map(|_| AtomicUsize::new(usize::MAX)).collect();
            let worker_states = &worker_states;
            let next = AtomicUsize::new(start_chunk);
            let (tx, rx) = std::sync::mpsc::channel::<(usize, ChunkPartial)>();
            std::thread::scope(|s| {
                for (w, my_chunk) in worker_states.iter().enumerate() {
                    let tx = tx.clone();
                    let run_one = &run_one;
                    let next = &next;
                    let tid = (w + 1) as u32;
                    let fold_ff = &fold_ff;
                    s.spawn(move || {
                        let mut flow = FlowScratch::default();
                        let mut batch = BatchChunkScratch::default();
                        let mut mlmc_scratch = MlmcScratch::default();
                        flow.set_fast_forward(options.fast_forward);
                        batch.set_fast_forward(options.fast_forward);
                        mlmc_scratch.set_fast_forward(options.fast_forward);
                        let mut ctr = CounterScratch::default();
                        loop {
                            if stop_flag.load(Ordering::Relaxed) {
                                break;
                            }
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= chunks {
                                break;
                            }
                            my_chunk.store(c, Ordering::Relaxed);
                            // A send fails only when the merger has
                            // stopped and dropped the receiver.
                            let p =
                                run_one(c, &mut flow, &mut batch, &mut mlmc_scratch, &mut ctr, tid);
                            my_chunk.store(usize::MAX, Ordering::Relaxed);
                            if tx.send((c, p)).is_err() {
                                break;
                            }
                        }
                        fold_ff(&flow, &batch, &mlmc_scratch);
                    });
                }
                drop(tx);
                // Reorder buffer for partials that arrive ahead of the
                // merge cursor; folds always happen in chunk order.
                let mut pending: BTreeMap<usize, ChunkPartial> = BTreeMap::new();
                'merge: while state.merged_chunks < chunks {
                    let wait = Instant::now();
                    // With a watchdog armed, wait in budget-sized slices
                    // so a silent worker pool is reported instead of
                    // blocking forever unobserved.
                    let received = loop {
                        match hub.watchdog.as_ref().map(StallWatchdog::budget) {
                            None => break rx.recv().ok(),
                            Some(budget) => match rx.recv_timeout(budget) {
                                Ok(msg) => break Some(msg),
                                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                                    let now = Instant::now();
                                    let stalled =
                                        hub.watchdog.as_mut().and_then(|wd| wd.check(now));
                                    if let Some(stalled_for) = stalled {
                                        hub.registry.counter_add("stalls_total", 1);
                                        let dump: Vec<String> = worker_states
                                            .iter()
                                            .map(|st| match st.load(Ordering::Relaxed) {
                                                usize::MAX => "null".to_owned(),
                                                c => c.to_string(),
                                            })
                                            .collect();
                                        let extra = format!(
                                            ", \"stalled_for_s\": {}, \"budget_s\": {}, \
                                             \"merge_cursor\": {}, \"worker_chunks\": [{}]",
                                            json_num(stalled_for.as_secs_f64()),
                                            json_num(options.stall_timeout_s),
                                            state.merged_chunks,
                                            dump.join(", "),
                                        );
                                        hub.emit(
                                            "worker_stalled",
                                            start_time.elapsed().as_secs_f64(),
                                            &extra,
                                        );
                                        hub.flush_events();
                                    }
                                }
                                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break None,
                            },
                        }
                    };
                    let Some((c, p)) = received else { break };
                    let waited = wait.elapsed().as_secs_f64();
                    merge_wait_s += waited;
                    hub.registry.latency.merge_wait.record(waited);
                    pending.insert(c, p);
                    reorder_peak = reorder_peak.max(pending.len());
                    while let Some(mut p) = pending.remove(&state.merged_chunks) {
                        let chunk = state.merged_chunks;
                        let end = chunk_bounds(chunk).1;
                        let prov = std::mem::take(&mut p.provenance);
                        let level = p.level;
                        let lat = std::mem::take(&mut p.latency);
                        let info = ChunkMergeInfo {
                            chunk,
                            level,
                            stats: p.stats,
                        };
                        state.fold(p, end);
                        hub.registry.latency.absorb(&lat);
                        if let Some(ratio) = state.plan_ratio {
                            let _ = plan_cell.set(MlmcPlan { ratio });
                        }
                        absorb_provenance(
                            prov,
                            level,
                            options.replay,
                            &mut ring,
                            &mut success_log,
                            &mut replay_capture,
                        );
                        if let Some(reason) = boundary(&state, observer, &mut hub, info) {
                            stop = reason;
                            stop_flag.store(true, Ordering::Relaxed);
                            break 'merge;
                        }
                    }
                }
                drop(rx);
            });
        }
    }

    let elapsed_s = start_time.elapsed().as_secs_f64();
    let fresh = (state.runs_merged() - resumed_runs) as f64;
    let mut fast_forward = ff_total
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    fast_forward.enabled = options.fast_forward;
    let (front_hits, front_misses) = front_total
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let scheduler = SchedulerStats {
        workers,
        merge_wait_s,
        reorder_peak,
        memo_front_hits: front_hits,
        memo_front_misses: front_misses,
    };
    let program = match runner.model.mpu.netlist().program() {
        Ok(p) => ProgramStats {
            levels: p.levels(),
            gates: p.len(),
            lane_width: options.kernel.lane_width(),
            sweeps: state.kernel_counters.lane_batches,
        },
        Err(_) => ProgramStats {
            lane_width: options.kernel.lane_width(),
            ..ProgramStats::default()
        },
    };
    let meta = MetricsMeta {
        seed,
        requested_runs: n,
        target_eps: options.target_eps,
        target_confidence: options.target_confidence,
        elapsed_s,
        runs_per_sec: if elapsed_s > 0.0 {
            fresh / elapsed_s
        } else {
            0.0
        },
        host_cpus: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        fast_forward,
        kernel: options.kernel,
        program,
        scheduler,
        latency: hub.registry.latency.summaries(),
    };
    let result = state.into_result(strategy.name(), stop, options.trace_points);
    observer.on_finish(&result);

    // Replay before writing the trace so the replay spans land in the file.
    // The run is re-executed *at the level the campaign evaluated it*: under
    // MLMC a level-0 run's recorded verdict is the SEU-map conclusion, which
    // legitimately differs from the gate flow wherever the correction term
    // is non-zero — replaying the wrong level would spuriously fail the
    // cross-check below.
    if let Some(idx) = options.replay {
        let level = result
            .mlmc
            .as_ref()
            .and_then(|m| m.chunk_levels.get(idx as usize / CHUNK_RUNS))
            .copied()
            .unwrap_or(LEVEL_GATE);
        let rec = if level == LEVEL_RTL {
            let map = seu_map
                .as_ref()
                .expect("an MLMC result implies the SEU map was built");
            multilevel::replay_run_level0(runner, map, strategy, seed, idx)
        } else {
            replay_run(runner, strategy, seed, idx, &sink)
        };
        eprintln!(
            "[replay] run {idx} (level={}): t={} center={} radius={} phase={} te={:?} w={} \
             class={} success={} analytic={}",
            if level == LEVEL_RTL { "rtl" } else { "gate" },
            rec.t,
            rec.center.index(),
            rec.radius,
            rec.phase,
            rec.te,
            rec.weight,
            trace::class_str(rec.class),
            rec.success,
            rec.analytic,
        );
        match &replay_capture {
            Some(orig) => {
                assert_eq!(
                    *orig, rec,
                    "replay of run {idx} diverged from the campaign's provenance record"
                );
                eprintln!("[replay] verdict matches the campaign's record for run {idx}");
                hub.emit(
                    "replay_verified",
                    start_time.elapsed().as_secs_f64(),
                    &format!(", \"run\": {idx}, \"level\": {level}"),
                );
            }
            None => eprintln!(
                "[replay] run {idx} was not executed by this campaign invocation \
                 (n = {}, resumed prefix = {resumed_runs}); nothing to compare",
                result.n
            ),
        }
    }

    if let Some(path) = &options.trace_path {
        sink.print_self_time(strategy.name());
        let ff = &meta.fast_forward;
        eprintln!(
            "[fast-forward] {}: resumes {} | snapshot hits {} / misses {} (hit rate {:.1}%) | \
             early exits {} ({:.1}% of resumes, {} cycles skipped) | confirm failures {} | \
             evictions {}",
            if ff.enabled { "on" } else { "off" },
            ff.rtl_resumes,
            ff.checkpoint_cache_hits,
            ff.checkpoint_cache_misses,
            100.0 * ff.checkpoint_hit_rate(),
            ff.early_exits,
            100.0 * ff.early_exit_rate(),
            ff.cycles_skipped,
            ff.confirm_failures,
            ff.checkpoint_cache_evictions,
        );
        eprintln!(
            "[kernel] {}: {} levels x {} gates, {} lanes/sweep, {} sweeps",
            meta.kernel.as_arg(),
            meta.program.levels,
            meta.program.gates,
            meta.program.lane_width,
            meta.program.sweeps,
        );
        eprintln!(
            "[scheduler] {} workers | merge wait {:.3}s | reorder peak {} | \
             memo front hits {} / shared fallbacks {}",
            meta.scheduler.workers,
            meta.scheduler.merge_wait_s,
            meta.scheduler.reorder_peak,
            meta.scheduler.memo_front_hits,
            meta.scheduler.memo_front_misses,
        );
        let ring: Vec<ProvenanceRecord> = ring.into_iter().collect();
        if let Err(e) = trace::write_trace(
            path,
            &sink,
            &result.counters,
            &result.kernel_counters,
            &ring,
            &success_log,
        ) {
            eprintln!("failed to write trace {}: {e}", path.display());
        }
    }

    hub.registry.gauge_set("workers", workers as f64);
    hub.emit(
        "campaign_finished",
        start_time.elapsed().as_secs_f64(),
        &format!(
            ", \"stop_reason\": \"{}\", \"n\": {}, \"ssf_bits\": {}, \"successes\": {}",
            result.stop.as_str(),
            result.n,
            bits_str(result.ssf),
            result.successes,
        ),
    );
    hub.flush_events();
    hub.write_prom();

    if let Some(path) = &options.metrics_path {
        if let Err(e) = telemetry::write_metrics(path, &result, &meta) {
            eprintln!("failed to write metrics {}: {e}", path.display());
        }
    }
    result
}

/// Absorb one merged chunk's provenance: keep the trailing
/// [`PROVENANCE_RING_CAP`] records, every success, and the `--replay`
/// target's record. Called in chunk order, so the ring holds the last runs
/// of the merged prefix.
fn absorb_provenance(
    prov: Vec<ProvenanceRecord>,
    level: u8,
    replay_target: Option<u64>,
    ring: &mut VecDeque<ProvenanceRecord>,
    successes: &mut Vec<ProvenanceRecord>,
    capture: &mut Option<ProvenanceRecord>,
) {
    for rec in prov {
        if replay_target == Some(rec.run_index) {
            *capture = Some(rec.clone());
        }
        // A level-0 chunk's only record is the replay target; the trace
        // ring and the success log stay gate-level notions.
        if level == LEVEL_RTL {
            continue;
        }
        if rec.success {
            successes.push(rec.clone());
        }
        ring.push_back(rec);
        if ring.len() > PROVENANCE_RING_CAP {
            ring.pop_front();
        }
    }
}

/// Re-derive and re-execute campaign run `run_index` solo: the same
/// `SplitMix64::for_run(seed, run_index)` stream, a fresh scratch, full
/// span tracing. Returns the run's provenance record, which must equal the
/// campaign's (the run is a pure function of `(seed, run_index, strategy)`).
pub fn replay_run(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    run_index: u64,
    sink: &TraceSink,
) -> ProvenanceRecord {
    let _run = sink.span_args(0, "replay", "replay-run", &[("run", run_index as f64)]);
    let mut rng = SplitMix64::for_run(seed, run_index);
    let (sample, w) = {
        let _draw = sink.span("replay", "draw");
        let sample = strategy.draw(&mut rng);
        let w = strategy.weight(&sample);
        (sample, w)
    };
    let mut scratch = FlowScratch::default();
    let outcome = {
        let _exec = sink.span("replay", "strike+conclude");
        runner
            .run_with(&sample, &mut rng, &mut scratch)
            .to_outcome()
    };
    ProvenanceRecord {
        run_index,
        t: sample.t,
        center: sample.center,
        radius: sample.radius,
        phase: sample.phase,
        te: outcome.injection_cycle,
        weight: w,
        class: outcome.class,
        success: outcome.success,
        analytic: outcome.analytic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Evaluation, SystemModel};
    use crate::precharacterize::Precharacterization;
    use crate::sampling::{
        baseline_distribution, ExperimentConfig, ImportanceSampling, RandomSampling,
    };
    use xlmc_soc::workloads;

    struct Fixture {
        model: SystemModel,
        eval: Evaluation,
        prechar: Precharacterization,
        cfg: ExperimentConfig,
    }

    fn fixture() -> Fixture {
        let model = SystemModel::with_defaults().unwrap();
        let eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let cfg = ExperimentConfig {
            t_max: 20,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            eval,
            prechar,
            cfg,
        }
    }

    fn runner(f: &Fixture) -> FaultRunner<'_> {
        FaultRunner {
            model: &f.model,
            eval: &f.eval,
            prechar: &f.prechar,
            hardening: None,
            multi_fault: None,
        }
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn random_campaign_produces_consistent_counters() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let result = run_campaign(&r, &strat, 400, 42);
        assert_eq!(result.n, 400);
        assert_eq!(result.class_counts.total(), 400);
        assert_eq!(
            result.class_counts.memory_only + result.class_counts.mixed,
            result.analytic_runs + result.rtl_runs
        );
        assert!((0.0..=1.0).contains(&result.ssf));
        assert_eq!(result.trace.last().unwrap().0, 400);
        assert_eq!(result.strategy, "random");
        assert_eq!(result.stop, StopReason::Completed);
        // The baseline draws unit weights, so ESS equals n exactly.
        assert_eq!(result.ess, 400.0);
    }

    #[test]
    fn random_campaign_finds_some_successes() {
        // The sub-block contains persistent config cells; with t up to 20
        // and 400 shots the baseline should land a few.
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let result = run_campaign(&r, &strat, 400, 7);
        assert!(result.successes > 0, "no successes in 400 random shots");
        assert!(result.ssf > 0.0);
        assert!(!result.attribution.is_empty());
    }

    #[test]
    fn importance_campaign_matches_random_estimate() {
        // Unbiasedness end-to-end: both estimators target the same SSF.
        let f = fixture();
        let r = runner(&f);
        let fd = baseline_distribution(&f.model, &f.cfg);
        let random = RandomSampling::new(fd.clone());
        let is = ImportanceSampling::new(
            fd,
            &f.model,
            &f.prechar,
            f.cfg.alpha,
            f.cfg.beta,
            f.cfg.radius_options.clone(),
        );
        let a = run_campaign(&r, &random, 1200, 1);
        let b = run_campaign(&r, &is, 1200, 2);
        assert!(a.ssf > 0.0 && b.ssf > 0.0);
        let ratio = a.ssf / b.ssf;
        assert!(
            (0.3..=3.0).contains(&ratio),
            "random {} vs importance {}",
            a.ssf,
            b.ssf
        );
        // A skewed proposal has non-unit weights, so its ESS drops below n
        // but must stay positive.
        assert!(b.ess > 0.0 && b.ess <= 1200.0 + 1e-9, "ess {}", b.ess);
    }

    #[test]
    fn importance_variance_is_much_smaller() {
        // The headline claim: importance sampling slashes the sample
        // variance (paper: 0.0261 -> 9.7e-5).
        let f = fixture();
        let r = runner(&f);
        let fd = baseline_distribution(&f.model, &f.cfg);
        let random = RandomSampling::new(fd.clone());
        let is = ImportanceSampling::new(
            fd,
            &f.model,
            &f.prechar,
            f.cfg.alpha,
            f.cfg.beta,
            f.cfg.radius_options.clone(),
        );
        let a = run_campaign(&r, &random, 800, 10);
        let b = run_campaign(&r, &is, 800, 11);
        assert!(
            b.sample_variance < a.sample_variance,
            "importance {} !< random {}",
            b.sample_variance,
            a.sample_variance
        );
        assert!(b.lln_bound(0.01) < a.lln_bound(0.01));
    }

    #[test]
    fn masked_strikes_dominate() {
        // Paper Figure 10(a): most strikes are masked.
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let result = run_campaign(&r, &strat, 300, 20);
        let (masked, _, _) = result.class_counts.fractions();
        assert!(masked > 0.3, "masked fraction {masked}");
    }

    #[test]
    fn trace_has_no_duplicate_points_and_ends_at_n() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        // n both divisible and not divisible by the shard size, n < shard
        // size, and n below the old 200-point threshold (the historical
        // duplicate-final-point case).
        for n in [32, 64, 150, 190, 200, 333] {
            let result = run_campaign(&r, &strat, n, 5);
            let trace = &result.trace;
            assert_eq!(trace.last().unwrap().0, n, "n = {n}");
            for w in trace.windows(2) {
                assert!(w[0].0 < w[1].0, "n = {n}: non-increasing trace {trace:?}");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let sequential = run_campaign_with(&r, &strat, 200, 13, &CampaignOptions::with_threads(1));
        for threads in [2, 4, 7] {
            let parallel =
                run_campaign_with(&r, &strat, 200, 13, &CampaignOptions::with_threads(threads));
            assert_eq!(sequential.ssf, parallel.ssf, "threads = {threads}");
            assert_eq!(
                sequential.sample_variance, parallel.sample_variance,
                "threads = {threads}"
            );
            assert_eq!(sequential.successes, parallel.successes);
            assert_eq!(sequential.class_counts, parallel.class_counts);
            assert_eq!(sequential.analytic_runs, parallel.analytic_runs);
            assert_eq!(sequential.rtl_runs, parallel.rtl_runs);
            assert_eq!(sequential.attribution, parallel.attribution);
            assert_eq!(sequential.trace, parallel.trace);
            assert_eq!(sequential.ess, parallel.ess);
        }
    }

    #[test]
    fn kernel_choice_does_not_change_the_result() {
        // The full campaign result — estimate, variance, trace, class
        // split, attribution — is bit-identical between the scalar and the
        // 64-lane batched kernel, for every strategy and thread count.
        let f = fixture();
        let r = runner(&f);
        let fd = baseline_distribution(&f.model, &f.cfg);
        let strategies: Vec<Box<dyn SamplingStrategy>> = vec![
            Box::new(RandomSampling::new(fd.clone())),
            Box::new(crate::sampling::ConeSampling::new(
                fd.clone(),
                &f.prechar,
                f.cfg.radius_options.clone(),
            )),
            Box::new(ImportanceSampling::new(
                fd,
                &f.model,
                &f.prechar,
                f.cfg.alpha,
                f.cfg.beta,
                f.cfg.radius_options.clone(),
            )),
        ];
        for strat in &strategies {
            let scalar = run_campaign_with(
                &r,
                strat.as_ref(),
                500,
                17,
                &CampaignOptions::with_kernel(CampaignKernel::Scalar),
            );
            for kernel in [CampaignKernel::Batched, CampaignKernel::Compiled] {
                for threads in [1usize, 2, 4] {
                    let opts = CampaignOptions {
                        threads,
                        ..CampaignOptions::with_kernel(kernel)
                    };
                    let packed = run_campaign_with(&r, strat.as_ref(), 500, 17, &opts);
                    // Kernel-shape counters (lane occupancy, batch-wide
                    // worklist visits) legitimately differ between kernels;
                    // everything else must be bit-identical.
                    let mut packed = packed;
                    packed.kernel_counters = scalar.kernel_counters;
                    assert_eq!(
                        scalar,
                        packed,
                        "strategy {} kernel {kernel:?} threads {threads}",
                        strat.name()
                    );
                }
            }
        }
    }

    #[test]
    fn packed_kernels_handle_partial_tail_batches() {
        // runs not divisible by the lane width must not drop or duplicate
        // runs: each packed kernel equals the scalar reference at every
        // tail shape (64-lane boundaries for batched, 256-lane boundaries
        // for compiled, plus odd tails around both).
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        for n in [1usize, 63, 64, 65, 127, 128, 129, 191, 255, 256, 257] {
            let scalar = run_campaign_with(
                &r,
                &strat,
                n,
                23,
                &CampaignOptions::with_kernel(CampaignKernel::Scalar),
            );
            assert_eq!(scalar.n, n);
            assert_eq!(scalar.class_counts.total(), n, "n = {n}");
            for kernel in [CampaignKernel::Batched, CampaignKernel::Compiled] {
                let mut packed =
                    run_campaign_with(&r, &strat, n, 23, &CampaignOptions::with_kernel(kernel));
                packed.kernel_counters = scalar.kernel_counters;
                assert_eq!(scalar, packed, "kernel {kernel:?} n = {n}");
            }
        }
    }

    #[test]
    fn kernel_arg_parses() {
        let mut opts = CampaignOptions::default();
        assert_eq!(opts.kernel, CampaignKernel::Compiled);
        opts.set_kernel_arg("scalar");
        assert_eq!(opts.kernel, CampaignKernel::Scalar);
        opts.set_kernel_arg("batched");
        assert_eq!(opts.kernel, CampaignKernel::Batched);
        opts.set_kernel_arg("compiled");
        assert_eq!(opts.kernel, CampaignKernel::Compiled);
        opts.set_kernel_arg("bogus");
        assert_eq!(opts.kernel, CampaignKernel::Compiled);
    }

    #[test]
    fn campaign_options_resolve_threads() {
        assert_eq!(CampaignOptions::default().effective_threads(), 1);
        assert_eq!(CampaignOptions::with_threads(4).effective_threads(), 4);
        assert!(CampaignOptions::with_threads(0).effective_threads() >= 1);
    }

    #[test]
    fn bad_threads_value_is_an_error_not_a_silent_default() {
        // Regression: `--threads foo` used to be swallowed and the default
        // of 1 used, so a typo silently serialized a 32-core campaign.
        for argv in [
            args(&["--threads", "foo"]),
            args(&["--threads=foo"]),
            args(&["--threads", "-3"]),
            args(&["--threads"]),
        ] {
            let err = CampaignOptions::parse_args(argv.clone()).unwrap_err();
            assert!(err.contains("--threads"), "argv {argv:?}: {err}");
        }
        let ok = CampaignOptions::parse_args(args(&["--threads", "6"])).unwrap();
        assert_eq!(ok.threads, 6);
        let ok = CampaignOptions::parse_args(args(&["--threads=8"])).unwrap();
        assert_eq!(ok.threads, 8);
    }

    #[test]
    fn telemetry_args_parse_and_validate() {
        let opts = CampaignOptions::parse_args(args(&[
            "--target-eps",
            "0.01",
            "--target-confidence=0.99",
            "--metrics",
            "out/metrics.json",
            "--checkpoint=ck.json",
            "--checkpoint-every",
            "2048",
            "--some-caller-flag",
            "5000",
        ]))
        .unwrap();
        assert_eq!(opts.target_eps, Some(0.01));
        assert_eq!(opts.target_confidence, 0.99);
        assert_eq!(
            opts.metrics_path.as_deref(),
            Some(std::path::Path::new("out/metrics.json"))
        );
        assert_eq!(
            opts.checkpoint_path.as_deref(),
            Some(std::path::Path::new("ck.json"))
        );
        assert_eq!(opts.checkpoint_every_runs, 2048);

        assert!(CampaignOptions::parse_args(args(&["--target-eps", "-0.5"])).is_err());
        assert!(CampaignOptions::parse_args(args(&["--target-eps", "nope"])).is_err());
        assert!(CampaignOptions::parse_args(args(&["--target-confidence", "1.5"])).is_err());
        assert!(CampaignOptions::parse_args(args(&["--checkpoint-every", "0"])).is_err());
    }

    #[test]
    fn trace_and_replay_args_parse_and_validate() {
        let opts = CampaignOptions::parse_args(args(&["--trace", "out/trace.json", "--replay=42"]))
            .unwrap();
        assert_eq!(
            opts.trace_path.as_deref(),
            Some(std::path::Path::new("out/trace.json"))
        );
        assert_eq!(opts.replay, Some(42));
        assert!(CampaignOptions::parse_args(args(&["--replay", "nope"])).is_err());
        assert!(CampaignOptions::parse_args(args(&["--replay", "-1"])).is_err());
        assert!(CampaignOptions::parse_args(args(&["--trace"])).is_err());
    }

    #[test]
    fn usage_mentions_every_value_flag() {
        let usage = CampaignOptions::usage();
        for &flag in CampaignOptions::VALUE_FLAGS {
            assert!(usage.contains(flag), "usage is missing {flag}");
        }
        assert!(usage.contains("--help"), "usage is missing --help");
    }

    /// The inverse contract: every value flag the help table advertises is
    /// actually accepted by the parser (an unknown flag would be skipped
    /// and its value consumed as a positional by the caller).
    #[test]
    fn every_value_flag_round_trips_through_the_parser() {
        for &flag in CampaignOptions::VALUE_FLAGS {
            let value = match flag {
                "--kernel" => "scalar",
                "--estimator" => "mlmc",
                "--fast-forward" => "off",
                "--target-eps" => "0.01",
                "--target-confidence" => "0.9",
                "--stall-timeout" => "2.5",
                "--metrics" | "--checkpoint" | "--trace" | "--events" | "--prom" => "/tmp/x.json",
                _ => "3",
            };
            CampaignOptions::parse_args([flag.to_owned(), value.to_owned()])
                .unwrap_or_else(|e| panic!("{flag} rejected a valid value: {e}"));
            // A missing value must be a readable error, not a panic.
            let err = CampaignOptions::parse_args([flag.to_owned()]).unwrap_err();
            assert!(err.contains(flag), "{err:?} does not name {flag}");
        }
    }

    #[test]
    fn campaigns_are_seed_deterministic() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let a = run_campaign(&r, &strat, 150, 99);
        let b = run_campaign(&r, &strat, 150, 99);
        assert_eq!(a.ssf, b.ssf);
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.class_counts, b.class_counts);
    }

    #[test]
    fn observer_sees_every_chunk_boundary_in_order() {
        struct Collect(Vec<ProgressEvent>, usize);
        impl CampaignObserver for Collect {
            fn on_progress(&mut self, ev: &ProgressEvent) -> ObserverAction {
                self.0.push(ev.clone());
                ObserverAction::Continue
            }
            fn on_finish(&mut self, _r: &CampaignResult) {
                self.1 += 1;
            }
        }
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let n = 3 * CHUNK_RUNS + 100;
        let mut obs = Collect(Vec::new(), 0);
        let result =
            run_campaign_observed(&r, &strat, n, 31, &CampaignOptions::default(), &mut obs);
        assert_eq!(obs.1, 1, "on_finish fires once");
        assert_eq!(obs.0.len(), 4, "one event per chunk");
        assert_eq!(
            obs.0.iter().map(|e| e.runs_done).collect::<Vec<_>>(),
            vec![512, 1024, 1536, n]
        );
        let last = obs.0.last().unwrap();
        assert_eq!(last.ssf, result.ssf);
        assert_eq!(last.sample_variance, result.sample_variance);
        assert_eq!(last.ess, result.ess);
        assert_eq!(last.class_counts, result.class_counts);
    }

    #[test]
    fn observer_abort_stops_at_a_chunk_boundary() {
        struct AbortImmediately;
        impl CampaignObserver for AbortImmediately {
            fn on_progress(&mut self, _ev: &ProgressEvent) -> ObserverAction {
                ObserverAction::Abort
            }
        }
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let result = run_campaign_observed(
            &r,
            &strat,
            4 * CHUNK_RUNS,
            31,
            &CampaignOptions::default(),
            &mut AbortImmediately,
        );
        assert_eq!(result.stop, StopReason::Aborted);
        assert_eq!(result.n, CHUNK_RUNS);
        assert_eq!(result.class_counts.total(), CHUNK_RUNS);
    }

    #[test]
    fn target_eps_stops_early_and_meets_the_bound() {
        // A loose eps is satisfiable almost immediately, but never before
        // the EARLY_STOP_MIN_RUNS guard.
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let opts = CampaignOptions {
            target_eps: Some(0.5),
            ..CampaignOptions::default()
        };
        let result = run_campaign_with(&r, &strat, 8 * CHUNK_RUNS, 31, &opts);
        assert_eq!(result.stop, StopReason::TargetEps);
        assert_eq!(result.n, EARLY_STOP_MIN_RUNS);
        assert!(result.lln_bound(0.5) <= 1.0 - opts.target_confidence);
    }

    #[test]
    fn estimator_arg_parses() {
        let opts = CampaignOptions::parse_args(args(&["--estimator", "mlmc"])).unwrap();
        assert_eq!(opts.estimator, EstimatorKind::Mlmc);
        let opts = CampaignOptions::parse_args(args(&["--estimator=single"])).unwrap();
        assert_eq!(opts.estimator, EstimatorKind::Single);
        assert_eq!(CampaignOptions::default().estimator, EstimatorKind::Single);
        assert!(CampaignOptions::parse_args(args(&["--estimator", "both"])).is_err());
        assert!(CampaignOptions::parse_args(args(&["--estimator"])).is_err());
    }

    fn mlmc_opts() -> CampaignOptions {
        CampaignOptions {
            estimator: EstimatorKind::Mlmc,
            ..CampaignOptions::default()
        }
    }

    #[test]
    fn mlmc_summary_is_internally_consistent() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let n = 6 * CHUNK_RUNS;
        let result = run_campaign_with(&r, &strat, n, 42, &mlmc_opts());
        assert_eq!(result.estimator, EstimatorKind::Mlmc);
        assert_eq!(result.n, n);
        let m = result.mlmc.as_ref().expect("mlmc summary present");
        assert_eq!((m.n0 + m.n1) as usize, n);
        assert!(m.n0 > 0 && m.n1 > 0);
        // The pilot alternates starting with the coupled level, so the
        // correction stream is never empty.
        assert_eq!(&m.chunk_levels[..4], &[1, 0, 1, 0]);
        assert_eq!(m.chunk_levels.len(), n.div_ceil(CHUNK_RUNS));
        assert!(m.plan_ratio.is_some(), "plan frozen after the pilot");
        // The telescoped point estimate is the sum of the level means.
        assert!((result.ssf - (m.mean0 + m.mean1_diff)).abs() < 1e-15);
        assert!((0.0..=1.0).contains(&result.ssf));
        // Every run — cheap or coupled — is classified, so the class
        // split still covers the whole campaign.
        assert_eq!(result.class_counts.total(), n);
    }

    #[test]
    fn mlmc_result_is_thread_and_kernel_invariant() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let n = 6 * CHUNK_RUNS;
        let base = run_campaign_with(&r, &strat, n, 57, &mlmc_opts());
        for kernel in [
            CampaignKernel::Scalar,
            CampaignKernel::Batched,
            CampaignKernel::Compiled,
        ] {
            for threads in [1usize, 4] {
                let opts = CampaignOptions {
                    kernel,
                    threads,
                    ..mlmc_opts()
                };
                let got = run_campaign_with(&r, &strat, n, 57, &opts);
                // The MLMC executors are scalar at every level, so even the
                // kernel-shape counters are identical — full bit equality.
                assert_eq!(base, got, "kernel {kernel:?} threads {threads}");
            }
        }
    }

    #[test]
    fn mlmc_estimate_agrees_with_single() {
        // Both estimators are unbiased for the same SSF; with coupled
        // seeds the two point estimates from the same stream family must
        // land within a few combined standard errors of each other.
        let f = fixture();
        let r = runner(&f);
        let fd = baseline_distribution(&f.model, &f.cfg);
        let is = ImportanceSampling::new(
            fd,
            &f.model,
            &f.prechar,
            f.cfg.alpha,
            f.cfg.beta,
            f.cfg.radius_options.clone(),
        );
        let n = 8 * CHUNK_RUNS;
        let single = run_campaign_with(&r, &is, n, 5, &CampaignOptions::default());
        let mlmc = run_campaign_with(&r, &is, n, 5, &mlmc_opts());
        let m = mlmc.mlmc.as_ref().unwrap();
        let se = (single.sample_variance / n as f64 + m.estimator_variance())
            .sqrt()
            .max(1e-4);
        assert!(
            (single.ssf - mlmc.ssf).abs() <= 5.0 * se,
            "single {} vs mlmc {} (se {se})",
            single.ssf,
            mlmc.ssf
        );
    }

    #[test]
    fn mlmc_target_eps_stop_is_deterministic() {
        // The stopping rule must wait for both levels to have samples; the
        // alternating pilot guarantees that by the EARLY_STOP_MIN_RUNS
        // guard, so a loose eps stops at exactly the same prefix as the
        // single estimator would.
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let opts = CampaignOptions {
            target_eps: Some(0.5),
            ..mlmc_opts()
        };
        let result = run_campaign_with(&r, &strat, 8 * CHUNK_RUNS, 31, &opts);
        assert_eq!(result.stop, StopReason::TargetEps);
        assert_eq!(result.n, EARLY_STOP_MIN_RUNS);
        let m = result.mlmc.as_ref().unwrap();
        assert_eq!(m.chunk_levels, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "estimator")]
    fn checkpoint_estimator_mismatch_panics() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let dir = std::env::temp_dir().join(format!("xlmc-estmm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("ck.json");
        let _ = std::fs::remove_file(&ck);
        let opts = CampaignOptions {
            checkpoint_path: Some(ck.clone()),
            checkpoint_every_runs: CHUNK_RUNS,
            ..CampaignOptions::default()
        };
        run_campaign_with(&r, &strat, 2 * CHUNK_RUNS, 3, &opts);
        assert!(ck.is_file(), "single-estimator checkpoint written");
        let resume = CampaignOptions {
            checkpoint_path: Some(ck),
            ..mlmc_opts()
        };
        run_campaign_with(&r, &strat, 2 * CHUNK_RUNS, 3, &resume);
    }
}
