//! The Monte Carlo SSF estimator and campaign driver (paper §3.3).
//!
//! `SSF = E_{T,P}[E]` is estimated by `ŜSF = (1/N) Σ w_i · e_i` with
//! importance weights `w_i = f(s_i)/g(s_i)` supplied by the sampling
//! strategy. The campaign records everything the paper's evaluation section
//! reports: the convergence trace (Figure 9(a)), the sample variance
//! (Figure 9(b)), the strike-outcome split (Figure 10(a)), the
//! analytic-vs-RTL run counts, and the per-register SSF attribution that
//! drives the hardening study.

use crate::flow::{FaultRunner, StrikeClass};
use crate::sampling::SamplingStrategy;
use crate::stats::RunningStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xlmc_soc::MpuBit;

/// Counts of strike outcomes by class (paper Figure 10(a)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Strikes with no latched error.
    pub masked: usize,
    /// Errors only in memory-type registers.
    pub memory_only: usize,
    /// At least one computation-type register in error.
    pub mixed: usize,
}

impl ClassCounts {
    /// Total strikes counted.
    pub fn total(&self) -> usize {
        self.masked + self.memory_only + self.mixed
    }

    /// `(masked, memory_only, mixed)` as fractions of the total.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.masked as f64 / t,
            self.memory_only as f64 / t,
            self.mixed as f64 / t,
        )
    }
}

/// The result of one sampling campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Strategy name.
    pub strategy: String,
    /// Number of samples.
    pub n: usize,
    /// The SSF estimate `ŜSF`.
    pub ssf: f64,
    /// Sample variance of the weighted indicator `w · e` (the paper's
    /// Figure 9(b) metric).
    pub sample_variance: f64,
    /// Number of successful attacks (unweighted).
    pub successes: usize,
    /// Running-estimate trace `(n, ŜSF_n)` for convergence plots.
    pub trace: Vec<(usize, f64)>,
    /// Strike-class split.
    pub class_counts: ClassCounts,
    /// Runs settled by the analytical evaluator.
    pub analytic_runs: usize,
    /// Runs requiring RTL resume.
    pub rtl_runs: usize,
    /// Weighted success mass attributed to each faulty register.
    pub attribution: HashMap<MpuBit, f64>,
}

impl CampaignResult {
    /// The LLN bound on `Pr[|ŜSF − SSF| ≥ eps]` after `n` samples.
    pub fn lln_bound(&self, eps: f64) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        (self.sample_variance / (self.n as f64 * eps * eps)).min(1.0)
    }
}

/// Run a campaign of `n` attacks with the given strategy and seed.
pub fn run_campaign(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    n: usize,
    seed: u64,
) -> CampaignResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RunningStats::new();
    let mut trace = Vec::new();
    let trace_stride = (n / 200).max(1);
    let mut class_counts = ClassCounts::default();
    let mut analytic_runs = 0usize;
    let mut rtl_runs = 0usize;
    let mut successes = 0usize;
    let mut attribution: HashMap<MpuBit, f64> = HashMap::new();

    for i in 0..n {
        let sample = strategy.draw(&mut rng);
        let w = strategy.weight(&sample);
        let outcome = runner.run(&sample, &mut rng);
        match outcome.class {
            StrikeClass::Masked => class_counts.masked += 1,
            StrikeClass::MemoryOnly => class_counts.memory_only += 1,
            StrikeClass::Mixed => class_counts.mixed += 1,
        }
        if outcome.class != StrikeClass::Masked {
            if outcome.analytic {
                analytic_runs += 1;
            } else {
                rtl_runs += 1;
            }
        }
        let x = if outcome.success {
            successes += 1;
            for &bit in &outcome.faulty_bits {
                *attribution.entry(bit).or_insert(0.0) += w;
            }
            w
        } else {
            0.0
        };
        stats.push(x);
        if (i + 1) % trace_stride == 0 || i + 1 == n {
            trace.push((i + 1, stats.mean()));
        }
    }

    CampaignResult {
        strategy: strategy.name().to_owned(),
        n,
        ssf: stats.mean(),
        sample_variance: stats.variance(),
        successes,
        trace,
        class_counts,
        analytic_runs,
        rtl_runs,
        attribution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Evaluation, SystemModel};
    use crate::precharacterize::Precharacterization;
    use crate::sampling::{
        baseline_distribution, ExperimentConfig, ImportanceSampling, RandomSampling,
    };
    use xlmc_soc::workloads;

    struct Fixture {
        model: SystemModel,
        eval: Evaluation,
        prechar: Precharacterization,
        cfg: ExperimentConfig,
    }

    fn fixture() -> Fixture {
        let model = SystemModel::with_defaults().unwrap();
        let eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let cfg = ExperimentConfig {
            t_max: 20,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            eval,
            prechar,
            cfg,
        }
    }

    fn runner(f: &Fixture) -> FaultRunner<'_> {
        FaultRunner {
            model: &f.model,
            eval: &f.eval,
            prechar: &f.prechar,
            hardening: None,
        }
    }

    #[test]
    fn random_campaign_produces_consistent_counters() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let result = run_campaign(&r, &strat, 400, 42);
        assert_eq!(result.n, 400);
        assert_eq!(result.class_counts.total(), 400);
        assert_eq!(
            result.class_counts.memory_only + result.class_counts.mixed,
            result.analytic_runs + result.rtl_runs
        );
        assert!((0.0..=1.0).contains(&result.ssf));
        assert_eq!(result.trace.last().unwrap().0, 400);
        assert_eq!(result.strategy, "random");
    }

    #[test]
    fn random_campaign_finds_some_successes() {
        // The sub-block contains persistent config cells; with t up to 20
        // and 400 shots the baseline should land a few.
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let result = run_campaign(&r, &strat, 400, 7);
        assert!(result.successes > 0, "no successes in 400 random shots");
        assert!(result.ssf > 0.0);
        assert!(!result.attribution.is_empty());
    }

    #[test]
    fn importance_campaign_matches_random_estimate() {
        // Unbiasedness end-to-end: both estimators target the same SSF.
        let f = fixture();
        let r = runner(&f);
        let fd = baseline_distribution(&f.model, &f.cfg);
        let random = RandomSampling::new(fd.clone());
        let is = ImportanceSampling::new(
            fd,
            &f.model,
            &f.prechar,
            f.cfg.alpha,
            f.cfg.beta,
            f.cfg.radius_options.clone(),
        );
        let a = run_campaign(&r, &random, 1200, 1);
        let b = run_campaign(&r, &is, 1200, 2);
        assert!(a.ssf > 0.0 && b.ssf > 0.0);
        let ratio = a.ssf / b.ssf;
        assert!(
            (0.3..=3.0).contains(&ratio),
            "random {} vs importance {}",
            a.ssf,
            b.ssf
        );
    }

    #[test]
    fn importance_variance_is_much_smaller() {
        // The headline claim: importance sampling slashes the sample
        // variance (paper: 0.0261 -> 9.7e-5).
        let f = fixture();
        let r = runner(&f);
        let fd = baseline_distribution(&f.model, &f.cfg);
        let random = RandomSampling::new(fd.clone());
        let is = ImportanceSampling::new(
            fd,
            &f.model,
            &f.prechar,
            f.cfg.alpha,
            f.cfg.beta,
            f.cfg.radius_options.clone(),
        );
        let a = run_campaign(&r, &random, 800, 10);
        let b = run_campaign(&r, &is, 800, 11);
        assert!(
            b.sample_variance < a.sample_variance,
            "importance {} !< random {}",
            b.sample_variance,
            a.sample_variance
        );
        assert!(b.lln_bound(0.01) < a.lln_bound(0.01));
    }

    #[test]
    fn masked_strikes_dominate() {
        // Paper Figure 10(a): most strikes are masked.
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let result = run_campaign(&r, &strat, 300, 20);
        let (masked, _, _) = result.class_counts.fractions();
        assert!(masked > 0.3, "masked fraction {masked}");
    }

    #[test]
    fn campaigns_are_seed_deterministic() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let a = run_campaign(&r, &strat, 150, 99);
        let b = run_campaign(&r, &strat, 150, 99);
        assert_eq!(a.ssf, b.ssf);
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.class_counts, b.class_counts);
    }
}
