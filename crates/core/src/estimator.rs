//! The Monte Carlo SSF estimator and campaign driver (paper §3.3).
//!
//! `SSF = E_{T,P}[E]` is estimated by `ŜSF = (1/N) Σ w_i · e_i` with
//! importance weights `w_i = f(s_i)/g(s_i)` supplied by the sampling
//! strategy. The campaign records everything the paper's evaluation section
//! reports: the convergence trace (Figure 9(a)), the sample variance
//! (Figure 9(b)), the strike-outcome split (Figure 10(a)), the
//! analytic-vs-RTL run counts, and the per-register SSF attribution that
//! drives the hardening study.

use crate::batch::{run_chunk_batched, BatchChunkScratch, SharedCycleCache};
use crate::flow::{FaultRunner, FlowScratch, StrikeClass};
use crate::rng::SplitMix64;
use crate::sampling::SamplingStrategy;
use crate::stats::RunningStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use xlmc_soc::MpuBit;

/// Runs per shard. Fixed — independent of the thread count and of the
/// kernel — so the chunk partition, and therefore every merged statistic,
/// is a pure function of `(seed, n, strategy)`. Eight full 64-lane batches
/// per shard: the batched kernel stratifies a shard's runs by injection
/// frame before packing lanes, so a bigger shard means longer same-frame
/// stretches and fewer cycle-value groups per batch. The trace stays usable
/// because `trace_points` caps its resolution anyway.
const CHUNK_RUNS: usize = 512;

/// Counts of strike outcomes by class (paper Figure 10(a)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Strikes with no latched error.
    pub masked: usize,
    /// Errors only in memory-type registers.
    pub memory_only: usize,
    /// At least one computation-type register in error.
    pub mixed: usize,
}

impl ClassCounts {
    /// Total strikes counted.
    pub fn total(&self) -> usize {
        self.masked + self.memory_only + self.mixed
    }

    /// `(masked, memory_only, mixed)` as fractions of the total.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.masked as f64 / t,
            self.memory_only as f64 / t,
            self.mixed as f64 / t,
        )
    }
}

/// The result of one sampling campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Strategy name.
    pub strategy: String,
    /// Number of samples.
    pub n: usize,
    /// The SSF estimate `ŜSF`.
    pub ssf: f64,
    /// Sample variance of the weighted indicator `w · e` (the paper's
    /// Figure 9(b) metric).
    pub sample_variance: f64,
    /// Number of successful attacks (unweighted).
    pub successes: usize,
    /// Running-estimate trace `(n, ŜSF_n)` for convergence plots.
    pub trace: Vec<(usize, f64)>,
    /// Strike-class split.
    pub class_counts: ClassCounts,
    /// Runs settled by the analytical evaluator.
    pub analytic_runs: usize,
    /// Runs requiring RTL resume.
    pub rtl_runs: usize,
    /// Weighted success mass attributed to each faulty register. Ordered by
    /// bit so reports and serialized results are stable run-to-run.
    pub attribution: BTreeMap<MpuBit, f64>,
}

impl CampaignResult {
    /// The LLN bound on `Pr[|ŜSF − SSF| ≥ eps]` after `n` samples.
    pub fn lln_bound(&self, eps: f64) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        (self.sample_variance / (self.n as f64 * eps * eps)).min(1.0)
    }
}

/// Which per-chunk executor the campaign engine uses.
///
/// Both kernels produce bit-identical [`CampaignResult`]s (the lane
/// batching is transparent down to the last `f64` ulp); `Batched` is the
/// default because it amortizes each transient cone traversal over up to
/// 64 runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CampaignKernel {
    /// One run at a time through [`FaultRunner::run_with`].
    Scalar,
    /// Up to 64 runs per packed transient pass
    /// (`TransientSim::strike_batch_with`).
    #[default]
    Batched,
}

/// Knobs of the campaign engine, shared by every figure binary.
///
/// The thread count and the kernel are pure scheduling choices: campaign
/// results are bit-identical at any `threads` value and under either
/// kernel (see [`crate::rng`] and [`CampaignKernel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignOptions {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Upper bound on convergence-trace points (the trace records the
    /// running estimate at shard boundaries, downsampled to this many).
    pub trace_points: usize,
    /// The per-chunk executor.
    pub kernel: CampaignKernel,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            trace_points: 200,
            kernel: CampaignKernel::default(),
        }
    }
}

impl CampaignOptions {
    /// Options with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Options with an explicit kernel.
    pub fn with_kernel(kernel: CampaignKernel) -> Self {
        Self {
            kernel,
            ..Self::default()
        }
    }

    /// Parse `--threads N` and `--kernel scalar|batched` from the process
    /// arguments (used by the figure binaries); anything else is left for
    /// the caller.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--threads" {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    opts.threads = v;
                }
            } else if let Some(v) = a.strip_prefix("--threads=") {
                if let Ok(v) = v.parse() {
                    opts.threads = v;
                }
            } else if a == "--kernel" {
                if let Some(v) = args.next() {
                    opts.set_kernel_arg(&v);
                }
            } else if let Some(v) = a.strip_prefix("--kernel=") {
                opts.set_kernel_arg(v);
            }
        }
        opts
    }

    fn set_kernel_arg(&mut self, v: &str) {
        match v {
            "scalar" => self.kernel = CampaignKernel::Scalar,
            "batched" => self.kernel = CampaignKernel::Batched,
            other => eprintln!("ignoring unknown --kernel value {other:?}"),
        }
    }

    /// The concrete worker count (resolving `0` to the core count).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Everything one shard of runs accumulates; merged in shard order.
#[derive(Debug, Default)]
pub(crate) struct ChunkPartial {
    pub(crate) stats: RunningStats,
    pub(crate) class_counts: ClassCounts,
    pub(crate) analytic_runs: usize,
    pub(crate) rtl_runs: usize,
    pub(crate) successes: usize,
    pub(crate) attribution: BTreeMap<MpuBit, f64>,
}

/// Fold one run's outcome into a shard partial. Both kernels route every
/// run through this single accumulator (in run-index order), so the
/// Welford push sequence — and with it every campaign statistic — cannot
/// drift between the scalar and batched engines.
pub(crate) fn fold_run(
    p: &mut ChunkPartial,
    class: StrikeClass,
    analytic: bool,
    success: bool,
    w: f64,
    faulty_bits: &[MpuBit],
) {
    match class {
        StrikeClass::Masked => p.class_counts.masked += 1,
        StrikeClass::MemoryOnly => p.class_counts.memory_only += 1,
        StrikeClass::Mixed => p.class_counts.mixed += 1,
    }
    if class != StrikeClass::Masked {
        if analytic {
            p.analytic_runs += 1;
        } else {
            p.rtl_runs += 1;
        }
    }
    let x = if success {
        p.successes += 1;
        for &bit in faulty_bits {
            *p.attribution.entry(bit).or_insert(0.0) += w;
        }
        w
    } else {
        0.0
    };
    p.stats.push(x);
}

/// Execute runs `start..end` of the campaign, one at a time. Each run's
/// generator comes from `(seed, run_index)` alone, so a shard computes the
/// same partial on any worker.
fn run_chunk(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    start: usize,
    end: usize,
    scratch: &mut FlowScratch,
) -> ChunkPartial {
    let mut p = ChunkPartial::default();
    for i in start..end {
        let mut rng = SplitMix64::for_run(seed, i as u64);
        let sample = strategy.draw(&mut rng);
        let w = strategy.weight(&sample);
        let outcome = runner.run_with(&sample, &mut rng, scratch);
        fold_run(
            &mut p,
            outcome.class,
            outcome.analytic,
            outcome.success,
            w,
            outcome.faulty_bits,
        );
    }
    p
}

/// The scalar chunk executor, exposed to the crate's lane-equivalence
/// tests as the reference implementation.
#[cfg(test)]
pub(crate) fn scalar_chunk_for_tests(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    seed: u64,
    start: usize,
    end: usize,
    scratch: &mut FlowScratch,
) -> ChunkPartial {
    run_chunk(runner, strategy, seed, start, end, scratch)
}

/// Run a campaign of `n` attacks with the given strategy and seed
/// (sequential; see [`run_campaign_with`] for the threaded form).
pub fn run_campaign(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    n: usize,
    seed: u64,
) -> CampaignResult {
    run_campaign_with(runner, strategy, n, seed, &CampaignOptions::default())
}

/// Run a campaign of `n` attacks across `options.threads` workers.
///
/// The runs are split into fixed-size shards (`CHUNK_RUNS`); workers
/// steal shard indices from a shared counter, and the partials are merged
/// **in shard order** with Chan's parallel mean/variance combine
/// ([`RunningStats::merge`]). Because each run's RNG derives from
/// `(seed, run_index)` and the partition never depends on the schedule, the
/// returned result is bit-identical at any thread count.
pub fn run_campaign_with(
    runner: &FaultRunner<'_>,
    strategy: &dyn SamplingStrategy,
    n: usize,
    seed: u64,
    options: &CampaignOptions,
) -> CampaignResult {
    let chunks = n.div_ceil(CHUNK_RUNS);
    let threads = options.effective_threads().clamp(1, chunks.max(1));
    let chunk_bounds = |c: usize| (c * CHUNK_RUNS, ((c + 1) * CHUNK_RUNS).min(n));
    // Workers of the batched kernel share one lazily-filled cycle-value
    // cache (the values are a pure function of the injection cycle), so
    // adding threads no longer multiplies the warmup work.
    let cycle_cache = match options.kernel {
        CampaignKernel::Batched => Some(SharedCycleCache::new(runner.eval.golden.cycles)),
        CampaignKernel::Scalar => None,
    };
    let run_one =
        |c: usize, flow: &mut FlowScratch, batch: &mut BatchChunkScratch| -> ChunkPartial {
            let (start, end) = chunk_bounds(c);
            match &cycle_cache {
                Some(cache) => run_chunk_batched(runner, strategy, seed, start, end, batch, cache),
                None => run_chunk(runner, strategy, seed, start, end, flow),
            }
        };

    let mut slots: Vec<Option<ChunkPartial>> = Vec::with_capacity(chunks);
    if threads <= 1 {
        let mut flow = FlowScratch::default();
        let mut batch = BatchChunkScratch::default();
        for c in 0..chunks {
            slots.push(Some(run_one(c, &mut flow, &mut batch)));
        }
    } else {
        slots.resize_with(chunks, || None);
        let next = AtomicUsize::new(0);
        let worker_outputs: Vec<Vec<(usize, ChunkPartial)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut flow = FlowScratch::default();
                        let mut batch = BatchChunkScratch::default();
                        let mut local = Vec::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= chunks {
                                break;
                            }
                            local.push((c, run_one(c, &mut flow, &mut batch)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        });
        for (c, partial) in worker_outputs.into_iter().flatten() {
            slots[c] = Some(partial);
        }
    }

    // Merge in shard order; record the running estimate at each boundary.
    let mut stats = RunningStats::new();
    let mut class_counts = ClassCounts::default();
    let mut analytic_runs = 0usize;
    let mut rtl_runs = 0usize;
    let mut successes = 0usize;
    let mut attribution: BTreeMap<MpuBit, f64> = BTreeMap::new();
    let mut boundaries: Vec<(usize, f64)> = Vec::with_capacity(chunks);
    for (c, slot) in slots.into_iter().enumerate() {
        let p = slot.expect("every shard ran");
        stats.merge(&p.stats);
        class_counts.masked += p.class_counts.masked;
        class_counts.memory_only += p.class_counts.memory_only;
        class_counts.mixed += p.class_counts.mixed;
        analytic_runs += p.analytic_runs;
        rtl_runs += p.rtl_runs;
        successes += p.successes;
        for (bit, w) in p.attribution {
            *attribution.entry(bit).or_insert(0.0) += w;
        }
        boundaries.push((chunk_bounds(c).1, stats.mean()));
    }

    // Downsample boundaries to at most `trace_points`, always keeping the
    // final `(n, ŜSF)` point exactly once.
    let stride = boundaries
        .len()
        .div_ceil(options.trace_points.max(1))
        .max(1);
    let mut trace: Vec<(usize, f64)> = boundaries
        .iter()
        .enumerate()
        .filter(|(i, _)| (i + 1) % stride == 0)
        .map(|(_, &b)| b)
        .collect();
    if trace.last() != boundaries.last() {
        if let Some(&last) = boundaries.last() {
            trace.push(last);
        }
    }

    CampaignResult {
        strategy: strategy.name().to_owned(),
        n,
        ssf: stats.mean(),
        sample_variance: stats.variance(),
        successes,
        trace,
        class_counts,
        analytic_runs,
        rtl_runs,
        attribution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Evaluation, SystemModel};
    use crate::precharacterize::Precharacterization;
    use crate::sampling::{
        baseline_distribution, ExperimentConfig, ImportanceSampling, RandomSampling,
    };
    use xlmc_soc::workloads;

    struct Fixture {
        model: SystemModel,
        eval: Evaluation,
        prechar: Precharacterization,
        cfg: ExperimentConfig,
    }

    fn fixture() -> Fixture {
        let model = SystemModel::with_defaults().unwrap();
        let eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let cfg = ExperimentConfig {
            t_max: 20,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        Fixture {
            model,
            eval,
            prechar,
            cfg,
        }
    }

    fn runner(f: &Fixture) -> FaultRunner<'_> {
        FaultRunner {
            model: &f.model,
            eval: &f.eval,
            prechar: &f.prechar,
            hardening: None,
        }
    }

    #[test]
    fn random_campaign_produces_consistent_counters() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let result = run_campaign(&r, &strat, 400, 42);
        assert_eq!(result.n, 400);
        assert_eq!(result.class_counts.total(), 400);
        assert_eq!(
            result.class_counts.memory_only + result.class_counts.mixed,
            result.analytic_runs + result.rtl_runs
        );
        assert!((0.0..=1.0).contains(&result.ssf));
        assert_eq!(result.trace.last().unwrap().0, 400);
        assert_eq!(result.strategy, "random");
    }

    #[test]
    fn random_campaign_finds_some_successes() {
        // The sub-block contains persistent config cells; with t up to 20
        // and 400 shots the baseline should land a few.
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let result = run_campaign(&r, &strat, 400, 7);
        assert!(result.successes > 0, "no successes in 400 random shots");
        assert!(result.ssf > 0.0);
        assert!(!result.attribution.is_empty());
    }

    #[test]
    fn importance_campaign_matches_random_estimate() {
        // Unbiasedness end-to-end: both estimators target the same SSF.
        let f = fixture();
        let r = runner(&f);
        let fd = baseline_distribution(&f.model, &f.cfg);
        let random = RandomSampling::new(fd.clone());
        let is = ImportanceSampling::new(
            fd,
            &f.model,
            &f.prechar,
            f.cfg.alpha,
            f.cfg.beta,
            f.cfg.radius_options.clone(),
        );
        let a = run_campaign(&r, &random, 1200, 1);
        let b = run_campaign(&r, &is, 1200, 2);
        assert!(a.ssf > 0.0 && b.ssf > 0.0);
        let ratio = a.ssf / b.ssf;
        assert!(
            (0.3..=3.0).contains(&ratio),
            "random {} vs importance {}",
            a.ssf,
            b.ssf
        );
    }

    #[test]
    fn importance_variance_is_much_smaller() {
        // The headline claim: importance sampling slashes the sample
        // variance (paper: 0.0261 -> 9.7e-5).
        let f = fixture();
        let r = runner(&f);
        let fd = baseline_distribution(&f.model, &f.cfg);
        let random = RandomSampling::new(fd.clone());
        let is = ImportanceSampling::new(
            fd,
            &f.model,
            &f.prechar,
            f.cfg.alpha,
            f.cfg.beta,
            f.cfg.radius_options.clone(),
        );
        let a = run_campaign(&r, &random, 800, 10);
        let b = run_campaign(&r, &is, 800, 11);
        assert!(
            b.sample_variance < a.sample_variance,
            "importance {} !< random {}",
            b.sample_variance,
            a.sample_variance
        );
        assert!(b.lln_bound(0.01) < a.lln_bound(0.01));
    }

    #[test]
    fn masked_strikes_dominate() {
        // Paper Figure 10(a): most strikes are masked.
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let result = run_campaign(&r, &strat, 300, 20);
        let (masked, _, _) = result.class_counts.fractions();
        assert!(masked > 0.3, "masked fraction {masked}");
    }

    #[test]
    fn trace_has_no_duplicate_points_and_ends_at_n() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        // n both divisible and not divisible by the shard size, n < shard
        // size, and n below the old 200-point threshold (the historical
        // duplicate-final-point case).
        for n in [32, 64, 150, 190, 200, 333] {
            let result = run_campaign(&r, &strat, n, 5);
            let trace = &result.trace;
            assert_eq!(trace.last().unwrap().0, n, "n = {n}");
            for w in trace.windows(2) {
                assert!(w[0].0 < w[1].0, "n = {n}: non-increasing trace {trace:?}");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let sequential = run_campaign_with(&r, &strat, 200, 13, &CampaignOptions::with_threads(1));
        for threads in [2, 4, 7] {
            let parallel =
                run_campaign_with(&r, &strat, 200, 13, &CampaignOptions::with_threads(threads));
            assert_eq!(sequential.ssf, parallel.ssf, "threads = {threads}");
            assert_eq!(
                sequential.sample_variance, parallel.sample_variance,
                "threads = {threads}"
            );
            assert_eq!(sequential.successes, parallel.successes);
            assert_eq!(sequential.class_counts, parallel.class_counts);
            assert_eq!(sequential.analytic_runs, parallel.analytic_runs);
            assert_eq!(sequential.rtl_runs, parallel.rtl_runs);
            assert_eq!(sequential.attribution, parallel.attribution);
            assert_eq!(sequential.trace, parallel.trace);
        }
    }

    #[test]
    fn kernel_choice_does_not_change_the_result() {
        // The full campaign result — estimate, variance, trace, class
        // split, attribution — is bit-identical between the scalar and the
        // 64-lane batched kernel, for every strategy and thread count.
        let f = fixture();
        let r = runner(&f);
        let fd = baseline_distribution(&f.model, &f.cfg);
        let strategies: Vec<Box<dyn SamplingStrategy>> = vec![
            Box::new(RandomSampling::new(fd.clone())),
            Box::new(crate::sampling::ConeSampling::new(
                fd.clone(),
                &f.prechar,
                f.cfg.radius_options.clone(),
            )),
            Box::new(ImportanceSampling::new(
                fd,
                &f.model,
                &f.prechar,
                f.cfg.alpha,
                f.cfg.beta,
                f.cfg.radius_options.clone(),
            )),
        ];
        for strat in &strategies {
            let scalar = run_campaign_with(
                &r,
                strat.as_ref(),
                500,
                17,
                &CampaignOptions::with_kernel(CampaignKernel::Scalar),
            );
            for threads in [1usize, 2, 4] {
                let opts = CampaignOptions {
                    threads,
                    ..CampaignOptions::with_kernel(CampaignKernel::Batched)
                };
                let batched = run_campaign_with(&r, strat.as_ref(), 500, 17, &opts);
                assert_eq!(
                    scalar,
                    batched,
                    "strategy {} threads {threads}",
                    strat.name()
                );
            }
        }
    }

    #[test]
    fn batched_kernel_handles_partial_tail_batches() {
        // runs % 64 != 0 must not drop or duplicate runs: the batched
        // result equals the scalar reference at every tail shape.
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        for n in [1usize, 63, 64, 65, 127, 128, 129, 191] {
            let scalar = run_campaign_with(
                &r,
                &strat,
                n,
                23,
                &CampaignOptions::with_kernel(CampaignKernel::Scalar),
            );
            let batched = run_campaign_with(
                &r,
                &strat,
                n,
                23,
                &CampaignOptions::with_kernel(CampaignKernel::Batched),
            );
            assert_eq!(scalar.n, n);
            assert_eq!(scalar.class_counts.total(), n, "n = {n}");
            assert_eq!(scalar, batched, "n = {n}");
        }
    }

    #[test]
    fn kernel_arg_parses() {
        let mut opts = CampaignOptions::default();
        assert_eq!(opts.kernel, CampaignKernel::Batched);
        opts.set_kernel_arg("scalar");
        assert_eq!(opts.kernel, CampaignKernel::Scalar);
        opts.set_kernel_arg("batched");
        assert_eq!(opts.kernel, CampaignKernel::Batched);
        opts.set_kernel_arg("bogus");
        assert_eq!(opts.kernel, CampaignKernel::Batched);
    }

    #[test]
    fn campaign_options_resolve_threads() {
        assert_eq!(CampaignOptions::default().effective_threads(), 1);
        assert_eq!(CampaignOptions::with_threads(4).effective_threads(), 4);
        assert!(CampaignOptions::with_threads(0).effective_threads() >= 1);
    }

    #[test]
    fn campaigns_are_seed_deterministic() {
        let f = fixture();
        let r = runner(&f);
        let strat = RandomSampling::new(baseline_distribution(&f.model, &f.cfg));
        let a = run_campaign(&r, &strat, 150, 99);
        let b = run_campaign(&r, &strat, 150, 99);
        assert_eq!(a.ssf, b.ssf);
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.class_counts, b.class_counts);
    }
}
