//! The cross-level fault-propagation simulation (paper §5, Figure 5).
//!
//! One attack run executes the full flow:
//!
//! 1. locate the injection cycle `T_e = T_t − t` in the golden run,
//! 2. **switch to gate level** for the injection cycle: reconstruct the
//!    MPU netlist's state and stimulus from the golden traces, strike the
//!    radiated cells, and propagate the transients to the flip-flops,
//! 3. translate the latched errors through the cross-level register map,
//! 4. classify: fully masked → fail; memory-type only → **analytical
//!    evaluation**; otherwise → **restore the nearest golden checkpoint**,
//!    re-run RTL to the injection cycle, write the errors back into the
//!    architectural state, and resume RTL simulation to completion,
//! 5. the attack-goal predicate on the final state is the indicator `e`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::analytic::{self, AnalyticVerdict};
use crate::fastforward::{
    self, ConclusionFront, FastForwardStats, RtlFastForward, SharedConclusionMemo,
};
use crate::harden::HardenedVariant;
use crate::lifetime::RegisterKind;
use crate::model::{Evaluation, SystemModel};
use crate::precharacterize::Precharacterization;
use rand::Rng;
use serde::{Deserialize, Serialize};
use xlmc_fault::{AttackSample, DoubleGlitch, RadiationSpot};
use xlmc_gatesim::{CycleValues, StrikeOutcome, TransientScratch};
use xlmc_netlist::GateId;
use xlmc_soc::MpuBit;

/// The classification of one strike by where its errors landed
/// (paper Figure 10(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrikeClass {
    /// No register captured an error.
    Masked,
    /// Errors only in memory-type registers.
    MemoryOnly,
    /// At least one computation-type register in error.
    Mixed,
}

/// The result of one attack run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// The success indicator `e(t, p)`.
    pub success: bool,
    /// Where the errors landed.
    pub class: StrikeClass,
    /// The faulty register bits at the end of the injection cycle (after
    /// hardening filtered absorbed flips).
    pub faulty_bits: Vec<MpuBit>,
    /// Whether the outcome came from the analytical evaluation (`false`
    /// means RTL resume — or a masked strike needing neither).
    pub analytic: bool,
    /// The injection cycle `T_e`, when inside the run.
    pub injection_cycle: Option<u64>,
    /// Combinational gates that carried a propagating pulse (0 for glitch
    /// attacks and out-of-run samples).
    pub pulses_propagated: usize,
    /// Gates popped from the propagation worklist (0 when no strike ran).
    pub gates_visited: usize,
}

impl AttackOutcome {
    fn failed(class: StrikeClass, injection_cycle: Option<u64>) -> Self {
        Self {
            success: false,
            class,
            faulty_bits: Vec::new(),
            analytic: false,
            injection_cycle,
            pulses_propagated: 0,
            gates_visited: 0,
        }
    }
}

/// A borrowed view of one attack run's outcome, returned by
/// [`FaultRunner::run_with`].
///
/// Identical to [`AttackOutcome`] except that the faulty-bit list lives in
/// the [`FlowScratch`], so the hot path hands the caller a slice instead of
/// a fresh `Vec`.
#[derive(Debug, Clone, Copy)]
pub struct RunView<'s> {
    /// The success indicator `e(t, p)`.
    pub success: bool,
    /// Where the errors landed.
    pub class: StrikeClass,
    /// The faulty register bits (borrowed from the scratch; valid until the
    /// next run on the same scratch).
    pub faulty_bits: &'s [MpuBit],
    /// Whether the outcome came from the analytical evaluation.
    pub analytic: bool,
    /// The injection cycle `T_e`, when inside the run.
    pub injection_cycle: Option<u64>,
    /// Combinational gates that carried a propagating pulse in the strike.
    pub pulses_propagated: usize,
    /// Gates popped from the propagation worklist.
    pub gates_visited: usize,
}

impl RunView<'_> {
    /// Copy into an owned [`AttackOutcome`].
    pub fn to_outcome(&self) -> AttackOutcome {
        AttackOutcome {
            success: self.success,
            class: self.class,
            faulty_bits: self.faulty_bits.to_vec(),
            analytic: self.analytic,
            injection_cycle: self.injection_cycle,
            pulses_propagated: self.pulses_propagated,
            gates_visited: self.gates_visited,
        }
    }
}

/// The memoized downstream verdict of one `(T_e, post-hardening bits)`
/// pair. Everything after the hardening filter — classification, analytic
/// evaluation, RTL resume — is a pure function of the injection cycle and
/// the surviving error bits, so repeated error patterns (common under
/// importance sampling, which concentrates strikes on the same cells) skip
/// the expensive resume entirely.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Concluded {
    pub(crate) success: bool,
    pub(crate) class: StrikeClass,
    pub(crate) analytic: bool,
}

/// Reusable per-worker buffers for [`FaultRunner::run_with`].
///
/// Holds every transient allocation of the flow, plus state that is valid
/// **only against one `(model, evaluation, prechar)` triple**: the netlist
/// cycle values keyed by injection cycle (the golden run makes them a pure
/// function of `T_e`), the RTL fast-forward state (the exact-cycle snapshot
/// cache, the resident resume system and the reconvergence scratch — see
/// [`RtlFastForward`]), and a fallback conclusion memo used when the caller
/// does not supply a campaign-shared one. Never move one scratch between
/// runners with different models, evaluations or pre-characterizations;
/// within one campaign the engine keeps a scratch per worker.
#[derive(Debug, Default)]
pub struct FlowScratch {
    cycle_cache: HashMap<u64, CycleValues>,
    state_buf: Vec<bool>,
    input_buf: Vec<bool>,
    struck: Vec<GateId>,
    struck2: Vec<GateId>,
    transient: TransientScratch,
    strike_out: StrikeOutcome,
    faulty_regs: Vec<GateId>,
    faulty_bits: Vec<MpuBit>,
    ff: RtlFastForward,
    local_memo: SharedConclusionMemo,
}

impl FlowScratch {
    /// Enable or disable the RTL fast-forward accelerations (snapshot cache
    /// and golden-reconvergence early exit). On by default; disabling
    /// degrades every resume to the reference restore-and-replay path,
    /// which produces bit-identical results.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.ff.set_enabled(enabled);
    }

    /// The fast-forward counters accumulated by runs on this scratch.
    pub fn fast_forward_stats(&self) -> FastForwardStats {
        self.ff.stats()
    }

    /// Drain latency observations (snapshot-restore timings) accumulated
    /// since the last call into a shard for the chunk partial.
    pub(crate) fn take_latency(&mut self) -> crate::metrics::LatencyShard {
        crate::metrics::LatencyShard {
            snapshot_restore: self.ff.take_restore_latency(),
            ..crate::metrics::LatencyShard::default()
        }
    }
}

/// Executes attack runs against one evaluation setup.
#[derive(Debug, Clone, Copy)]
pub struct FaultRunner<'a> {
    /// The gate-level system model.
    pub model: &'a SystemModel,
    /// The workload under attack with its golden run.
    pub eval: &'a Evaluation,
    /// The pre-characterization (register classification).
    pub prechar: &'a Precharacterization,
    /// Optional hardening countermeasure.
    pub hardening: Option<&'a HardenedVariant>,
    /// Optional correlated multi-fault (double-glitch) mode: a second spot
    /// per run, time-correlated with the primary sample, drawn from one
    /// word of entropy split off the per-run stream.
    pub multi_fault: Option<&'a DoubleGlitch>,
}

impl FaultRunner<'_> {
    /// The gate-level injection half of the flow: the register bits in
    /// error at the end of the injection cycle (before hardening), or
    /// `None` when the sample injects outside the golden run.
    ///
    /// Exposed for the error-pattern characterization experiments (paper
    /// Figure 7), which need the latched patterns without the downstream
    /// outcome evaluation.
    pub fn injected_bits(&self, sample: &AttackSample) -> Option<Vec<MpuBit>> {
        let golden = &self.eval.golden;
        let te = sample.injection_cycle(self.eval.target_cycle)?;
        if te >= golden.cycles {
            return None;
        }
        let netlist = self.model.mpu.netlist();
        let state = self.model.mpu.state_vector(&golden.mpu_states[te as usize]);
        let stim = &golden.stimulus[te as usize];
        let inputs = self.model.mpu.input_values(stim.request, stim.cfg_write);
        let values = self.model.cycle_sim.eval(netlist, &state, &inputs);
        let spot = RadiationSpot {
            center: sample.center,
            radius: sample.radius,
        };
        let struck = spot.impacted_cells(&self.model.placement);
        // The particle-hit moment within the cycle is a technique parameter
        // of the sample, so `e(t, p)` stays deterministic.
        let strike_time = sample.strike_time_ps(self.model.transient.config().clock_period_ps);
        let strike = self
            .model
            .transient
            .strike(netlist, &values, &struck, strike_time);
        Some(
            strike
                .faulty_registers()
                .iter()
                .filter_map(|&d| self.model.mpu.bit_of(d))
                .collect(),
        )
    }

    /// Execute one attack with the given sample.
    pub fn run(&self, sample: &AttackSample, rng: &mut impl Rng) -> AttackOutcome {
        let mut scratch = FlowScratch::default();
        self.run_with(sample, rng, &mut scratch).to_outcome()
    }

    /// [`FaultRunner::run`] with caller-owned buffers — the campaign hot
    /// path. After the scratch is warm (every distinct injection cycle seen
    /// once), a masked strike allocates nothing.
    pub fn run_with<'s>(
        &self,
        sample: &AttackSample,
        rng: &mut impl Rng,
        scratch: &'s mut FlowScratch,
    ) -> RunView<'s> {
        self.run_shared(sample, rng, scratch, None)
    }

    /// [`FaultRunner::run_with`] against a campaign-shared conclusion memo
    /// (falls back to the scratch-local one when `memo` is `None`). The
    /// verdict is a pure function of `(T_e, post-hardening bits)` — the
    /// hardening filter consumes RNG before the key is formed — so sharing
    /// the memo across workers never changes a result bit.
    pub(crate) fn run_shared<'s>(
        &self,
        sample: &AttackSample,
        rng: &mut impl Rng,
        scratch: &'s mut FlowScratch,
        memo: Option<&SharedConclusionMemo>,
    ) -> RunView<'s> {
        let golden = &self.eval.golden;
        let te = match sample.injection_cycle(self.eval.target_cycle) {
            Some(te) if te < golden.cycles => te,
            _ => {
                scratch.faulty_bits.clear();
                return RunView {
                    success: false,
                    class: StrikeClass::Masked,
                    faulty_bits: &scratch.faulty_bits,
                    analytic: false,
                    injection_cycle: None,
                    pulses_propagated: 0,
                    gates_visited: 0,
                };
            }
        };
        let FlowScratch {
            cycle_cache,
            state_buf,
            input_buf,
            struck,
            struck2,
            transient,
            strike_out,
            faulty_regs,
            faulty_bits,
            ff,
            local_memo,
        } = scratch;
        let memo = memo.unwrap_or(local_memo);

        let netlist = self.model.mpu.netlist();
        // The injection-cycle values are a pure function of `te` on the
        // golden run; campaigns revisit the same few cycles (t ≤ t_max), so
        // the memo turns the per-run combinational sweep into a lookup.
        let values: &CycleValues = match cycle_cache.entry(te) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                self.model
                    .mpu
                    .state_vector_into(&golden.mpu_states[te as usize], state_buf);
                let stim = &golden.stimulus[te as usize];
                self.model
                    .mpu
                    .input_values_into(stim.request, stim.cfg_write, input_buf);
                let mut cv = CycleValues::default();
                self.model
                    .cycle_sim
                    .eval_into(netlist, state_buf, input_buf, &mut cv);
                e.insert(cv)
            }
        };

        let spot = RadiationSpot {
            center: sample.center,
            radius: sample.radius,
        };
        spot.impacted_cells_into(&self.model.placement, struck);
        if let Some(mf) = self.multi_fault {
            // One entropy word per in-run sample, drawn before the hardening
            // filter — the same stream position in every kernel.
            let second = mf.second_spot(rng.next_u64());
            second.impacted_cells_into(&self.model.placement, struck2);
            struck.extend_from_slice(struck2);
            struck.sort_unstable();
            struck.dedup();
        }
        let strike_time = sample.strike_time_ps(self.model.transient.config().clock_period_ps);
        self.model.transient.strike_with(
            netlist,
            values,
            struck,
            strike_time,
            transient,
            strike_out,
        );
        strike_out.faulty_registers_into(faulty_regs);
        faulty_bits.clear();
        faulty_bits.extend(faulty_regs.iter().filter_map(|&d| self.model.mpu.bit_of(d)));
        let pulses = strike_out.pulses_propagated;
        let gates = strike_out.gates_visited;
        let mut view = self.conclude_with(te, rng, faulty_bits, ff, memo, None);
        view.pulses_propagated = pulses;
        view.gates_visited = gates;
        view
    }

    /// Execute one clock-glitch attack: shorten the capture period of the
    /// injection cycle to `glitch_period_ps` so long combinational paths
    /// latch stale values (the paper's second technique family; the
    /// parameter vector `p` here is the glitch depth).
    pub fn run_glitch(&self, t: i64, glitch_period_ps: f64, rng: &mut impl Rng) -> AttackOutcome {
        let golden = &self.eval.golden;
        let te = self.eval.target_cycle as i64 - t;
        if te < 1 || te as u64 >= golden.cycles {
            return AttackOutcome::failed(StrikeClass::Masked, None);
        }
        let te = te as u64;
        let netlist = self.model.mpu.netlist();
        let eval_cycle = |c: u64| {
            let state = self.model.mpu.state_vector(&golden.mpu_states[c as usize]);
            let stim = &golden.stimulus[c as usize];
            let inputs = self.model.mpu.input_values(stim.request, stim.cfg_write);
            self.model.cycle_sim.eval(netlist, &state, &inputs)
        };
        let prev = eval_cycle(te - 1);
        let cur = eval_cycle(te);
        let flipped = self
            .model
            .glitch
            .glitch(netlist, &prev, &cur, glitch_period_ps);
        let faulty_bits: Vec<MpuBit> = flipped
            .iter()
            .filter_map(|&d| self.model.mpu.bit_of(d))
            .collect();
        self.conclude(te, faulty_bits, rng)
    }

    /// Shared downstream half of the flow: hardening filter, memory /
    /// computation classification, analytic evaluation or RTL resume.
    fn conclude(&self, te: u64, mut faulty_bits: Vec<MpuBit>, rng: &mut impl Rng) -> AttackOutcome {
        let mut ff = RtlFastForward::default();
        let memo = SharedConclusionMemo::default();
        self.conclude_with(te, rng, &mut faulty_bits, &mut ff, &memo, None)
            .to_outcome()
    }

    /// [`FaultRunner::conclude`] writing into scratch-owned storage.
    ///
    /// RNG consumption (the hardening filter) happens *before* the memo key
    /// is formed, so caching never perturbs the per-run random stream.
    /// `front`, when present, is a per-worker unlocked mirror of `memo`:
    /// probes hit it first and fresh verdicts are recorded into both, so
    /// repeat patterns skip the shard mutex. Because the verdict is a pure
    /// function of `(T_e, bits)`, the mirror cannot change any result.
    pub(crate) fn conclude_with<'s>(
        &self,
        te: u64,
        rng: &mut impl Rng,
        faulty_bits: &'s mut Vec<MpuBit>,
        ff: &mut RtlFastForward,
        memo: &SharedConclusionMemo,
        front: Option<&mut ConclusionFront>,
    ) -> RunView<'s> {
        if let Some(h) = self.hardening {
            faulty_bits.retain(|&b| h.flip_survives(b, rng));
        }
        if faulty_bits.is_empty() {
            return RunView {
                success: false,
                class: StrikeClass::Masked,
                faulty_bits,
                analytic: false,
                injection_cycle: Some(te),
                pulses_propagated: 0,
                gates_visited: 0,
            };
        }

        let key = fastforward::key_hash(te, faulty_bits);
        let mut front = front;
        let hit = match front.as_deref_mut() {
            Some(f) => f.get_through(memo, key, te, faulty_bits),
            None => memo.get(key, te, faulty_bits),
        };
        if let Some(c) = hit {
            return RunView {
                success: c.success,
                class: c.class,
                faulty_bits,
                analytic: c.analytic,
                injection_cycle: Some(te),
                pulses_propagated: 0,
                gates_visited: 0,
            };
        }

        let class = if faulty_bits
            .iter()
            .all(|&b| self.prechar.registers.kind(b) == RegisterKind::Memory)
        {
            StrikeClass::MemoryOnly
        } else {
            StrikeClass::Mixed
        };

        // Memory-type-only strikes go to the analytical evaluator; anything
        // it declines (and every computation-touching strike) goes through
        // the RTL resume from the nearest golden checkpoint.
        let (success, analytic) = match class {
            StrikeClass::MemoryOnly => match analytic::evaluate(self.eval, faulty_bits, te) {
                AnalyticVerdict::NotApplicable => (ff.resume(self.eval, te, faulty_bits), false),
                verdict => (verdict == AnalyticVerdict::Success, true),
            },
            _ => (ff.resume(self.eval, te, faulty_bits), false),
        };
        let verdict = Concluded {
            success,
            class,
            analytic,
        };
        memo.insert(key, te, faulty_bits, verdict);
        if let Some(f) = front {
            f.record(key, te, faulty_bits, verdict);
        }
        RunView {
            success,
            class,
            faulty_bits,
            analytic,
            injection_cycle: Some(te),
            pulses_propagated: 0,
            gates_visited: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harden::{HardenedSet, HardeningModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xlmc_netlist::GateId;
    use xlmc_soc::workloads;

    struct Fixture {
        model: SystemModel,
        eval: Evaluation,
        prechar: Precharacterization,
    }

    fn fixture() -> Fixture {
        let model = SystemModel::with_defaults().unwrap();
        let eval = Evaluation::new(workloads::illegal_write()).unwrap();
        let prechar = Precharacterization::run(&model, 8, 0.0);
        Fixture {
            model,
            eval,
            prechar,
        }
    }

    fn runner<'a>(f: &'a Fixture, hardening: Option<&'a HardenedVariant>) -> FaultRunner<'a> {
        FaultRunner {
            model: &f.model,
            eval: &f.eval,
            prechar: &f.prechar,
            hardening,
            multi_fault: None,
        }
    }

    #[test]
    fn direct_hit_on_violation_register_succeeds_at_t1() {
        let f = fixture();
        let r = runner(&f, None);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = AttackSample {
            t: 1,
            center: f.model.mpu.dff(MpuBit::Violation),
            radius: 0.0,
            phase: 0,
        };
        let out = r.run(&sample, &mut rng);
        assert_eq!(out.class, StrikeClass::Mixed);
        assert!(out.success, "suppressing the responding signal at T_t - 1");
        assert!(!out.analytic);
        assert_eq!(out.faulty_bits, vec![MpuBit::Violation]);
    }

    #[test]
    fn violation_register_hit_at_wrong_time_fails() {
        let f = fixture();
        let r = runner(&f, None);
        let mut rng = StdRng::seed_from_u64(2);
        let sample = AttackSample {
            t: 20,
            center: f.model.mpu.dff(MpuBit::Violation),
            radius: 0.0,
            phase: 0,
        };
        let out = r.run(&sample, &mut rng);
        assert!(!out.success, "the flip is overwritten long before T_t");
    }

    #[test]
    fn enable_register_hit_succeeds_at_any_t() {
        // The enable flip persists forever (long error lifetime), so the
        // attack works regardless of the timing distance — as long as the
        // flip lands before the verdict is computed (t >= 2; at t = 1 the
        // violation verdict has already latched). Note the flip is
        // *contaminating* (it changes downstream violation outcomes), so
        // the measured classification sends it down the RTL path.
        let f = fixture();
        let r = runner(&f, None);
        let mut rng = StdRng::seed_from_u64(3);
        for t in [2, 5, 25, 40] {
            let sample = AttackSample {
                t,
                center: f.model.mpu.dff(MpuBit::Enable),
                radius: 0.0,
                phase: 0,
            };
            let out = r.run(&sample, &mut rng);
            assert!(out.success, "enable flip at t = {t}");
            assert_eq!(out.faulty_bits, vec![MpuBit::Enable]);
        }
    }

    #[test]
    fn strike_on_inert_config_bit_fails_analytically() {
        let f = fixture();
        let r = runner(&f, None);
        let mut rng = StdRng::seed_from_u64(4);
        let sample = AttackSample {
            t: 10,
            center: f.model.mpu.dff(MpuBit::Base(2, 9)),
            radius: 0.0,
            phase: 0,
        };
        let out = r.run(&sample, &mut rng);
        assert!(!out.success);
        assert_eq!(out.class, StrikeClass::MemoryOnly);
        assert!(out.analytic);
    }

    #[test]
    fn out_of_run_injection_is_masked() {
        let f = fixture();
        let r = runner(&f, None);
        let mut rng = StdRng::seed_from_u64(5);
        let sample = AttackSample {
            t: 1_000_000,
            center: GateId(0),
            radius: 0.0,
            phase: 0,
        };
        let out = r.run(&sample, &mut rng);
        assert_eq!(out.class, StrikeClass::Masked);
        assert!(!out.success);
        assert!(out.injection_cycle.is_none());
    }

    #[test]
    fn hardening_absorbs_most_direct_hits() {
        let f = fixture();
        let hardened = HardenedVariant::Uniform(HardenedSet::new(
            [MpuBit::Violation],
            HardeningModel::default(),
        ));
        let r = runner(&f, Some(&hardened));
        let mut rng = StdRng::seed_from_u64(6);
        let sample = AttackSample {
            t: 1,
            center: f.model.mpu.dff(MpuBit::Violation),
            radius: 0.0,
            phase: 0,
        };
        let successes = (0..100)
            .filter(|_| r.run(&sample, &mut rng).success)
            .count();
        assert!(
            (2..=25).contains(&successes),
            "hardened success rate should be ~10%, got {successes}/100"
        );
    }

    #[test]
    fn degenerate_second_spot_matches_single_spot() {
        // Second spot pinned to the primary center with radius 0: the
        // union equals the primary impacted set, so the double-glitch
        // verdict must match the single-spot flow bit for bit.
        let f = fixture();
        let single = runner(&f, None);
        let center = f.model.mpu.dff(MpuBit::Violation);
        let glitch = xlmc_fault::DoubleGlitch::new(
            xlmc_fault::SpatialDist::Delta(center),
            xlmc_fault::RadiusDist::fixed(0.0),
        );
        let double = FaultRunner {
            multi_fault: Some(&glitch),
            ..single
        };
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        for t in [1, 3, 7] {
            let sample = AttackSample {
                t,
                center,
                radius: 1.5,
                phase: 2,
            };
            let a = single.run(&sample, &mut rng_a);
            let b = double.run(&sample, &mut rng_b);
            assert_eq!(a.success, b.success, "t = {t}");
            assert_eq!(a.faulty_bits, b.faulty_bits, "t = {t}");
        }
    }

    #[test]
    fn second_spot_widens_the_error_set() {
        // A second spot parked on the Enable DFF adds that cell to every
        // in-run strike; repeated runs are bit-deterministic.
        let f = fixture();
        let base = runner(&f, None);
        let glitch = xlmc_fault::DoubleGlitch::new(
            xlmc_fault::SpatialDist::Delta(f.model.mpu.dff(MpuBit::Enable)),
            xlmc_fault::RadiusDist::fixed(0.0),
        );
        let double = FaultRunner {
            multi_fault: Some(&glitch),
            ..base
        };
        let sample = AttackSample {
            t: 2,
            center: f.model.mpu.dff(MpuBit::Violation),
            radius: 0.0,
            phase: 0,
        };
        let mut rng_a = StdRng::seed_from_u64(12);
        let mut rng_b = StdRng::seed_from_u64(12);
        let a = double.run(&sample, &mut rng_a);
        let b = double.run(&sample, &mut rng_b);
        assert_eq!(a.success, b.success);
        assert_eq!(a.faulty_bits, b.faulty_bits);
        // The primary-only strike at phase 0 latches the violation bit; the
        // second spot can only add to the struck set.
        let solo = base.run(&sample, &mut StdRng::seed_from_u64(12));
        for bit in &solo.faulty_bits {
            assert!(
                a.faulty_bits.contains(bit),
                "double-glitch dropped {bit:?} from the error set"
            );
        }
    }

    #[test]
    fn analytic_and_rtl_agree_on_memory_only_strikes() {
        // Force the RTL path for strikes the analytic evaluator judged, by
        // re-running the same error set through rtl_resume.
        let f = fixture();
        let r = runner(&f, None);
        let mut rng = StdRng::seed_from_u64(7);
        let mut checked = 0;
        for (i, &cell) in f
            .prechar
            .space
            .frame_for(5)
            .unwrap()
            .cells
            .iter()
            .enumerate()
        {
            if i % 7 != 0 {
                continue; // subsample for test speed
            }
            let sample = AttackSample {
                t: 5,
                center: cell,
                radius: 1.0,
                phase: 3,
            };
            let out = r.run(&sample, &mut rng);
            if out.class == StrikeClass::MemoryOnly && out.analytic {
                let te = out.injection_cycle.unwrap();
                let mut ff_on = RtlFastForward::default();
                let mut ff_off = RtlFastForward::new(false);
                let fast = ff_on.resume(&f.eval, te, &out.faulty_bits);
                let slow = ff_off.resume(&f.eval, te, &out.faulty_bits);
                assert_eq!(out.success, fast, "cell {cell}: {:?}", out.faulty_bits);
                assert_eq!(out.success, slow, "cell {cell}: {:?}", out.faulty_bits);
                checked += 1;
            }
        }
        assert!(checked > 3, "want a few analytic strikes, got {checked}");
    }

    #[test]
    fn severe_clock_glitch_can_defeat_the_mechanism() {
        // At t = 1 the verdict is being computed: a glitch short enough to
        // violate the comparator paths corrupts what the violation
        // register latches.
        let f = fixture();
        let r = runner(&f, None);
        let mut rng = StdRng::seed_from_u64(21);
        let mut any_success = false;
        for period in [40.0, 80.0, 120.0, 200.0] {
            let out = r.run_glitch(1, period, &mut rng);
            if out.success {
                any_success = true;
            }
        }
        assert!(any_success, "some glitch depth should defeat the check");
    }

    #[test]
    fn gentle_clock_glitch_is_masked() {
        let f = fixture();
        let r = runner(&f, None);
        let mut rng = StdRng::seed_from_u64(22);
        // A glitch above the critical path never violates timing.
        let period = f.model.glitch.critical_path_ps() + 10.0;
        let out = r.run_glitch(1, period, &mut rng);
        assert_eq!(out.class, StrikeClass::Masked);
        assert!(!out.success);
    }

    #[test]
    fn run_with_scratch_reuse_matches_run() {
        // Drive many samples (masked, analytic, RTL, out-of-run) through ONE
        // scratch; each outcome must equal the allocating API under an
        // identical RNG stream.
        let f = fixture();
        let r = runner(&f, None);
        let mut scratch = FlowScratch::default();
        let mut rng_a = StdRng::seed_from_u64(33);
        let mut rng_b = StdRng::seed_from_u64(33);
        let cells = f.prechar.space.frame_for(5).unwrap().cells.clone();
        let mut samples: Vec<AttackSample> = cells
            .iter()
            .step_by(5)
            .map(|&c| AttackSample {
                t: 5,
                center: c,
                radius: 1.0,
                phase: 2,
            })
            .collect();
        samples.push(AttackSample {
            t: 1_000_000,
            center: GateId(0),
            radius: 0.0,
            phase: 0,
        });
        samples.push(AttackSample {
            t: 1,
            center: f.model.mpu.dff(MpuBit::Violation),
            radius: 0.0,
            phase: 0,
        });
        for sample in &samples {
            let fresh = r.run(sample, &mut rng_a);
            let view = r.run_with(sample, &mut rng_b, &mut scratch);
            assert_eq!(view.success, fresh.success, "{sample:?}");
            assert_eq!(view.class, fresh.class, "{sample:?}");
            assert_eq!(view.faulty_bits, &fresh.faulty_bits[..], "{sample:?}");
            assert_eq!(view.analytic, fresh.analytic, "{sample:?}");
            assert_eq!(view.injection_cycle, fresh.injection_cycle, "{sample:?}");
        }
    }

    #[test]
    fn fast_forward_matches_reference_resume() {
        // Drive an identical sample stream through two scratches — one with
        // the fast-forward layer on, one off — under twin RNG streams.
        // Every outcome must be bit-identical, and the accelerated scratch
        // should actually exercise its fast paths.
        let f = fixture();
        let r = runner(&f, None);
        let mut on = FlowScratch::default();
        let mut off = FlowScratch::default();
        off.set_fast_forward(false);
        let mut rng_a = StdRng::seed_from_u64(44);
        let mut rng_b = StdRng::seed_from_u64(44);
        let cells = f.prechar.space.frame_for(4).unwrap().cells.clone();
        for pass in 0..2 {
            for (i, &c) in cells.iter().enumerate() {
                if i % 3 != 0 {
                    continue; // subsample for test speed
                }
                let sample = AttackSample {
                    t: 4,
                    center: c,
                    radius: 1.5,
                    phase: (i % 8) as u8,
                };
                let fast = r.run_with(&sample, &mut rng_a, &mut on).to_outcome();
                let slow = r.run_with(&sample, &mut rng_b, &mut off).to_outcome();
                assert_eq!(fast.success, slow.success, "pass {pass} cell {c}");
                assert_eq!(fast.class, slow.class, "pass {pass} cell {c}");
                assert_eq!(fast.faulty_bits, slow.faulty_bits, "pass {pass} cell {c}");
                assert_eq!(fast.analytic, slow.analytic, "pass {pass} cell {c}");
            }
        }
        let stats = on.fast_forward_stats();
        assert!(stats.enabled);
        assert!(stats.rtl_resumes > 0, "fixture should reach the RTL path");
        assert!(stats.checkpoint_cache_hits > 0, "repeat pass should hit");
        let off_stats = off.fast_forward_stats();
        assert!(!off_stats.enabled);
        assert_eq!(off_stats.checkpoint_cache_hits, 0);
        assert_eq!(off_stats.early_exits, 0);
    }

    #[test]
    fn masked_strikes_report_injection_cycle() {
        let f = fixture();
        let r = runner(&f, None);
        let mut rng = StdRng::seed_from_u64(8);
        // Strike an input marker region: radius 0 at a cell, many strikes
        // during quiet logic will be masked; find one masked outcome.
        let cells = f.prechar.space.frame_for(3).unwrap().cells.clone();
        let masked = cells.iter().find_map(|&c| {
            let out = r.run(
                &AttackSample {
                    t: 3,
                    center: c,
                    radius: 0.0,
                    phase: 1,
                },
                &mut rng,
            );
            (out.class == StrikeClass::Masked).then_some(out)
        });
        let masked = masked.expect("some strike should be masked");
        assert!(masked.injection_cycle.is_some());
        assert!(!masked.success);
    }
}
