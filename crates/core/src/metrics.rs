//! The live telemetry bus: a metrics registry of counters, gauges and
//! log-bucketed latency histograms, a streaming JSONL event log, a
//! Prometheus-text exposition snapshot, and a stall watchdog.
//!
//! Everything here is a **pure observer** of the campaign engine. Latency
//! observations are wall-clock and therefore vary run to run, but they
//! ride the same deterministic path as the statistics: each worker
//! records into a per-chunk [`LatencyShard`] that travels inside the
//! chunk partial, and the merging thread folds shards **in chunk order**
//! into the [`MetricsRegistry`]. No telemetry value ever feeds back into
//! a sample, a weight, or a stopping decision, so campaign results are
//! bit-identical with every surface on or off
//! (`tests/campaign_telemetry.rs` enforces this across kernels × threads
//! × estimators).
//!
//! Surfaces, all driven by the one registry:
//!
//! * `--events PATH` — append-only JSONL lifecycle log
//!   ([`EventLog`], `schemas/events.schema.json`), flushed per line so a
//!   killed campaign leaves a readable record.
//! * `--prom PATH` — a Prometheus text-format snapshot
//!   ([`prom_render`]), rewritten atomically (temp + rename) at every
//!   checkpoint cadence boundary, for scraping by a node-exporter-style
//!   textfile collector.
//! * The metrics JSON `timing` object and the stderr progress line fold
//!   in p50/p90/p99 of the tracked latency distributions.
//!
//! The stall watchdog ([`StallWatchdog`]) takes its clock as an argument
//! (`Instant` values), so tests can drive it with synthetic time — no
//! real sleeps in CI.

use crate::json::json_escape;
use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Log-bucketed latency histograms
// ---------------------------------------------------------------------------

/// Sub-buckets per power of two — a ~19% relative error bound on any
/// reported quantile, HDR-histogram style.
const OCTAVE_SUB: usize = 4;

/// The resolution floor: observations at or below 1 ns land in bucket 0.
const MIN_SECONDS: f64 = 1e-9;

/// 38 octaves above 1 ns ≈ 275 s — longer observations saturate into the
/// last bucket (their exact value is still preserved in `max`/`sum`).
const BUCKETS: usize = 38 * OCTAVE_SUB;

/// A log-bucketed (HDR-style) histogram of latencies in seconds.
///
/// Fixed bucket layout — ~19% worst-case quantile error over 1 ns…275 s —
/// with exact `count`, `sum` and `max` kept alongside, so rates and means
/// are exact and only quantiles are bucket-quantized. The bucket vector
/// allocates lazily: an empty histogram (the common case inside every
/// [`ChunkPartial`](crate::estimator::ChunkPartial)) costs nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHist {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl LatencyHist {
    /// The bucket index for an observation of `v` seconds.
    fn bucket_of(v: f64) -> usize {
        if v <= MIN_SECONDS {
            return 0;
        }
        let octaves = (v / MIN_SECONDS).log2() * OCTAVE_SUB as f64;
        (octaves.floor() as usize).min(BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i`, in seconds.
    fn bucket_upper(i: usize) -> f64 {
        MIN_SECONDS * 2f64.powf((i + 1) as f64 / OCTAVE_SUB as f64)
    }

    /// Record one observation (non-finite and negative values are
    /// clamped to the resolution floor rather than dropped, so `count`
    /// always matches the number of events).
    pub fn record(&mut self, seconds: f64) {
        let v = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        if other.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, in seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Largest observation, in seconds (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper bound of the bucket
    /// holding the `⌈q·count⌉`-th observation, clamped to `max`. Returns
    /// 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                // The last bucket saturates (no useful upper bound);
                // report the exact max instead.
                return if i == BUCKETS - 1 {
                    self.max
                } else {
                    Self::bucket_upper(i).min(self.max)
                };
            }
        }
        self.max
    }

    /// The fixed `(count, p50, p90, p99, max, sum)` digest.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50_s: self.quantile(0.50),
            p90_s: self.quantile(0.90),
            p99_s: self.quantile(0.99),
            max_s: self.max,
            sum_s: self.sum,
        }
    }
}

/// A compact quantile digest of one [`LatencyHist`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Median (bucket upper bound), seconds.
    pub p50_s: f64,
    /// 90th percentile, seconds.
    pub p90_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// Exact largest observation, seconds.
    pub max_s: f64,
    /// Exact sum of observations, seconds.
    pub sum_s: f64,
}

/// The five latency distributions the campaign engine tracks.
///
/// One shard lives in every chunk partial (filled worker-side), and one
/// lives in the merger's [`MetricsRegistry`]; shards are folded at chunk
/// boundaries, in chunk order, like every other partial field.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyShard {
    /// Wall time of one whole chunk (draw + strike + conclude).
    pub chunk_wall: LatencyHist,
    /// Time the merging thread blocked waiting for the next partial
    /// (recorded merger-side; empty on the single-thread path where the
    /// merger is the worker).
    pub merge_wait: LatencyHist,
    /// RTL fast-forward positioning: snapshot-cache restore on a hit, or
    /// checkpoint restore + replay on a miss.
    pub snapshot_restore: LatencyHist,
    /// One packed transient sweep of the batched/compiled kernel (empty
    /// under `--kernel scalar`, which strikes per run).
    pub kernel_sweep: LatencyHist,
    /// One crash-safe checkpoint write (temp file + rename).
    pub checkpoint_write: LatencyHist,
}

impl LatencyShard {
    /// Fold another shard into this one.
    pub fn absorb(&mut self, other: &LatencyShard) {
        self.chunk_wall.merge(&other.chunk_wall);
        self.merge_wait.merge(&other.merge_wait);
        self.snapshot_restore.merge(&other.snapshot_restore);
        self.kernel_sweep.merge(&other.kernel_sweep);
        self.checkpoint_write.merge(&other.checkpoint_write);
    }

    /// The histograms with their stable metric names.
    pub fn iter_named(&self) -> [(&'static str, &LatencyHist); 5] {
        [
            ("chunk_wall", &self.chunk_wall),
            ("merge_wait", &self.merge_wait),
            ("snapshot_restore", &self.snapshot_restore),
            ("kernel_sweep", &self.kernel_sweep),
            ("checkpoint_write", &self.checkpoint_write),
        ]
    }

    /// Digest every histogram.
    pub fn summaries(&self) -> LatencySummaries {
        LatencySummaries {
            chunk_wall: self.chunk_wall.summary(),
            merge_wait: self.merge_wait.summary(),
            snapshot_restore: self.snapshot_restore.summary(),
            kernel_sweep: self.kernel_sweep.summary(),
            checkpoint_write: self.checkpoint_write.summary(),
        }
    }
}

/// Quantile digests of all five tracked latency distributions — the form
/// that lands in the metrics JSON `timing.latency` object.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummaries {
    /// Digest of [`LatencyShard::chunk_wall`].
    pub chunk_wall: LatencySummary,
    /// Digest of [`LatencyShard::merge_wait`].
    pub merge_wait: LatencySummary,
    /// Digest of [`LatencyShard::snapshot_restore`].
    pub snapshot_restore: LatencySummary,
    /// Digest of [`LatencyShard::kernel_sweep`].
    pub kernel_sweep: LatencySummary,
    /// Digest of [`LatencyShard::checkpoint_write`].
    pub checkpoint_write: LatencySummary,
}

impl LatencySummaries {
    /// The digests with their stable metric names.
    pub fn iter_named(&self) -> [(&'static str, &LatencySummary); 5] {
        [
            ("chunk_wall", &self.chunk_wall),
            ("merge_wait", &self.merge_wait),
            ("snapshot_restore", &self.snapshot_restore),
            ("kernel_sweep", &self.kernel_sweep),
            ("checkpoint_write", &self.checkpoint_write),
        ]
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// The one registry behind every telemetry surface: named counters,
/// named gauges, and the five latency histograms.
///
/// Owned by the merging thread. Workers never touch it — their latency
/// observations ride the chunk partials and are folded here at chunk
/// boundaries, so the merge schedule (and the campaign result) is
/// exactly the one the statistics already use.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    /// The merged latency distributions.
    pub latency: LatencyShard,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a monotonically-published counter to its current total.
    pub fn counter_set(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Add to a counter.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current counter value (0 when never set).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }
}

// ---------------------------------------------------------------------------
// Streaming event log (JSONL)
// ---------------------------------------------------------------------------

/// The lifecycle event names the engine emits, pinned by
/// `schemas/events.schema.json` (and its `event` enum).
pub const EVENT_NAMES: [&str; 8] = [
    "campaign_started",
    "plan_frozen",
    "chunk_merged",
    "checkpoint_written",
    "early_stop",
    "replay_verified",
    "worker_stalled",
    "campaign_finished",
];

/// An append-only JSONL lifecycle log (`--events PATH`).
///
/// One JSON object per line, written whole and flushed per line, so a
/// killed campaign leaves every completed line readable — crash safety
/// by construction rather than by recovery. Write errors are reported to
/// stderr once and then swallowed: a full disk must not take down the
/// campaign (pure-observer rule).
#[derive(Debug)]
pub struct EventLog {
    out: io::BufWriter<std::fs::File>,
    path: PathBuf,
    seq: u64,
    failed: bool,
}

impl EventLog {
    /// Create (truncating) the log at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self {
            out: io::BufWriter::new(std::fs::File::create(path)?),
            path: path.to_owned(),
            seq: 0,
            failed: false,
        })
    }

    /// Append one event line. `extra` is either empty or a pre-rendered
    /// JSON fragment starting with `", "` (e.g. `, "chunk": 3`).
    pub fn emit(&mut self, event: &str, elapsed_s: f64, extra: &str) {
        debug_assert!(EVENT_NAMES.contains(&event), "unknown event {event:?}");
        debug_assert!(extra.is_empty() || extra.starts_with(", "));
        let line = format!(
            "{{\"event\": \"{}\", \"seq\": {}, \"elapsed_s\": {}{}}}\n",
            json_escape(event),
            self.seq,
            crate::json::json_num(elapsed_s),
            extra
        );
        self.seq += 1;
        let r = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.flush());
        if let Err(e) = r {
            if !self.failed {
                eprintln!("warning: events log {}: {e}", self.path.display());
                self.failed = true;
            }
        }
    }

    /// Number of events emitted so far (the next line's `seq`).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Durability point: push buffered bytes to the OS (the per-line
    /// flush already does this; checkpoint boundaries call it again so
    /// the invariant survives future buffering changes).
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Escape a Prometheus label value (`\`, `"`, newline).
fn prom_label_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render a `{k="v",...}` label block ("" when no labels).
fn prom_labels(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_label_escape(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Format a metric value: integers without a fraction, floats via the
/// shortest-roundtrip form (Prometheus accepts both).
fn prom_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x.is_nan() {
        "NaN".to_owned()
    } else if x > 0.0 {
        "+Inf".to_owned()
    } else {
        "-Inf".to_owned()
    }
}

/// Render the registry in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, each latency
/// histogram as a `summary` with `quantile` labels plus `_sum`/`_count`.
/// All metric names carry the `xlmc_` prefix.
pub fn prom_render(registry: &MetricsRegistry, labels: &[(&str, String)]) -> String {
    use std::fmt::Write as _;
    let base = prom_labels(labels);
    let mut s = String::with_capacity(2048);
    for (name, value) in registry.counters() {
        let _ = writeln!(s, "# TYPE xlmc_{name} counter");
        let _ = writeln!(s, "xlmc_{name}{base} {value}");
    }
    for (name, value) in registry.gauges() {
        let _ = writeln!(s, "# TYPE xlmc_{name} gauge");
        let _ = writeln!(s, "xlmc_{name}{base} {}", prom_num(value));
    }
    for (name, hist) in registry.latency.iter_named() {
        let _ = writeln!(s, "# TYPE xlmc_{name}_seconds summary");
        for q in [0.5, 0.9, 0.99] {
            let mut q_labels: Vec<(&str, String)> = labels.to_vec();
            q_labels.push(("quantile", format!("{q}")));
            let _ = writeln!(
                s,
                "xlmc_{name}_seconds{} {}",
                prom_labels(&q_labels),
                prom_num(hist.quantile(q))
            );
        }
        let _ = writeln!(s, "xlmc_{name}_seconds_sum{base} {}", prom_num(hist.sum()));
        let _ = writeln!(s, "xlmc_{name}_seconds_count{base} {}", hist.count());
    }
    s
}

/// Write a prom snapshot crash-safely: temp file in the same directory,
/// then an atomic rename over the target — a scraper never sees a
/// half-written exposition.
pub fn write_prom(
    path: &Path,
    registry: &MetricsRegistry,
    labels: &[(&str, String)],
) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, prom_render(registry, labels))?;
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Stall watchdog
// ---------------------------------------------------------------------------

/// Detects a campaign that stopped merging chunks: if no progress is
/// noted within the wall-time budget, [`check`](Self::check) reports the
/// stall once (re-armed by the next progress).
///
/// The clock is injected — every method takes `now: Instant` — so tests
/// drive synthetic time with `Instant` arithmetic instead of sleeping.
#[derive(Debug)]
pub struct StallWatchdog {
    budget: Duration,
    last_progress: Instant,
    tripped: bool,
}

impl StallWatchdog {
    /// A watchdog armed at `now` with the given budget.
    pub fn new(budget: Duration, now: Instant) -> Self {
        Self {
            budget,
            last_progress: now,
            tripped: false,
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// A chunk was merged: reset the timer and re-arm.
    pub fn note_progress(&mut self, now: Instant) {
        self.last_progress = now;
        self.tripped = false;
    }

    /// Returns `Some(stalled_for)` the first time the budget is exceeded
    /// since the last progress; `None` otherwise (including while already
    /// tripped, so one stall emits one event).
    pub fn check(&mut self, now: Instant) -> Option<Duration> {
        if self.tripped {
            return None;
        }
        let waited = now.saturating_duration_since(self.last_progress);
        if waited >= self.budget {
            self.tripped = true;
            Some(waited)
        } else {
            None
        }
    }
}

/// Per-level MLMC progress attached to a
/// [`ProgressEvent`](crate::telemetry::ProgressEvent) under
/// `--estimator mlmc`: which level the just-merged chunk ran at and the
/// live per-level run counts, so
/// [`StderrProgress`](crate::telemetry::StderrProgress) can report
/// per-level state instead of one blended line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlmcProgress {
    /// Level tag of the chunk just merged (`LEVEL_RTL` = 0,
    /// `LEVEL_GATE` = 1).
    pub level: u8,
    /// Runs merged into the level-0 stream so far.
    pub n0: u64,
    /// Runs merged into the level-1 streams so far.
    pub n1: u64,
}

impl MlmcProgress {
    /// The live level-1 share of merged runs (0 when nothing merged).
    pub fn share1(&self) -> f64 {
        let total = self.n0 + self.n1;
        if total == 0 {
            0.0
        } else {
            self.n1 as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn histogram_quantiles_bound_observations() {
        let mut h = LatencyHist::default();
        for i in 1..=100u32 {
            h.record(i as f64 * 1e-3); // 1ms..100ms
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Bucket upper bounds over-estimate by at most 2^(1/4).
        let slack = 2f64.powf(1.0 / OCTAVE_SUB as f64);
        assert!(p50 >= 0.050 && p50 <= 0.050 * slack, "p50={p50}");
        assert!(p99 >= 0.099 && p99 <= 0.099 * slack, "p99={p99}");
        assert!(h.quantile(1.0) <= h.max());
        assert!(p50 <= h.quantile(0.9) && h.quantile(0.9) <= p99);
        assert!((h.sum() - 5.050).abs() < 1e-9);
        assert_eq!(h.max(), 0.1);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let values_a = [1e-6, 5e-4, 0.25, 3.0];
        let values_b = [2e-9, 0.125, 7.5];
        let mut a = LatencyHist::default();
        let mut b = LatencyHist::default();
        let mut combined = LatencyHist::default();
        for &v in &values_a {
            a.record(v);
            combined.record(v);
        }
        for &v in &values_b {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        // Merging into an empty histogram is a copy.
        let mut empty = LatencyHist::default();
        empty.merge(&combined);
        assert_eq!(empty, combined);
    }

    #[test]
    fn histogram_handles_degenerate_observations() {
        let mut h = LatencyHist::default();
        h.record(0.0);
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(1e9); // beyond the top bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1e9);
        assert!(h.quantile(0.25) <= MIN_SECONDS * 2.0);
        // The saturated tail still reports, clamped to the exact max.
        assert_eq!(h.quantile(1.0), h.max());
        let empty = LatencyHist::default();
        assert_eq!(empty.summary(), LatencySummary::default());
    }

    #[test]
    fn shard_absorb_folds_all_five() {
        let mut a = LatencyShard::default();
        let mut b = LatencyShard::default();
        b.chunk_wall.record(0.5);
        b.snapshot_restore.record(1e-4);
        b.kernel_sweep.record(2e-5);
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.chunk_wall.count(), 2);
        assert_eq!(a.snapshot_restore.count(), 2);
        assert_eq!(a.kernel_sweep.count(), 2);
        assert_eq!(a.merge_wait.count(), 0);
        let s = a.summaries();
        assert_eq!(s.chunk_wall.count, 2);
        assert_eq!(s.checkpoint_write, LatencySummary::default());
    }

    #[test]
    fn registry_counters_and_gauges() {
        let mut r = MetricsRegistry::new();
        r.counter_set("runs_total", 1024);
        r.counter_add("runs_total", 512);
        r.gauge_set("ssf", 0.021);
        assert_eq!(r.counter("runs_total"), 1536);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("ssf"), Some(0.021));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn prom_render_is_well_formed() {
        let mut r = MetricsRegistry::new();
        r.counter_set("runs_total", 2048);
        r.gauge_set("ssf", 0.017);
        r.latency.chunk_wall.record(0.25);
        let labels = [
            ("strategy", "importance".to_owned()),
            ("kernel", "weird\"name\\".to_owned()),
        ];
        let text = prom_render(&r, &labels);
        assert!(text.contains("# TYPE xlmc_runs_total counter"));
        assert!(text.contains(
            "xlmc_runs_total{strategy=\"importance\",kernel=\"weird\\\"name\\\\\"} 2048"
        ));
        assert!(text.contains("# TYPE xlmc_ssf gauge"));
        assert!(text.contains("# TYPE xlmc_chunk_wall_seconds summary"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("xlmc_chunk_wall_seconds_count{strategy"));
        assert!(text.contains("xlmc_merge_wait_seconds_count{strategy"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name_part, value) = line.rsplit_once(' ').expect("prom line has a value");
            assert!(name_part.starts_with("xlmc_"), "bad line: {line}");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "bad value in: {line}"
            );
        }
    }

    #[test]
    fn prom_write_is_atomic_and_parseable() {
        let path = std::env::temp_dir().join(format!("xlmc_prom_{}.txt", std::process::id()));
        let mut r = MetricsRegistry::new();
        r.counter_set("chunks_merged_total", 7);
        write_prom(&path, &r, &[]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("xlmc_chunks_merged_total 7"));
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file left behind"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn event_log_writes_valid_jsonl_with_monotonic_seq() {
        let path = std::env::temp_dir().join(format!("xlmc_events_{}.jsonl", std::process::id()));
        {
            let mut log = EventLog::create(&path).unwrap();
            log.emit("campaign_started", 0.0, ", \"seed\": 42");
            log.emit("chunk_merged", 0.5, ", \"chunk\": 0, \"runs_done\": 512");
            log.emit("campaign_finished", 1.0, "");
            assert_eq!(log.seq(), 3);
            log.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let doc = JsonValue::parse(line).unwrap();
            assert_eq!(doc.get("seq").and_then(JsonValue::as_u64), Some(i as u64));
            assert!(doc.get("event").and_then(JsonValue::as_str).is_some());
            assert!(doc.get("elapsed_s").and_then(JsonValue::as_f64).is_some());
        }
        assert_eq!(
            JsonValue::parse(lines[0])
                .unwrap()
                .get("seed")
                .and_then(JsonValue::as_u64),
            Some(42)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn watchdog_fires_once_per_stall_with_injected_clock() {
        let base = Instant::now();
        let s = Duration::from_secs;
        let mut dog = StallWatchdog::new(s(30), base);
        assert_eq!(dog.check(base + s(10)), None);
        assert_eq!(dog.check(base + s(29)), None);
        // Budget exceeded: fires exactly once.
        assert_eq!(dog.check(base + s(31)), Some(s(31)));
        assert_eq!(dog.check(base + s(60)), None, "already tripped");
        // Progress re-arms it.
        dog.note_progress(base + s(62));
        assert_eq!(dog.check(base + s(80)), None);
        assert_eq!(dog.check(base + s(92)), Some(s(30)));
        assert_eq!(dog.check(base + s(93)), None);
    }

    #[test]
    fn mlmc_progress_share() {
        let p = MlmcProgress {
            level: 1,
            n0: 3000,
            n1: 1000,
        };
        assert_eq!(p.share1(), 0.25);
        let empty = MlmcProgress {
            level: 0,
            n0: 0,
            n1: 0,
        };
        assert_eq!(empty.share1(), 0.0);
    }
}
