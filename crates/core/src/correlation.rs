//! Bit-flip correlation between cone cells and the responding signal
//! (pre-characterization step 2, Observation 2).
//!
//! The golden run of the synthetic benchmark records the per-cycle values
//! of every MPU register and primary input; a single bit-parallel sweep
//! derives the value trace of every combinational node, and switching
//! signatures plus the frame-aligned correlation `Corr_i(g, rs)` follow
//! with word-wide AND/popcount — the paper's "fast bit-parallel
//! calculation".

use crate::model::SystemModel;
use crate::space::SampleSpace;
use std::collections::HashMap;
use xlmc_gatesim::bitparallel::{evaluate_combinational, PackedTraces};
use xlmc_gatesim::signature::{correlation, SwitchingSignature};
use xlmc_netlist::GateId;
use xlmc_soc::golden::GoldenRun;

/// Frame-aligned bit-flip correlations for every sample-space cell.
#[derive(Debug, Clone)]
pub struct CorrelationData {
    corr: HashMap<(GateId, i32), f64>,
    cycles: usize,
}

impl CorrelationData {
    /// Compute correlations over the synthetic golden run for every
    /// `(cell, frame)` pair of the sample space.
    ///
    /// # Panics
    ///
    /// Panics when the golden run is empty.
    pub fn compute(model: &SystemModel, synthetic: &GoldenRun, space: &SampleSpace) -> Self {
        let netlist = model.mpu.netlist();
        let cycles = synthetic.cycles as usize;
        assert!(cycles > 0, "empty golden run");

        // Record register and input traces, then derive everything else.
        let mut traces = PackedTraces::zeroed(netlist, cycles);
        for (c, state) in synthetic.mpu_states.iter().enumerate() {
            let vec = model.mpu.state_vector(state);
            for (i, &dff) in netlist.dffs().iter().enumerate() {
                traces.set_value(dff, c, vec[i]);
            }
            let stim = &synthetic.stimulus[c];
            let inputs = model.mpu.input_values(stim.request, stim.cfg_write);
            for (i, &pi) in netlist.inputs().iter().enumerate() {
                traces.set_value(pi, c, inputs[i]);
            }
        }
        evaluate_combinational(netlist, &mut traces)
            .expect("MPU netlist is acyclic by construction");

        let rs = model.mpu.responding_signal();
        let rs_ss = SwitchingSignature::from_traces(&traces, rs);

        let mut corr = HashMap::new();
        let mut cell_ss: HashMap<GateId, SwitchingSignature> = HashMap::new();
        for frame_info in space.frames() {
            for &g in &frame_info.cells {
                let ss = cell_ss
                    .entry(g)
                    .or_insert_with(|| SwitchingSignature::from_traces(&traces, g));
                let c = correlation(ss, &rs_ss, frame_info.frame);
                corr.insert((g, frame_info.frame), c);
            }
        }
        Self { corr, cycles }
    }

    /// `Corr_i(g, rs)`, 0 when the pair was not in the sample space.
    pub fn corr(&self, g: GateId, frame: i32) -> f64 {
        self.corr.get(&(g, frame)).copied().unwrap_or(0.0)
    }

    /// Number of simulated cycles the correlations are based on.
    pub fn cycles(&self) -> usize {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlmc_soc::{workloads, MpuBit};

    fn setup() -> (SystemModel, GoldenRun, SampleSpace) {
        let model = SystemModel::with_defaults().unwrap();
        let synth = workloads::synthetic_precharacterization();
        let golden = GoldenRun::record(&synth.program, 20_000, 64);
        let space = SampleSpace::build(&model, 8, 0.0);
        (model, golden, space)
    }

    #[test]
    fn correlations_are_probabilities() {
        let (model, golden, space) = setup();
        let data = CorrelationData::compute(&model, &golden, &space);
        for f in space.frames() {
            for &g in &f.cells {
                let c = data.corr(g, f.frame);
                assert!((0.0..=1.0).contains(&c), "corr({g}, {}) = {c}", f.frame);
            }
        }
    }

    #[test]
    fn responding_signal_correlates_perfectly_with_itself() {
        let (model, golden, space) = setup();
        let data = CorrelationData::compute(&model, &golden, &space);
        let rs = model.mpu.responding_signal();
        // rs is in frame 0 of its own cone; the synthetic run must toggle it.
        let c = data.corr(rs, 0);
        assert!((c - 1.0).abs() < 1e-12, "Corr_0(rs, rs) = {c}");
    }

    #[test]
    fn some_cone_cells_correlate_more_than_others() {
        let (model, golden, space) = setup();
        let data = CorrelationData::compute(&model, &golden, &space);
        let f0 = space.frame_for(1).unwrap();
        let corrs: Vec<f64> = f0.cells.iter().map(|&g| data.corr(g, 0)).collect();
        let max = corrs.iter().cloned().fold(0.0, f64::max);
        let min = corrs.iter().cloned().fold(1.0, f64::min);
        assert!(max > 0.2, "max corr {max} too low — stimulus too quiet");
        assert!(max - min > 0.1, "correlations should discriminate cells");
    }

    #[test]
    fn unknown_pairs_report_zero() {
        let (model, golden, space) = setup();
        let data = CorrelationData::compute(&model, &golden, &space);
        let sticky = model.mpu.dff(MpuBit::StickyViol);
        assert_eq!(data.corr(sticky, 0), 0.0);
        assert_eq!(data.cycles() as u64, golden.cycles);
    }
}
