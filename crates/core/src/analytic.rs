//! Analytical outcome evaluation for memory-type errors (paper §4/§5.2).
//!
//! "When errors only exist in memory-type registers, we only need
//! analytical evaluation to determine the error impact." Memory-type errors
//! in this design live in the MPU configuration (and sticky status)
//! registers; their effect is fully captured by the pure protection
//! predicate [`xlmc_soc::MpuConfig::allows`]. The evaluation therefore
//! replays the golden run's recorded access trace against the *mutated*
//! configuration:
//!
//! * the target access must now pass (the illegal transition is created),
//! * every other recorded access must keep its golden verdict (a legal
//!   access that now violates traps the core and isolates the process —
//!   attack caught),
//! * the goal-specific follow-up accesses (e.g. the read scenario's leak
//!   store) must also pass.
//!
//! No RTL simulation is needed — this is the shortcut that lets the flow
//! skip the ~29% of strikes whose errors land only in memory-type
//! registers (paper Figure 10(a)).

use crate::model::Evaluation;
use xlmc_soc::workloads::LEAK_ADDR;
use xlmc_soc::{AccessKind, AttackGoal, MpuBit, MpuState};

/// The analytical verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyticVerdict {
    /// The attack succeeds: illegal transition created, nothing else trips.
    Success,
    /// The attack fails (caught, or the errors are functionally inert).
    Failure,
    /// The error set is outside the analytical model's reach; the flow must
    /// fall back to RTL simulation.
    NotApplicable,
}

/// Evaluate a memory-type error set injected at the start of cycle
/// `injection_cycle + 1` (errors latched at the end of `injection_cycle`).
pub fn evaluate(
    eval: &Evaluation,
    faulty_bits: &[MpuBit],
    injection_cycle: u64,
) -> AnalyticVerdict {
    // Goal guard: the static replay encodes the paper's two scenarios — the
    // target access must now pass, everything else must keep its golden
    // verdict. The escalation and skip goals invert that logic (their
    // success mode *is* a spurious violation of previously-legal traffic),
    // so the analytical model declines and the flow falls back to RTL.
    match eval.workload.goal {
        AttackGoal::IllegalWrite | AttackGoal::IllegalRead => {}
        AttackGoal::PrivilegeEscalation | AttackGoal::InstructionSkip => {
            return AnalyticVerdict::NotApplicable;
        }
    }
    // Capability guard: only configuration and sticky bits are captured by
    // the pure predicate.
    if !faulty_bits.iter().all(|b| b.is_config() || b.is_sticky()) {
        return AnalyticVerdict::NotApplicable;
    }
    // Sticky bits are pure status: no functional effect. If nothing else is
    // faulty the run behaves exactly like the golden run — a failed attack.
    if faulty_bits.iter().all(|b| b.is_sticky()) {
        return AnalyticVerdict::Failure;
    }
    // A configuration write after the injection would overwrite the error
    // in a way the static analysis cannot track.
    let golden = &eval.golden;
    let later_cfg_write = golden
        .stimulus
        .iter()
        .skip((injection_cycle + 1) as usize)
        .any(|s| s.cfg_write.is_some());
    if later_cfg_write {
        return AnalyticVerdict::NotApplicable;
    }

    // The mutated configuration: golden state entering the first faulty
    // cycle, with the error bits toggled.
    let base_idx = ((injection_cycle + 1).min(golden.cycles - 1)) as usize;
    let mut mutated: MpuState = golden.mpu_states[base_idx];
    for &b in faulty_bits {
        if b.is_config() {
            mutated.toggle_bit(b);
        }
    }
    let cfg = mutated.config;

    // Errors latched at the end of `injection_cycle` influence checks from
    // cycle `injection_cycle + 1`, whose verdicts resolve from
    // `injection_cycle + 2` on.
    let first_affected_resolution = injection_cycle + 2;
    let mut target_seen = false;
    for access in &golden.access_trace {
        if access.cycle < first_affected_resolution {
            continue;
        }
        let new_allowed = cfg.allows(access.req.addr, access.req.kind, access.req.user);
        if access.cycle == eval.target_cycle {
            target_seen = true;
            if !new_allowed {
                // The malicious access is still caught: golden behavior.
                return AnalyticVerdict::Failure;
            }
        } else if access.allowed && !new_allowed {
            // A legal access now violates: trap fires, process isolated.
            return AnalyticVerdict::Failure;
        } else if !access.allowed && new_allowed {
            // Some other blocked access now passes; behavior diverges in a
            // way the static replay cannot follow.
            return AnalyticVerdict::NotApplicable;
        }
    }
    if !target_seen {
        // The error cannot reach the target access (injected too late or
        // the trace is odd): behave like golden.
        return AnalyticVerdict::Failure;
    }

    // Goal-specific follow-up accesses executed only on the success path.
    let follow_ups: &[(u16, AccessKind)] = match eval.workload.goal {
        AttackGoal::IllegalWrite => &[],
        AttackGoal::IllegalRead => &[(LEAK_ADDR, AccessKind::Write)],
        AttackGoal::PrivilegeEscalation | AttackGoal::InstructionSkip => {
            unreachable!("gated to NotApplicable above")
        }
    };
    for &(addr, kind) in follow_ups {
        if !cfg.allows(addr, kind, true) {
            return AnalyticVerdict::Failure;
        }
    }
    AnalyticVerdict::Success
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Evaluation;
    use xlmc_soc::workloads;

    fn eval_write() -> Evaluation {
        Evaluation::new(workloads::illegal_write()).unwrap()
    }

    fn te(eval: &Evaluation) -> u64 {
        eval.target_cycle - 10
    }

    #[test]
    fn enable_bit_flip_succeeds() {
        // Disabling the MPU lets everything through: the canonical
        // memory-type attack.
        let e = eval_write();
        let verdict = evaluate(&e, &[MpuBit::Enable], te(&e));
        assert_eq!(verdict, AnalyticVerdict::Success);
    }

    #[test]
    fn limit_extension_succeeds() {
        // Region 0 limit 0x5fff -> flip bit 13 -> 0x7fff covers the secret.
        let e = eval_write();
        let verdict = evaluate(&e, &[MpuBit::Limit(0, 13)], te(&e));
        assert_eq!(verdict, AnalyticVerdict::Success);
    }

    #[test]
    fn limit_shrink_fails_attack() {
        // Flipping limit bit 14 (0x5fff -> 0x1fff) makes the *legal* user
        // traffic violate: the attack gets the process isolated early.
        let e = eval_write();
        let verdict = evaluate(&e, &[MpuBit::Limit(0, 14)], te(&e));
        assert_eq!(verdict, AnalyticVerdict::Failure);
    }

    #[test]
    fn unused_region_bit_is_inert() {
        let e = eval_write();
        let verdict = evaluate(&e, &[MpuBit::Base(2, 5)], te(&e));
        assert_eq!(verdict, AnalyticVerdict::Failure);
    }

    #[test]
    fn sticky_only_errors_fail() {
        let e = eval_write();
        let verdict = evaluate(&e, &[MpuBit::StickyViol, MpuBit::StickyAddr(3)], te(&e));
        assert_eq!(verdict, AnalyticVerdict::Failure);
    }

    #[test]
    fn pipe_bits_are_not_applicable() {
        let e = eval_write();
        let verdict = evaluate(&e, &[MpuBit::PipeValid], te(&e));
        assert_eq!(verdict, AnalyticVerdict::NotApplicable);
    }

    #[test]
    fn injection_during_setup_is_not_applicable() {
        // Config writes still pending -> static analysis declines.
        let e = eval_write();
        let verdict = evaluate(&e, &[MpuBit::Enable], 2);
        assert_eq!(verdict, AnalyticVerdict::NotApplicable);
    }

    /// The critical soundness test: the analytical verdict must agree with
    /// a full RTL fault simulation for every single config-bit flip.
    #[test]
    fn analytic_agrees_with_rtl_on_every_config_bit() {
        let e = eval_write();
        let inject_at = te(&e);
        for bit in MpuBit::all() {
            if !bit.is_config() {
                continue;
            }
            let verdict = evaluate(&e, &[bit], inject_at);
            if verdict == AnalyticVerdict::NotApplicable {
                continue;
            }
            // RTL reference: restore, run to the injection cycle, execute
            // it, flip, resume.
            let mut soc = e.golden.nearest_checkpoint(inject_at).clone();
            while soc.cycle < inject_at {
                soc.step();
            }
            soc.step();
            soc.mpu.toggle_bit(bit);
            soc.run_until_halt(e.max_cycles);
            let rtl_success = e.workload.goal.succeeded(&soc);
            assert_eq!(
                verdict == AnalyticVerdict::Success,
                rtl_success,
                "analytic vs RTL mismatch for {bit:?}"
            );
        }
    }

    #[test]
    fn escalation_and_skip_goals_always_fall_back_to_rtl() {
        // Their success mode is a *spurious* violation, which the static
        // replay's rules would misclassify as a caught attack.
        for w in [workloads::trap_escalation(), workloads::instruction_skip()] {
            let e = Evaluation::new(w).unwrap();
            let inject_at = e.target_cycle - 10;
            assert_eq!(
                evaluate(&e, &[MpuBit::Enable], inject_at),
                AnalyticVerdict::NotApplicable
            );
        }
    }

    #[test]
    fn read_workload_follow_up_is_checked() {
        let e = Evaluation::new(workloads::illegal_read()).unwrap();
        let inject_at = e.target_cycle - 10;
        // Disabling the MPU also allows the leak store: success.
        assert_eq!(
            evaluate(&e, &[MpuBit::Enable], inject_at),
            AnalyticVerdict::Success
        );
    }
}
