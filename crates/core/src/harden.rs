//! Register hardening: the countermeasure study of paper §6.
//!
//! "Suppose we use error resilient designs for the identified 3% registers,
//! which permits around 10X better resilience with 3X area overhead, then
//! the overall SSF can be reduced by up to 6.5X with less than 2% increase
//! of MPU area." Hardened flip-flops (built-in soft-error resilience, refs
//! [19, 20]) absorb most upsets: a would-be flip survives with probability
//! `1 / resilience`.

use crate::model::SystemModel;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use xlmc_netlist::CellKind;
use xlmc_soc::MpuBit;

/// Electrical parameters of the hardened flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardeningModel {
    /// Upset-rate improvement: a flip survives with probability
    /// `1 / resilience`.
    pub resilience: f64,
    /// Cell-area multiplier of the hardened flip-flop.
    pub area_multiplier: f64,
}

impl Default for HardeningModel {
    fn default() -> Self {
        // The paper's numbers from refs [19, 20].
        Self {
            resilience: 10.0,
            area_multiplier: 3.0,
        }
    }
}

/// The set of hardened registers plus the hardening model.
#[derive(Debug, Clone)]
pub struct HardenedSet {
    bits: HashSet<MpuBit>,
    /// The hardening parameters.
    pub model: HardeningModel,
}

impl HardenedSet {
    /// Harden the given register bits.
    pub fn new(bits: impl IntoIterator<Item = MpuBit>, model: HardeningModel) -> Self {
        Self {
            bits: bits.into_iter().collect(),
            model,
        }
    }

    /// Number of hardened registers.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether no register is hardened.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether a register is hardened.
    pub fn contains(&self, bit: MpuBit) -> bool {
        self.bits.contains(&bit)
    }

    /// Whether a would-be flip on `bit` survives the hardening.
    pub fn flip_survives(&self, bit: MpuBit, rng: &mut impl Rng) -> bool {
        if !self.bits.contains(&bit) {
            return true;
        }
        rng.gen::<f64>() < 1.0 / self.model.resilience
    }

    /// The fractional area increase of the MPU from hardening these
    /// registers.
    pub fn area_overhead(&self, model: &SystemModel) -> f64 {
        let total = model.mpu.netlist().stats().area;
        let added =
            self.bits.len() as f64 * CellKind::Dff.area() * (self.model.area_multiplier - 1.0);
        added / total
    }
}

/// Rank registers by their SSF attribution (descending) and select the top
/// `fraction` of all registers. Returns the selected bits and the fraction
/// of total attribution they cover — the paper's "3% of registers
/// contribute more than 95% of SSF" analysis.
pub fn select_top_registers(
    attribution: &BTreeMap<MpuBit, f64>,
    total_registers: usize,
    fraction: f64,
) -> (Vec<MpuBit>, f64) {
    let mut ranked: Vec<(MpuBit, f64)> = attribution
        .iter()
        .map(|(&b, &w)| (b, w))
        .filter(|&(_, w)| w > 0.0)
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap()
            .then(a.0.dff_name().cmp(&b.0.dff_name()))
    });
    let take = ((total_registers as f64 * fraction).ceil() as usize).max(1);
    let total: f64 = ranked.iter().map(|&(_, w)| w).sum();
    let selected: Vec<(MpuBit, f64)> = ranked.into_iter().take(take).collect();
    let covered: f64 = selected.iter().map(|&(_, w)| w).sum();
    let coverage = if total > 0.0 { covered / total } else { 0.0 };
    (selected.into_iter().map(|(b, _)| b).collect(), coverage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unhardened_bits_always_flip() {
        let set = HardenedSet::new([MpuBit::Violation], HardeningModel::default());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(set.flip_survives(MpuBit::PipeValid, &mut rng));
        }
    }

    #[test]
    fn hardened_bits_absorb_most_flips() {
        let set = HardenedSet::new([MpuBit::Violation], HardeningModel::default());
        let mut rng = StdRng::seed_from_u64(2);
        let survived = (0..10_000)
            .filter(|_| set.flip_survives(MpuBit::Violation, &mut rng))
            .count();
        let rate = survived as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "survival rate {rate}");
    }

    #[test]
    fn area_overhead_is_small_for_few_registers() {
        let model = SystemModel::with_defaults().unwrap();
        let total_regs = model.mpu.netlist().dffs().len();
        let three_percent = (total_regs as f64 * 0.03).ceil() as usize;
        let bits: Vec<MpuBit> = MpuBit::all().into_iter().take(three_percent).collect();
        let set = HardenedSet::new(bits, HardeningModel::default());
        let overhead = set.area_overhead(&model);
        assert!(overhead > 0.0);
        assert!(
            overhead < 0.05,
            "hardening 3% of registers costs {:.1}% area",
            overhead * 100.0
        );
    }

    #[test]
    fn top_register_selection_ranks_by_weight() {
        let mut attribution = BTreeMap::new();
        attribution.insert(MpuBit::Violation, 10.0);
        attribution.insert(MpuBit::PipeValid, 5.0);
        attribution.insert(MpuBit::PipeUser, 1.0);
        attribution.insert(MpuBit::Enable, 0.0);
        let (bits, coverage) = select_top_registers(&attribution, 100, 0.02);
        assert_eq!(bits.len(), 2);
        assert!(bits.contains(&MpuBit::Violation));
        assert!(bits.contains(&MpuBit::PipeValid));
        assert!((coverage - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_attribution_selects_nothing_meaningful() {
        let (bits, coverage) = select_top_registers(&BTreeMap::new(), 100, 0.03);
        assert!(bits.is_empty());
        assert_eq!(coverage, 0.0);
    }
}
