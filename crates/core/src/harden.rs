//! Register hardening: the countermeasure study of paper §6.
//!
//! "Suppose we use error resilient designs for the identified 3% registers,
//! which permits around 10X better resilience with 3X area overhead, then
//! the overall SSF can be reduced by up to 6.5X with less than 2% increase
//! of MPU area." Hardened flip-flops (built-in soft-error resilience, refs
//! [19, 20]) absorb most upsets: a would-be flip survives with probability
//! `1 / resilience`.

use crate::model::SystemModel;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use xlmc_netlist::CellKind;
use xlmc_soc::MpuBit;

/// Electrical parameters of the hardened flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardeningModel {
    /// Upset-rate improvement: a flip survives with probability
    /// `1 / resilience`.
    pub resilience: f64,
    /// Cell-area multiplier of the hardened flip-flop.
    pub area_multiplier: f64,
}

impl Default for HardeningModel {
    fn default() -> Self {
        // The paper's numbers from refs [19, 20].
        Self {
            resilience: 10.0,
            area_multiplier: 3.0,
        }
    }
}

/// The set of hardened registers plus the hardening model.
#[derive(Debug, Clone)]
pub struct HardenedSet {
    bits: HashSet<MpuBit>,
    /// The hardening parameters.
    pub model: HardeningModel,
}

impl HardenedSet {
    /// Harden the given register bits.
    pub fn new(bits: impl IntoIterator<Item = MpuBit>, model: HardeningModel) -> Self {
        Self {
            bits: bits.into_iter().collect(),
            model,
        }
    }

    /// Number of hardened registers.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether no register is hardened.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether a register is hardened.
    pub fn contains(&self, bit: MpuBit) -> bool {
        self.bits.contains(&bit)
    }

    /// Whether a would-be flip on `bit` survives the hardening.
    pub fn flip_survives(&self, bit: MpuBit, rng: &mut impl Rng) -> bool {
        if !self.bits.contains(&bit) {
            return true;
        }
        rng.gen::<f64>() < 1.0 / self.model.resilience
    }

    /// The fractional area increase of the MPU from hardening these
    /// registers.
    pub fn area_overhead(&self, model: &SystemModel) -> f64 {
        let total = model.mpu.netlist().stats().area;
        let added =
            self.bits.len() as f64 * CellKind::Dff.area() * (self.model.area_multiplier - 1.0);
        added / total
    }
}

/// SCFI-style encoded control state (arXiv:2208.01356).
///
/// The MPU's non-configuration state — the bus-check pipeline and the
/// violation/sticky FSM — is re-encoded with a fault-detecting state code,
/// so a single-bit upset lands outside the valid codeword set and is
/// caught by the continuous signature check. Modeled as a per-bit *miss
/// rate*: a would-be flip on a covered bit survives (escapes the code)
/// with probability `miss_rate`.
#[derive(Debug, Clone)]
pub struct ScfiFsm {
    covered: HashSet<MpuBit>,
    /// Probability that a flip on a covered bit escapes the code check.
    pub miss_rate: f64,
    /// Cell-area multiplier of an encoded state flip-flop.
    pub area_multiplier: f64,
}

impl ScfiFsm {
    /// Encode every non-configuration register (pipeline + FSM + sticky
    /// status) with the default SCFI parameters.
    pub fn new() -> Self {
        Self::with_miss_rate(0.05)
    }

    /// Encode the non-configuration registers with an explicit miss rate.
    pub fn with_miss_rate(miss_rate: f64) -> Self {
        Self {
            covered: MpuBit::all()
                .into_iter()
                .filter(|b| !b.is_config())
                .collect(),
            miss_rate,
            // Encoded flops carry the code bits' share plus the checker.
            area_multiplier: 1.6,
        }
    }

    /// Number of encoded registers.
    pub fn len(&self) -> usize {
        self.covered.len()
    }

    /// Whether the encoding covers no register at all.
    pub fn is_empty(&self) -> bool {
        self.covered.is_empty()
    }

    /// Whether a register is covered by the encoding.
    pub fn contains(&self, bit: MpuBit) -> bool {
        self.covered.contains(&bit)
    }
}

impl Default for ScfiFsm {
    fn default() -> Self {
        Self::new()
    }
}

/// Majority-voted replicated MPU configuration registers.
///
/// Every configuration bit is stored in three copies behind a majority
/// voter; a single-bit upset in any one copy is outvoted on the next read,
/// so a flip on a covered bit **never** lands. Deterministic — no survival
/// draw is consumed.
#[derive(Debug, Clone)]
pub struct DupConfigVote {
    covered: HashSet<MpuBit>,
    /// Per-bit area multiplier: two extra DFF copies plus the voter.
    pub area_multiplier: f64,
}

impl DupConfigVote {
    /// Replicate every configuration register.
    pub fn new() -> Self {
        Self {
            covered: MpuBit::all()
                .into_iter()
                .filter(|b| b.is_config())
                .collect(),
            area_multiplier: 2.2,
        }
    }

    /// Number of replicated registers.
    pub fn len(&self) -> usize {
        self.covered.len()
    }

    /// Whether the voter covers no register at all.
    pub fn is_empty(&self) -> bool {
        self.covered.is_empty()
    }

    /// Whether a register is covered by the voting.
    pub fn contains(&self, bit: MpuBit) -> bool {
        self.covered.contains(&bit)
    }
}

impl Default for DupConfigVote {
    fn default() -> Self {
        Self::new()
    }
}

/// A hardening countermeasure the fault flow understands.
///
/// Every variant answers the same two questions the flow asks: does a
/// would-be flip on a bit survive the countermeasure (applied in
/// `conclude_with` *before* classification, so the analytic/RTL split sees
/// the post-hardening error set), and what does the countermeasure cost in
/// area.
#[derive(Debug, Clone)]
pub enum HardenedVariant {
    /// The paper's §6 study: uniformly resilient DFFs on selected bits.
    Uniform(HardenedSet),
    /// SCFI-style encoded control/FSM state ([`ScfiFsm`]).
    ScfiFsm(ScfiFsm),
    /// Majority-voted replicated configuration registers
    /// ([`DupConfigVote`]).
    DupConfigVote(DupConfigVote),
}

impl HardenedVariant {
    /// Short name used in reports and the scenario matrix.
    pub fn name(&self) -> &'static str {
        match self {
            HardenedVariant::Uniform(_) => "uniform",
            HardenedVariant::ScfiFsm(_) => "scfi_fsm",
            HardenedVariant::DupConfigVote(_) => "dup_config_vote",
        }
    }

    /// Whether a would-be flip on `bit` survives the countermeasure.
    ///
    /// Deterministic variants must not consume survival draws, and
    /// stochastic variants must consume exactly one per covered bit — the
    /// per-run stream discipline all three kernels rely on.
    pub fn flip_survives(&self, bit: MpuBit, rng: &mut impl Rng) -> bool {
        match self {
            HardenedVariant::Uniform(set) => set.flip_survives(bit, rng),
            HardenedVariant::ScfiFsm(scfi) => {
                if !scfi.covered.contains(&bit) {
                    return true;
                }
                rng.gen::<f64>() < scfi.miss_rate
            }
            HardenedVariant::DupConfigVote(vote) => !vote.covered.contains(&bit),
        }
    }

    /// The fractional area increase of the MPU from this countermeasure.
    pub fn area_overhead(&self, model: &SystemModel) -> f64 {
        let total = model.mpu.netlist().stats().area;
        let added = match self {
            HardenedVariant::Uniform(set) => {
                return set.area_overhead(model);
            }
            HardenedVariant::ScfiFsm(scfi) => {
                scfi.covered.len() as f64 * CellKind::Dff.area() * (scfi.area_multiplier - 1.0)
            }
            HardenedVariant::DupConfigVote(vote) => {
                vote.covered.len() as f64 * CellKind::Dff.area() * (vote.area_multiplier - 1.0)
            }
        };
        added / total
    }
}

/// Rank registers by their SSF attribution (descending) and select the top
/// `fraction` of all registers. Returns the selected bits and the fraction
/// of total attribution they cover — the paper's "3% of registers
/// contribute more than 95% of SSF" analysis.
pub fn select_top_registers(
    attribution: &BTreeMap<MpuBit, f64>,
    total_registers: usize,
    fraction: f64,
) -> (Vec<MpuBit>, f64) {
    let mut ranked: Vec<(MpuBit, f64)> = attribution
        .iter()
        .map(|(&b, &w)| (b, w))
        .filter(|&(_, w)| w > 0.0)
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap()
            .then(a.0.dff_name().cmp(&b.0.dff_name()))
    });
    let take = ((total_registers as f64 * fraction).ceil() as usize).max(1);
    let total: f64 = ranked.iter().map(|&(_, w)| w).sum();
    let selected: Vec<(MpuBit, f64)> = ranked.into_iter().take(take).collect();
    let covered: f64 = selected.iter().map(|&(_, w)| w).sum();
    let coverage = if total > 0.0 { covered / total } else { 0.0 };
    (selected.into_iter().map(|(b, _)| b).collect(), coverage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unhardened_bits_always_flip() {
        let set = HardenedSet::new([MpuBit::Violation], HardeningModel::default());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(set.flip_survives(MpuBit::PipeValid, &mut rng));
        }
    }

    #[test]
    fn hardened_bits_absorb_most_flips() {
        let set = HardenedSet::new([MpuBit::Violation], HardeningModel::default());
        let mut rng = StdRng::seed_from_u64(2);
        let survived = (0..10_000)
            .filter(|_| set.flip_survives(MpuBit::Violation, &mut rng))
            .count();
        let rate = survived as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "survival rate {rate}");
    }

    #[test]
    fn area_overhead_is_small_for_few_registers() {
        let model = SystemModel::with_defaults().unwrap();
        let total_regs = model.mpu.netlist().dffs().len();
        let three_percent = (total_regs as f64 * 0.03).ceil() as usize;
        let bits: Vec<MpuBit> = MpuBit::all().into_iter().take(three_percent).collect();
        let set = HardenedSet::new(bits, HardeningModel::default());
        let overhead = set.area_overhead(&model);
        assert!(overhead > 0.0);
        assert!(
            overhead < 0.05,
            "hardening 3% of registers costs {:.1}% area",
            overhead * 100.0
        );
    }

    #[test]
    fn scfi_covers_exactly_the_non_config_state() {
        let scfi = ScfiFsm::new();
        let mut rng = StdRng::seed_from_u64(3);
        for bit in MpuBit::all() {
            assert_eq!(scfi.contains(bit), !bit.is_config(), "{bit:?}");
            let v = HardenedVariant::ScfiFsm(scfi.clone());
            if bit.is_config() {
                // Uncovered: always flips, never consumes a draw.
                assert!(v.flip_survives(bit, &mut rng));
            }
        }
        // Covered bits escape the code only at the miss rate.
        let v = HardenedVariant::ScfiFsm(ScfiFsm::with_miss_rate(0.05));
        let survived = (0..10_000)
            .filter(|_| v.flip_survives(MpuBit::PipeValid, &mut rng))
            .count();
        let rate = survived as f64 / 10_000.0;
        assert!((rate - 0.05).abs() < 0.01, "miss rate {rate}");
    }

    #[test]
    fn config_voting_is_deterministic_and_total_on_config_bits() {
        let v = HardenedVariant::DupConfigVote(DupConfigVote::new());
        let mut rng = StdRng::seed_from_u64(4);
        for bit in MpuBit::all() {
            assert_eq!(v.flip_survives(bit, &mut rng), !bit.is_config(), "{bit:?}");
        }
        // No survival draw was consumed: the stream is still at its head.
        let mut twin = StdRng::seed_from_u64(4);
        assert_eq!(rng.gen::<u64>(), twin.gen::<u64>());
    }

    #[test]
    fn variant_area_overheads_are_sane() {
        let model = SystemModel::with_defaults().unwrap();
        let uniform = HardenedVariant::Uniform(HardenedSet::new(
            [MpuBit::Violation, MpuBit::Enable],
            HardeningModel::default(),
        ));
        let scfi = HardenedVariant::ScfiFsm(ScfiFsm::new());
        let vote = HardenedVariant::DupConfigVote(DupConfigVote::new());
        for v in [&uniform, &scfi, &vote] {
            let overhead = v.area_overhead(&model);
            assert!(overhead > 0.0, "{} overhead {overhead}", v.name());
            assert!(overhead < 0.6, "{} overhead {overhead}", v.name());
        }
        // Voting every config register must cost more than hardening two
        // bits uniformly.
        assert!(vote.area_overhead(&model) > uniform.area_overhead(&model));
        assert_eq!(uniform.name(), "uniform");
        assert_eq!(scfi.name(), "scfi_fsm");
        assert_eq!(vote.name(), "dup_config_vote");
    }

    #[test]
    fn top_register_selection_ranks_by_weight() {
        let mut attribution = BTreeMap::new();
        attribution.insert(MpuBit::Violation, 10.0);
        attribution.insert(MpuBit::PipeValid, 5.0);
        attribution.insert(MpuBit::PipeUser, 1.0);
        attribution.insert(MpuBit::Enable, 0.0);
        let (bits, coverage) = select_top_registers(&attribution, 100, 0.02);
        assert_eq!(bits.len(), 2);
        assert!(bits.contains(&MpuBit::Violation));
        assert!(bits.contains(&MpuBit::PipeValid));
        assert!((coverage - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_attribution_selects_nothing_meaningful() {
        let (bits, coverage) = select_top_registers(&BTreeMap::new(), 100, 0.03);
        assert!(bits.is_empty());
        assert_eq!(coverage, 0.0);
    }
}
