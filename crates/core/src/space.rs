//! The attack sample space derived from responding-signal cones
//! (pre-characterization step 1, Observation 1).
//!
//! Only circuitry in the fanin/fanout cones of the responding signal can
//! influence whether the illegal transition is created, so the candidate
//! strike centers for a given timing distance `t` are the cells of the
//! corresponding unrolled frame. A strike `t` cycles before the target
//! cycle corrupts state that needs `t − 1` sequential crossings (or `t − 1`
//! cycles of persistence) to still matter when the responding-signal
//! register is consumed, so timing distance `t` maps to fanin frame
//! `i = t − 1`; `t = 1` additionally reaches the fanout side (the
//! responding-signal register itself).
//!
//! Because the spot model strikes a *region*, a center just outside a cone
//! can still cover cone cells; the space therefore expands every frame by a
//! configurable halo so the importance distributions keep full support over
//! success-capable centers.

use crate::model::SystemModel;
use std::collections::HashSet;
use xlmc_netlist::cones;
use xlmc_netlist::{CellKind, GateId};

/// The candidate cells for one timing distance.
#[derive(Debug, Clone)]
pub struct TimingFrame {
    /// Timing distance `t = T_t − T_e`.
    pub t: i64,
    /// The unrolled frame index this `t` maps to.
    pub frame: i32,
    /// Raw cone cells of the frame (placeable only).
    pub cone_cells: Vec<GateId>,
    /// Candidate strike centers: cone cells plus the halo.
    pub cells: Vec<GateId>,
}

/// The full sample space over the configured timing-distance range.
#[derive(Debug, Clone)]
pub struct SampleSpace {
    frames: Vec<TimingFrame>,
    t_min: i64,
}

impl SampleSpace {
    /// Build the space for `t ∈ [1, t_max]` with the given halo radius.
    ///
    /// # Panics
    ///
    /// Panics when `t_max < 1`.
    pub fn build(model: &SystemModel, t_max: i64, halo_radius: f64) -> Self {
        assert!(t_max >= 1, "need at least one timing distance");
        let netlist = model.mpu.netlist();
        let rs = model.mpu.responding_signal();
        let cone = cones::cone_set(netlist, rs, (t_max - 1) as u32, 1);
        let placeable: HashSet<GateId> = model.placement.placeable().iter().copied().collect();

        let mut frames = Vec::with_capacity(t_max as usize);
        for t in 1..=t_max {
            let frame = (t - 1) as i32;
            let mut cone_cells: Vec<GateId> = cone
                .frame(frame)
                .iter()
                .copied()
                .filter(|g| placeable.contains(g))
                .collect();
            if t == 1 {
                // The fanout side: the responding-signal register (and any
                // logic between it and the core) is attackable with t = 1.
                cone_cells.extend(
                    cone.frame(-1)
                        .iter()
                        .copied()
                        .filter(|g| placeable.contains(g)),
                );
                cone_cells.sort_unstable();
                cone_cells.dedup();
            }
            let cells = expand_halo(model, &cone_cells, halo_radius);
            frames.push(TimingFrame {
                t,
                frame,
                cone_cells,
                cells,
            });
        }
        Self { frames, t_min: 1 }
    }

    /// The frame for a timing distance, `None` outside the range.
    pub fn frame_for(&self, t: i64) -> Option<&TimingFrame> {
        let idx = t.checked_sub(self.t_min)?;
        self.frames.get(usize::try_from(idx).ok()?)
    }

    /// All frames in ascending `t` order.
    pub fn frames(&self) -> &[TimingFrame] {
        &self.frames
    }

    /// The union of candidate cells over all timing distances.
    pub fn all_cells(&self) -> Vec<GateId> {
        let mut all: Vec<GateId> = self
            .frames
            .iter()
            .flat_map(|f| f.cells.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Per-frame register counts for the sample-space-reduction figure
    /// (paper Figure 8(b)): `(t, registers_in_cone)` pairs.
    pub fn cone_register_counts(&self, model: &SystemModel) -> Vec<(i64, usize)> {
        let netlist = model.mpu.netlist();
        self.frames
            .iter()
            .map(|f| {
                let regs = f
                    .cone_cells
                    .iter()
                    .filter(|&&g| netlist.gate(g).kind == CellKind::Dff)
                    .count();
                (f.t, regs)
            })
            .collect()
    }
}

/// Cone cells plus every placeable cell within `radius` of one of them.
fn expand_halo(model: &SystemModel, cone_cells: &[GateId], radius: f64) -> Vec<GateId> {
    if radius <= 0.0 {
        return cone_cells.to_vec();
    }
    let mut out: HashSet<GateId> = cone_cells.iter().copied().collect();
    for &c in cone_cells {
        for g in model.placement.cells_within(c, radius) {
            out.insert(g);
        }
    }
    let mut v: Vec<GateId> = out.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlmc_soc::MpuBit;

    fn model() -> SystemModel {
        SystemModel::with_defaults().unwrap()
    }

    #[test]
    fn t1_contains_comparator_logic_and_violation_register() {
        let m = model();
        let space = SampleSpace::build(&m, 10, 0.0);
        let f1 = space.frame_for(1).unwrap();
        // Frame 0 of the fanin cone: config + pipe registers and all the
        // comparator logic; fanout frame: the violation register.
        assert!(f1.cone_cells.contains(&m.mpu.dff(MpuBit::PipeAddr(0))));
        assert!(f1.cone_cells.contains(&m.mpu.dff(MpuBit::Enable)));
        assert!(f1.cone_cells.contains(&m.mpu.dff(MpuBit::Violation)));
        assert!(f1.cone_cells.len() > 300, "got {}", f1.cone_cells.len());
    }

    #[test]
    fn deeper_frames_shrink_to_the_config_loop() {
        let m = model();
        let space = SampleSpace::build(&m, 10, 0.0);
        let f1 = space.frame_for(1).unwrap();
        let f3 = space.frame_for(3).unwrap();
        let f9 = space.frame_for(9).unwrap();
        assert!(f3.cone_cells.len() < f1.cone_cells.len());
        // Config registers persist in every frame (hold-mux self-loop).
        for f in [f3, f9] {
            assert!(f.cone_cells.contains(&m.mpu.dff(MpuBit::Base(0, 0))));
            assert!(!f.cone_cells.contains(&m.mpu.dff(MpuBit::Violation)));
            assert!(!f.cone_cells.contains(&m.mpu.dff(MpuBit::PipeAddr(0))));
        }
        // Deep frames are the steady config loop.
        assert_eq!(f9.cone_cells.len(), f3.cone_cells.len());
    }

    #[test]
    fn sticky_registers_are_outside_every_frame() {
        let m = model();
        let space = SampleSpace::build(&m, 6, 0.0);
        for f in space.frames() {
            assert!(
                !f.cone_cells.contains(&m.mpu.dff(MpuBit::StickyViol)),
                "t = {}",
                f.t
            );
        }
    }

    #[test]
    fn halo_expands_but_never_shrinks() {
        let m = model();
        let bare = SampleSpace::build(&m, 4, 0.0);
        let halo = SampleSpace::build(&m, 4, 2.0);
        for t in 1..=4 {
            let b = bare.frame_for(t).unwrap();
            let h = halo.frame_for(t).unwrap();
            assert!(h.cells.len() >= b.cells.len(), "t = {t}");
            for g in &b.cells {
                assert!(h.cells.contains(g), "t = {t}: lost {g}");
            }
        }
    }

    #[test]
    fn sample_space_is_much_smaller_than_the_netlist() {
        let m = model();
        let space = SampleSpace::build(&m, 50, 0.0);
        let total_cells = m.placement.placeable().len();
        // Deep frames are tiny; the space-reduction effect of Observation 1.
        let deep = space.frame_for(50).unwrap().cone_cells.len();
        assert!(
            deep * 2 < total_cells,
            "deep frame {deep} vs total {total_cells}"
        );
        // And in register terms (the paper's Figure 8(b) metric) the deep
        // frames keep only the configuration registers.
        let deep_regs = space.cone_register_counts(&m).last().unwrap().1;
        let total_regs = m.mpu.netlist().dffs().len();
        assert!(
            deep_regs * 7 < total_regs * 6,
            "regs {deep_regs}/{total_regs}"
        );
    }

    #[test]
    fn frame_for_out_of_range_is_none() {
        let m = model();
        let space = SampleSpace::build(&m, 4, 0.0);
        assert!(space.frame_for(0).is_none());
        assert!(space.frame_for(5).is_none());
        assert!(space.frame_for(-1).is_none());
    }

    #[test]
    fn register_counts_decline_with_t() {
        let m = model();
        let space = SampleSpace::build(&m, 8, 0.0);
        let counts = space.cone_register_counts(&m);
        assert_eq!(counts.len(), 8);
        assert!(counts[0].1 > counts[3].1);
        // All counts bounded by the total register count.
        let total = m.mpu.netlist().dffs().len();
        for &(_, c) in &counts {
            assert!(c <= total);
        }
    }
}
