//! Per-run random streams for the sharded campaign engine.
//!
//! The parallel estimator must produce **bit-identical** results at any
//! thread count. That rules out threading one sequential RNG through the
//! runs: whichever worker draws first would perturb every later run.
//! Instead each run `i` of a campaign gets its own generator derived
//! purely from `(seed, i)`:
//!
//! ```text
//! state0(seed, i) = mix(mix(seed ^ GOLDEN * i))        // stream head
//! next()          = SplitMix64 step from state0
//! ```
//!
//! where `mix` is the SplitMix64 finalizer (Stafford's mix13 variant) and
//! `GOLDEN` is 2⁶⁴/φ. Double-mixing decorrelates the `(seed, i)` lattice
//! so neighbouring runs land in unrelated regions of the state space; the
//! per-run stream itself is a plain SplitMix64 sequence, which passes
//! BigCrush and is more than enough for Monte Carlo sampling.
//!
//! The derivation is part of the campaign's public contract: campaign
//! results are a pure function of `(seed, n, strategy)` — never of the
//! thread count or the work schedule. See DESIGN.md, "Campaign engine".

use rand::{RngCore, SeedableRng};

/// 2⁶⁴ / φ, the Weyl increment of SplitMix64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer (Stafford mix13).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 generator.
///
/// Cheap to construct (two multiplies per word of state), so the campaign
/// engine builds a fresh one per run instead of threading a generator
/// between runs — that is what makes the estimate independent of the
/// execution schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// The generator for run `run_index` of a campaign with `seed`.
    ///
    /// This is the documented derivation the determinism property test
    /// pins down: same `(seed, run_index)` ⇒ same stream, on any thread.
    #[inline]
    pub fn for_run(seed: u64, run_index: u64) -> Self {
        Self {
            state: mix(mix(seed ^ GOLDEN_GAMMA.wrapping_mul(run_index))),
        }
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self {
            state: u64::from_le_bytes(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn per_run_streams_are_deterministic() {
        for run in [0u64, 1, 17, u64::MAX] {
            let mut a = SplitMix64::for_run(42, run);
            let mut b = SplitMix64::for_run(42, run);
            for _ in 0..32 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn neighbouring_runs_decorrelate() {
        // Adjacent run indices and adjacent seeds must give unrelated
        // first outputs (the double-mix property).
        let mut firsts = std::collections::HashSet::new();
        for run in 0..1000u64 {
            assert!(firsts.insert(SplitMix64::for_run(7, run).next_u64()));
        }
        // Disjoint seed range: seed 7 / run 3 is already in the set above.
        for seed in 1000..2000u64 {
            assert!(firsts.insert(SplitMix64::for_run(seed, 3).next_u64()));
        }
    }

    #[test]
    fn unit_interval_samples_are_balanced() {
        // Crude uniformity check over the pooled per-run streams, the way
        // the campaign engine actually uses them.
        let n = 50_000;
        let mean = (0..n)
            .map(|i| SplitMix64::for_run(123, i).gen::<f64>())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "pooled mean {mean}");
    }

    #[test]
    fn seedable_roundtrip() {
        let mut a = SplitMix64::from_seed(5u64.to_le_bytes());
        let mut b = SplitMix64::from_seed(5u64.to_le_bytes());
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SplitMix64::seed_from_u64(9);
        let _ = c.next_u64();
    }
}
