//! RTL fast-forward: the campaign-time accelerations of the memo-miss path.
//!
//! A conclusion-memo miss used to pay the full RTL tail: restore the nearest
//! golden checkpoint, `step()` up to the injection cycle, write the errors
//! back, then simulate to halt. This module removes both halves of that
//! cost without changing a single result bit:
//!
//! * [`RtlFastForward`] — a per-worker **exact-cycle snapshot cache**:
//!   campaigns revisit a small set of injection cycles `t ≤ t_max`, so the
//!   system state at *exactly* the start of cycle `te + 1` (injection cycle
//!   executed, fault not yet applied) is kept per visited `te`, turning
//!   restore-and-replay into a single `restore_from`. It also carries the
//!   **golden-reconvergence early exit**: the paper's Observation 3 says
//!   most injected errors die quickly or sit silently in memory-type state,
//!   which means the faulty trajectory usually re-joins the golden trace
//!   long before halt. The resume loop compares the cheap per-cycle
//!   [`Soc::arch_fingerprint`] against the golden run's recorded track and,
//!   on a match *confirmed by an exact state compare* (which does include
//!   RAM), concludes immediately with the golden verdict — determinism
//!   makes everything after a state match a replay of the golden run.
//!
//! * [`SharedConclusionMemo`] — the `(te, faulty_bits) → verdict` memo as a
//!   sharded concurrent map shared across worker threads. The verdict is a
//!   pure function of its key (the hardening filter consumes RNG *before*
//!   the key is formed), so racing workers can only ever insert identical
//!   values and sharing is result-invariant. Keys are compact: one 64-bit
//!   hash of `(te, bits)` addresses the table, the stored entry keeps the
//!   exact key for verification, and true hash collisions go to a spill
//!   list — lookups never allocate.
//!
//! The chunk-local [`crate::trace::CampaignCounters`] accounting is
//! deliberately untouched by all of this (it models a per-chunk memo so the
//! counters stay kernel/thread-invariant); the schedule-dependent
//! fast-forward counters live in [`FastForwardStats`] and surface through
//! the metrics JSON, never through `CampaignResult`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Mutex;
use std::time::Instant;

use crate::flow::Concluded;
use crate::metrics::LatencyHist;
use crate::model::Evaluation;
use xlmc_soc::{MpuBit, Soc};

/// Byte budget for the exact-cycle snapshot cache (per worker).
const SNAPSHOT_BUDGET_BYTES: usize = 4 << 20;
/// Approximate bytes per snapshot: the RAM image dominates.
const SNAPSHOT_BYTES: usize = xlmc_soc::soc::RAM_BYTES as usize + 256;
/// LRU bound on the snapshot cache derived from the byte budget.
const MAX_SNAPSHOTS: usize = SNAPSHOT_BUDGET_BYTES / SNAPSHOT_BYTES;
/// How many cycles past the injection the reconvergence watch keeps
/// fingerprinting before giving up: transient pipeline/status divergence
/// either decays within a few cycles of the flip or (a spurious trap, a
/// re-latched sticky) not at all, so a bounded watch captures the wins
/// without paying a per-cycle hash on runs that never rejoin.
const WATCH_WINDOW: u64 = 64;

/// Counters of the fast-forward layer.
///
/// These are **schedule-dependent** (cache warmth and early exits vary with
/// thread count and chunk order), so they are reported through the metrics
/// JSON only — never through `CampaignResult`, whose fields are all
/// kernel/thread-invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastForwardStats {
    /// Whether the layer was enabled.
    pub enabled: bool,
    /// RTL resumes performed (memo misses reaching the RTL path).
    pub rtl_resumes: u64,
    /// Resumes positioned by a single snapshot restore.
    pub checkpoint_cache_hits: u64,
    /// Resumes that paid restore-and-replay (and then seeded the cache).
    pub checkpoint_cache_misses: u64,
    /// Snapshots evicted by the byte-budget LRU bound.
    pub checkpoint_cache_evictions: u64,
    /// Resumes concluded by golden reconvergence before halt.
    pub early_exits: u64,
    /// Fingerprint matches rejected by the exact state compare.
    pub confirm_failures: u64,
    /// Simulation cycles skipped by early exits.
    pub cycles_skipped: u64,
}

impl FastForwardStats {
    /// Accumulate another worker's counters.
    pub fn add(&mut self, other: &FastForwardStats) {
        self.enabled |= other.enabled;
        self.rtl_resumes += other.rtl_resumes;
        self.checkpoint_cache_hits += other.checkpoint_cache_hits;
        self.checkpoint_cache_misses += other.checkpoint_cache_misses;
        self.checkpoint_cache_evictions += other.checkpoint_cache_evictions;
        self.early_exits += other.early_exits;
        self.confirm_failures += other.confirm_failures;
        self.cycles_skipped += other.cycles_skipped;
    }

    /// Fraction of resumes positioned by a snapshot restore.
    pub fn checkpoint_hit_rate(&self) -> f64 {
        let total = self.checkpoint_cache_hits + self.checkpoint_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.checkpoint_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of resumes concluded by golden reconvergence.
    pub fn early_exit_rate(&self) -> f64 {
        if self.rtl_resumes == 0 {
            0.0
        } else {
            self.early_exits as f64 / self.rtl_resumes as f64
        }
    }
}

#[derive(Debug)]
struct Snapshot {
    soc: Soc,
    last_used: u64,
}

/// Per-worker fast-forward state: the exact-cycle snapshot cache, the
/// resident work/confirm systems and the lazily computed golden verdict.
///
/// Like [`crate::flow::FlowScratch`] (which owns one), an instance is only
/// valid against one evaluation; the campaign engine keeps one per worker.
#[derive(Debug)]
pub struct RtlFastForward {
    enabled: bool,
    snapshots: HashMap<u64, Snapshot>,
    /// The resident system every resume mutates (restored, never cloned).
    work: Option<Soc>,
    /// Scratch system for the exact reconvergence confirm.
    confirm: Option<Soc>,
    /// `goal.succeeded(golden.final_soc)`, computed on first early exit.
    golden_verdict: Option<bool>,
    tick: u64,
    stats: FastForwardStats,
    /// Wall-clock latency of each resume's positioning phase (snapshot
    /// restore on a hit, checkpoint restore + replay on a miss) — pure
    /// telemetry, harvested per chunk by the campaign engine.
    restore_hist: LatencyHist,
}

impl Default for RtlFastForward {
    fn default() -> Self {
        Self::new(true)
    }
}

impl RtlFastForward {
    /// A fresh fast-forward state; `enabled = false` degrades every resume
    /// to the reference restore-and-replay, run-to-halt path (bit-identical
    /// results, no acceleration).
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            snapshots: HashMap::new(),
            work: None,
            confirm: None,
            golden_verdict: None,
            tick: 0,
            stats: FastForwardStats {
                enabled,
                ..FastForwardStats::default()
            },
            restore_hist: LatencyHist::default(),
        }
    }

    /// Enable or disable the layer (the snapshot cache is dropped so a
    /// re-enable starts cold).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.stats.enabled = enabled;
        if !enabled {
            self.snapshots.clear();
        }
    }

    /// Whether the layer is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The counters accumulated by resumes on this state.
    pub fn stats(&self) -> FastForwardStats {
        self.stats
    }

    /// Drain the positioning-phase latency histogram accumulated since
    /// the last call (the campaign engine harvests this per chunk into
    /// the chunk partial's [`crate::metrics::LatencyShard`]).
    pub fn take_restore_latency(&mut self) -> LatencyHist {
        std::mem::take(&mut self.restore_hist)
    }

    /// The full RTL tail of one conclusion: position the work system at the
    /// start of cycle `te + 1` (snapshot restore on a cache hit, reference
    /// restore-and-replay on a miss), write the errors back, and simulate to
    /// completion — exiting early with the golden verdict when the faulty
    /// state provably re-joins the golden trajectory.
    pub(crate) fn resume(&mut self, eval: &Evaluation, te: u64, faulty_bits: &[MpuBit]) -> bool {
        self.stats.rtl_resumes += 1;
        let golden = &eval.golden;
        let checkpoint = golden.nearest_checkpoint(te);
        if self.work.is_none() {
            self.work = Some(checkpoint.clone());
        }
        let work = self.work.as_mut().expect("work slot just filled");

        let t_position = Instant::now();
        let mut positioned = false;
        if self.enabled {
            if let Some(snap) = self.snapshots.get_mut(&te) {
                self.tick += 1;
                snap.last_used = self.tick;
                work.restore_from(&snap.soc);
                self.stats.checkpoint_cache_hits += 1;
                positioned = true;
            }
        }
        if !positioned {
            work.restore_from(checkpoint);
            while work.cycle < te {
                work.step();
            }
            // Execute the injection cycle; the snapshot is taken pre-fault
            // so every error pattern at this `te` starts from it.
            work.step();
            if self.enabled {
                self.stats.checkpoint_cache_misses += 1;
                if self.snapshots.len() >= MAX_SNAPSHOTS {
                    if let Some(&oldest) = self
                        .snapshots
                        .iter()
                        .min_by_key(|(_, s)| s.last_used)
                        .map(|(te, _)| te)
                    {
                        self.snapshots.remove(&oldest);
                        self.stats.checkpoint_cache_evictions += 1;
                    }
                }
                self.tick += 1;
                self.snapshots.insert(
                    te,
                    Snapshot {
                        soc: work.clone(),
                        last_used: self.tick,
                    },
                );
            }
        }
        self.restore_hist.record(t_position.elapsed().as_secs_f64());

        for &b in faulty_bits {
            work.mpu.toggle_bit(b);
        }

        // Run to completion. While watching, compare the per-cycle
        // fingerprint against the golden track: a confirmed match means the
        // remaining trajectory *is* the golden one (stepping is
        // deterministic), so the verdict is the golden verdict. The early
        // exit is only sound when the golden run actually halted — a capped
        // golden run has no recorded trajectory past its cap, while the
        // faulty run may simulate further.
        //
        // Watching is itself a pure scheduling choice (a missed match only
        // means running to halt like the reference), so it is gated to where
        // it can pay: a flipped MPU *config* bit persists until software
        // rewrites the configuration — the fingerprint covers the config, so
        // such a resume can never rejoin the golden track — and transient
        // pipeline/status divergence either decays within a few cycles or
        // not at all. Config-bit error sets are not watched, and the watch
        // stops [`WATCH_WINDOW`] cycles past the injection.
        let goal = eval.workload.goal;
        let mut watch =
            self.enabled && golden.final_soc.halted() && faulty_bits.iter().all(|b| !b.is_config());
        let watch_limit = te.saturating_add(WATCH_WINDOW);
        while !work.halted() && work.cycle < eval.max_cycles {
            if watch && work.cycle > watch_limit {
                watch = false;
            }
            if watch
                && work.cycle < golden.cycles
                && golden.fingerprints[work.cycle as usize] == work.arch_fingerprint()
            {
                if self.confirm.is_none() {
                    self.confirm = Some(golden.nearest_checkpoint(work.cycle).clone());
                }
                let confirm = self.confirm.as_mut().expect("confirm slot just filled");
                confirm.restore_from(golden.nearest_checkpoint(work.cycle));
                while confirm.cycle < work.cycle {
                    confirm.step();
                }
                if *confirm == *work {
                    self.stats.early_exits += 1;
                    self.stats.cycles_skipped += golden.cycles - work.cycle;
                    return *self
                        .golden_verdict
                        .get_or_insert_with(|| goal.succeeded(&golden.final_soc));
                }
                // Fingerprint collision (RAM or a hash alias diverges): it
                // would keep colliding every cycle, so stop watching and
                // fall back to the plain run-to-halt for this resume.
                self.stats.confirm_failures += 1;
                watch = false;
            }
            work.step();
        }
        goal.succeeded(work)
    }
}

/// The run-to-halt reference verdict of one `(T_e, faulty bits)` error set:
/// restore the nearest golden checkpoint, replay to the injection cycle,
/// write the errors back, and simulate to completion with every
/// acceleration disabled. This is the oracle the fast-forward layer — and
/// the multilevel estimator's cross-level consistency tests — are pinned
/// against.
pub fn reference_verdict(eval: &Evaluation, te: u64, faulty_bits: &[MpuBit]) -> bool {
    RtlFastForward::new(false).resume(eval, te, faulty_bits)
}

/// Hasher for keys that are already well-mixed 64-bit hashes: multiply by an
/// odd constant instead of SipHash. The byte fallback (never hit by the memo,
/// which only writes `u64`s) is FNV-1a.
#[derive(Debug, Default)]
pub struct PreHashed(u64);

impl Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

/// The compact memo key: FNV-1a over the injection cycle and each bit's
/// canonical code, finished with a SplitMix64 mix so both the shard selector
/// (top bits) and the table index (low bits) see full entropy.
pub(crate) fn key_hash(te: u64, bits: &[MpuBit]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |v: u64| h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    fold(te);
    for &b in bits {
        fold(bit_code(b));
    }
    let mut x = h;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A unique integer code per [`MpuBit`] (variant tag in the high byte shown,
/// indices below), so hashing never allocates or walks strings.
fn bit_code(b: MpuBit) -> u64 {
    let (tag, r, i) = match b {
        MpuBit::Enable => (0u64, 0, 0),
        MpuBit::Base(r, i) => (1, r, i),
        MpuBit::Limit(r, i) => (2, r, i),
        MpuBit::Perms(r, i) => (3, r, i),
        MpuBit::PipeAddr(i) => (4, 0, i),
        MpuBit::PipeKind(i) => (5, 0, i),
        MpuBit::PipeUser => (6, 0, 0),
        MpuBit::PipeValid => (7, 0, 0),
        MpuBit::Violation => (8, 0, 0),
        MpuBit::StickyViol => (9, 0, 0),
        MpuBit::StickyAddr(i) => (10, 0, i),
        MpuBit::StickyKind(i) => (11, 0, i),
    };
    tag << 16 | u64::from(r) << 8 | u64::from(i)
}

#[derive(Debug)]
struct MemoEntry {
    te: u64,
    bits: Box<[MpuBit]>,
    verdict: Concluded,
}

impl MemoEntry {
    fn matches(&self, te: u64, bits: &[MpuBit]) -> bool {
        self.te == te && self.bits.as_ref() == bits
    }
}

#[derive(Debug, Default)]
struct MemoShard {
    /// Primary table: one entry per distinct key hash.
    fast: HashMap<u64, MemoEntry, BuildHasherDefault<PreHashed>>,
    /// True 64-bit hash collisions (vanishingly rare; scanned linearly).
    spill: HashMap<u64, Vec<MemoEntry>, BuildHasherDefault<PreHashed>>,
}

/// Number of memo shards; locks are held only for one probe or insert, so a
/// handful of shards keeps contention negligible at campaign thread counts.
const MEMO_SHARDS: usize = 16;

/// The cross-thread `(te, faulty_bits) → verdict` memo.
///
/// The verdict is a pure function of the key (RNG is consumed before the key
/// is formed), so concurrent duplicate computes insert identical values and
/// every interleaving yields bit-identical campaign results. Entries are
/// verified against the exact stored key — the hash only addresses.
#[derive(Debug, Default)]
pub struct SharedConclusionMemo {
    shards: [Mutex<MemoShard>; MEMO_SHARDS],
}

impl SharedConclusionMemo {
    fn shard(&self, hash: u64) -> &Mutex<MemoShard> {
        &self.shards[(hash >> 60) as usize % MEMO_SHARDS]
    }

    /// Look up a concluded verdict; allocation-free.
    pub(crate) fn get(&self, hash: u64, te: u64, bits: &[MpuBit]) -> Option<Concluded> {
        let shard = self
            .shard(hash)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = shard.fast.get(&hash)?;
        if entry.matches(te, bits) {
            return Some(entry.verdict);
        }
        shard
            .spill
            .get(&hash)?
            .iter()
            .find(|e| e.matches(te, bits))
            .map(|e| e.verdict)
    }

    /// Record a concluded verdict. Idempotent: a racing duplicate compute
    /// re-inserts the identical value and is dropped.
    pub(crate) fn insert(&self, hash: u64, te: u64, bits: &[MpuBit], verdict: Concluded) {
        let mut guard = self
            .shard(hash)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let shard = &mut *guard;
        match shard.fast.entry(hash) {
            Entry::Vacant(e) => {
                e.insert(MemoEntry {
                    te,
                    bits: bits.into(),
                    verdict,
                });
            }
            Entry::Occupied(e) => {
                if e.get().matches(te, bits) {
                    return;
                }
                let list = shard.spill.entry(hash).or_default();
                if !list.iter().any(|x| x.matches(te, bits)) {
                    list.push(MemoEntry {
                        te,
                        bits: bits.into(),
                        verdict,
                    });
                }
            }
        }
    }

    /// Total entries across all shards (tests and diagnostics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                s.fast.len() + s.spill.values().map(Vec::len).sum::<usize>()
            })
            .sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A per-worker, lock-free front for the [`SharedConclusionMemo`].
///
/// Probing the shared memo takes a shard mutex even when the pattern was
/// concluded long ago; under multiple workers those acquisitions serialize
/// on the hottest shards. The front is an unlocked per-worker mirror:
/// probes hit it first, shared-memo hits are copied in, and fresh verdicts
/// are recorded in both — so each worker pays the lock at most once per
/// distinct `(te, bits)` pattern plus once per fresh conclusion. The
/// verdict is a pure function of the key, so the mirror can never go
/// stale and results stay bit-identical with or without it.
#[derive(Debug, Default)]
pub struct ConclusionFront {
    fast: HashMap<u64, MemoEntry, BuildHasherDefault<PreHashed>>,
    spill: HashMap<u64, Vec<MemoEntry>, BuildHasherDefault<PreHashed>>,
    hits: u64,
    misses: u64,
}

impl ConclusionFront {
    /// Probe the front, falling back to (and replenishing from) the shared
    /// memo.
    pub(crate) fn get_through(
        &mut self,
        shared: &SharedConclusionMemo,
        hash: u64,
        te: u64,
        bits: &[MpuBit],
    ) -> Option<Concluded> {
        if let Some(entry) = self.fast.get(&hash) {
            if entry.matches(te, bits) {
                self.hits += 1;
                return Some(entry.verdict);
            }
            if let Some(v) = self
                .spill
                .get(&hash)
                .and_then(|l| l.iter().find(|e| e.matches(te, bits)))
                .map(|e| e.verdict)
            {
                self.hits += 1;
                return Some(v);
            }
        }
        self.misses += 1;
        let verdict = shared.get(hash, te, bits)?;
        self.record(hash, te, bits, verdict);
        Some(verdict)
    }

    /// Mirror a verdict into the front (same collision handling as the
    /// shared memo's insert, minus the lock).
    pub(crate) fn record(&mut self, hash: u64, te: u64, bits: &[MpuBit], verdict: Concluded) {
        match self.fast.entry(hash) {
            Entry::Vacant(e) => {
                e.insert(MemoEntry {
                    te,
                    bits: bits.into(),
                    verdict,
                });
            }
            Entry::Occupied(e) => {
                if e.get().matches(te, bits) {
                    return;
                }
                let list = self.spill.entry(hash).or_default();
                if !list.iter().any(|x| x.matches(te, bits)) {
                    list.push(MemoEntry {
                        te,
                        bits: bits.into(),
                        verdict,
                    });
                }
            }
        }
    }

    /// `(front hits, shared-memo fallbacks)` — how many probes this worker
    /// resolved without touching a shard mutex.
    pub(crate) fn contention_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::StrikeClass;

    fn concluded(success: bool) -> Concluded {
        Concluded {
            success,
            class: StrikeClass::Mixed,
            analytic: false,
        }
    }

    #[test]
    fn memo_round_trips_and_verifies_exact_keys() {
        let memo = SharedConclusionMemo::default();
        let bits = [MpuBit::Violation, MpuBit::Enable];
        let h = key_hash(5, &bits);
        assert!(memo.get(h, 5, &bits).is_none());
        memo.insert(h, 5, &bits, concluded(true));
        assert!(memo.get(h, 5, &bits).unwrap().success);
        // Same hash handed in with a different exact key must miss (and a
        // colliding insert must land in the spill, not overwrite).
        let other = [MpuBit::PipeValid];
        assert!(memo.get(h, 5, &other).is_none());
        memo.insert(h, 5, &other, concluded(false));
        assert!(memo.get(h, 5, &bits).unwrap().success);
        assert!(!memo.get(h, 5, &other).unwrap().success);
        assert_eq!(memo.len(), 2);
        // Duplicate inserts are dropped.
        memo.insert(h, 5, &bits, concluded(true));
        memo.insert(h, 5, &other, concluded(false));
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn key_hash_separates_te_and_bit_patterns() {
        let a = [MpuBit::Base(0, 1)];
        let b = [MpuBit::Base(1, 0)];
        assert_ne!(key_hash(3, &a), key_hash(3, &b));
        assert_ne!(key_hash(3, &a), key_hash(4, &a));
        assert_ne!(key_hash(3, &[]), key_hash(3, &a));
        // Order matters (patterns are canonical, never reordered).
        let ab = [MpuBit::Enable, MpuBit::Violation];
        let ba = [MpuBit::Violation, MpuBit::Enable];
        assert_ne!(key_hash(3, &ab), key_hash(3, &ba));
    }

    #[test]
    fn snapshot_cache_respects_the_lru_bound() {
        // Pure cache-bookkeeping test: drive the LRU logic through stats.
        const { assert!(MAX_SNAPSHOTS >= 8, "budget must hold a useful working set") };
        let ff = RtlFastForward::default();
        assert!(ff.enabled());
        assert_eq!(ff.stats().rtl_resumes, 0);
        let off = RtlFastForward::new(false);
        assert!(!off.enabled());
        assert!(!off.stats().enabled);
    }

    #[test]
    fn stats_accumulate_and_expose_rates() {
        let mut total = FastForwardStats::default();
        let worker = FastForwardStats {
            enabled: true,
            rtl_resumes: 10,
            checkpoint_cache_hits: 6,
            checkpoint_cache_misses: 2,
            checkpoint_cache_evictions: 1,
            early_exits: 5,
            confirm_failures: 1,
            cycles_skipped: 1234,
        };
        total.add(&worker);
        total.add(&worker);
        assert!(total.enabled);
        assert_eq!(total.rtl_resumes, 20);
        assert_eq!(total.cycles_skipped, 2468);
        assert!((total.checkpoint_hit_rate() - 0.75).abs() < 1e-12);
        assert!((total.early_exit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(FastForwardStats::default().checkpoint_hit_rate(), 0.0);
        assert_eq!(FastForwardStats::default().early_exit_rate(), 0.0);
    }

    /// A flipped pipeline/status register is overwritten by the design
    /// within a few cycles: the watched resume must detect the rejoin,
    /// pass the exact confirm and conclude with the golden verdict —
    /// matching the disabled reference resume bit for bit.
    #[test]
    fn transient_pipeline_flips_reconverge_and_early_exit() {
        let eval = Evaluation::new(xlmc_soc::workloads::illegal_write()).unwrap();
        let mut ff = RtlFastForward::default();
        let mut reference = RtlFastForward::new(false);
        let transient = [
            MpuBit::PipeAddr(0),
            MpuBit::PipeAddr(9),
            MpuBit::PipeKind(0),
            MpuBit::PipeUser,
            MpuBit::PipeValid,
            MpuBit::Violation,
        ];
        for te in [eval.target_cycle - 12, eval.target_cycle - 5] {
            for bit in transient {
                let fast = ff.resume(&eval, te, &[bit]);
                let slow = reference.resume(&eval, te, &[bit]);
                assert_eq!(fast, slow, "{bit:?} at te {te}");
            }
        }
        let stats = ff.stats();
        assert!(
            stats.early_exits > 0,
            "no transient flip reconverged to the golden track: {stats:?}"
        );
        assert!(stats.cycles_skipped > 0);
        assert!(stats.early_exit_rate() > 0.0);
        assert_eq!(reference.stats().early_exits, 0);
    }
}
