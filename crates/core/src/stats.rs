//! Running statistics and histogram helpers for the Monte Carlo estimators.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Fold another accumulator into this one (Chan et al.'s parallel
    /// combine): with `δ = mean_b − mean_a` and `n = n_a + n_b`,
    ///
    /// ```text
    /// mean = mean_a + δ · n_b / n
    /// M2   = M2_a + M2_b + δ² · n_a · n_b / n
    /// ```
    ///
    /// The campaign engine merges per-chunk accumulators **in chunk
    /// order**, so the combined mean/variance is a pure function of the
    /// chunk partition — identical at any thread count.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let total = na + nb;
        let delta = other.mean - self.mean;
        self.mean += delta * (nb / total);
        self.m2 += other.m2 + delta * delta * (na * nb / total);
        self.n += other.n;
    }

    /// Decompose into the exact Welford state `(count, mean, M2)`, for
    /// checkpoint serialization. [`from_raw`](Self::from_raw) rebuilds an
    /// accumulator that continues bit-identically.
    pub fn to_raw(&self) -> (u64, f64, f64) {
        (self.n, self.mean, self.m2)
    }

    /// Rebuild an accumulator from a [`to_raw`](Self::to_raw) triple.
    pub fn from_raw(n: u64, mean: f64, m2: f64) -> Self {
        Self { n, mean, m2 }
    }

    /// The Chebyshev/LLN bound of §3.3 on `Pr[|estimate − SSF| ≥ eps]`:
    /// `variance / (n · eps²)`, clamped to 1.
    pub fn lln_bound(&self, eps: f64) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        (self.variance() / (self.n as f64 * eps * eps)).min(1.0)
    }
}

/// An equal-width histogram over `[0, max]` with an overflow-free layout:
/// values above `max` land in the last bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bin counts.
    pub counts: Vec<u64>,
    /// Upper edge of the covered range.
    pub max: f64,
}

impl Histogram {
    /// Build a histogram of `values` with `bins` equal-width bins over
    /// `[0, max]`.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0`, `max <= 0`, or any value is NaN. Negative
    /// values are a caller bug (the range is `[0, max]`): debug builds
    /// panic, release builds clamp them into bin 0.
    pub fn build(values: impl IntoIterator<Item = f64>, bins: usize, max: f64) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(max > 0.0, "max must be positive");
        let mut counts = vec![0u64; bins];
        for v in values {
            assert!(!v.is_nan(), "histogram value is NaN");
            debug_assert!(
                v >= 0.0,
                "histogram value {v} is negative (range is [0, max])"
            );
            // The float→usize cast saturates, but only by accident of the
            // `as` semantics — clamp explicitly so the release-build
            // behavior for out-of-range negatives is a documented choice.
            let idx = ((v.max(0.0) / max * bins as f64) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Self { counts, max }
    }

    /// Normalized bin probabilities (empty histogram yields zeros).
    pub fn probabilities(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_match_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of the classic dataset: 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let mut s = RunningStats::new();
        for _ in 0..100 {
            s.push(3.25);
        }
        assert!(s.variance().abs() < 1e-12);
    }

    #[test]
    fn lln_bound_shrinks_with_n() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..10 {
            small.push((i % 2) as f64);
        }
        for i in 0..1000 {
            large.push((i % 2) as f64);
        }
        assert!(large.lln_bound(0.1) < small.lln_bound(0.1));
        assert!(RunningStats::new().lln_bound(0.1) == 1.0);
    }

    #[test]
    fn merge_matches_sequential_push() {
        let xs: Vec<f64> = (0..257).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let mut sequential = RunningStats::new();
        for &x in &xs {
            sequential.push(x);
        }
        // Merge uneven splits, the way the campaign engine folds chunks.
        for split in [1, 64, 100, 256] {
            let (a, b) = xs.split_at(split);
            let mut left = RunningStats::new();
            let mut right = RunningStats::new();
            a.iter().for_each(|&x| left.push(x));
            b.iter().for_each(|&x| right.push(x));
            left.merge(&right);
            assert_eq!(left.count(), sequential.count());
            assert!((left.mean() - sequential.mean()).abs() < 1e-12);
            assert!((left.variance() - sequential.variance()).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut filled = RunningStats::new();
        [1.0, 2.0, 4.0].iter().for_each(|&x| filled.push(x));
        let snapshot = filled;

        let mut lhs = filled;
        lhs.merge(&RunningStats::new());
        assert_eq!(lhs, snapshot);

        let mut empty = RunningStats::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let h = Histogram::build([0.0, 0.5, 1.5, 2.5, 99.0], 3, 3.0);
        assert_eq!(h.counts, vec![2, 1, 2]);
        let p = h.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_probabilities_are_zero() {
        let h = Histogram::build(std::iter::empty(), 4, 1.0);
        assert_eq!(h.probabilities(), vec![0.0; 4]);
    }

    #[test]
    fn raw_round_trip_continues_bit_identically() {
        let mut reference = RunningStats::new();
        let mut restored = RunningStats::new();
        for i in 0..100 {
            let x = ((i * 37) % 101) as f64 / 7.0;
            reference.push(x);
            restored.push(x);
        }
        let (n, mean, m2) = restored.to_raw();
        let mut restored = RunningStats::from_raw(n, mean, m2);
        for i in 100..200 {
            let x = ((i * 37) % 101) as f64 / 7.0;
            reference.push(x);
            restored.push(x);
        }
        let (n_a, mean_a, m2_a) = reference.to_raw();
        let (n_b, mean_b, m2_b) = restored.to_raw();
        assert_eq!(n_a, n_b);
        assert_eq!(mean_a.to_bits(), mean_b.to_bits());
        assert_eq!(m2_a.to_bits(), m2_b.to_bits());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn histogram_rejects_nan() {
        // Regression: NaN used to saturate to bin 0 via the `as usize`
        // cast, silently corrupting the distribution.
        Histogram::build([0.5, f64::NAN], 3, 3.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "negative")]
    fn histogram_rejects_negatives_in_debug() {
        Histogram::build([-0.25], 3, 3.0);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn histogram_clamps_negatives_in_release() {
        // Regression: negatives used to be indistinguishable from genuine
        // bin-0 values; the clamp is now explicit and documented.
        let h = Histogram::build([-5.0, -0.1, 0.5, 2.5], 3, 3.0);
        assert_eq!(h.counts, vec![3, 0, 1]);
    }
}
