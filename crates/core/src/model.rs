//! The evaluation context: system model + workload + golden run.

use std::fmt;
use xlmc_gatesim::cycle::CycleSim;
use xlmc_gatesim::glitch::GlitchSim;
use xlmc_gatesim::transient::{TransientConfig, TransientSim};
use xlmc_netlist::{NetlistError, Placement};
use xlmc_soc::golden::GoldenRun;
use xlmc_soc::{MpuNetlist, Workload};

/// Errors raised while building an evaluation context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The gate netlist failed analysis (cannot happen for the stock MPU).
    Netlist(NetlistError),
    /// The golden run of the attack workload never triggered the security
    /// mechanism, so there is no target cycle to attack.
    NoViolationInGoldenRun,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Netlist(e) => write!(f, "netlist analysis failed: {e}"),
            EvalError::NoViolationInGoldenRun => {
                write!(f, "golden run triggered no violation; no target cycle")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<NetlistError> for EvalError {
    fn from(e: NetlistError) -> Self {
        EvalError::Netlist(e)
    }
}

/// The gate-level system model: elaborated MPU, placement, and the cached
/// simulators. Shared by every evaluation of the same design.
#[derive(Debug, Clone)]
pub struct SystemModel {
    /// The elaborated MPU with its cross-level register map.
    pub mpu: MpuNetlist,
    /// The placed netlist (for the radiated-spot model).
    pub placement: Placement,
    /// Levelized logic simulator for the MPU netlist.
    pub cycle_sim: CycleSim,
    /// Transient (SET) simulator for the fault-injection cycle.
    pub transient: TransientSim,
    /// Clock-glitch (timing-violation) simulator.
    pub glitch: GlitchSim,
}

impl SystemModel {
    /// Build the model with the given transient parameters.
    ///
    /// # Errors
    ///
    /// Propagates netlist analysis failures (none for the stock MPU).
    pub fn new(transient_cfg: TransientConfig) -> Result<Self, EvalError> {
        let mpu = MpuNetlist::new();
        let placement = Placement::new(mpu.netlist());
        let cycle_sim = CycleSim::new(mpu.netlist())?;
        let transient = TransientSim::new(mpu.netlist(), transient_cfg)?;
        let glitch = GlitchSim::new(mpu.netlist(), transient_cfg.clock_period_ps)?;
        Ok(Self {
            mpu,
            placement,
            cycle_sim,
            transient,
            glitch,
        })
    }

    /// The model with default transient parameters.
    ///
    /// # Errors
    ///
    /// See [`SystemModel::new`].
    pub fn with_defaults() -> Result<Self, EvalError> {
        Self::new(TransientConfig::default())
    }
}

/// One attack-evaluation setup: a workload, its recorded golden run and the
/// derived target cycle `T_t`.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The benchmark under attack.
    pub workload: Workload,
    /// The recorded golden run.
    pub golden: GoldenRun,
    /// The target cycle `T_t`: the cycle in which the malicious operation
    /// *resolves* (the golden run's violation verdict is consumed there —
    /// commit gating and trap both read the registered responding signal).
    pub target_cycle: u64,
    /// Cap for fault runs (golden length plus slack for diverging runs).
    pub max_cycles: u64,
}

/// Default checkpoint interval for golden runs.
pub const CHECKPOINT_INTERVAL: u64 = 32;

impl Evaluation {
    /// Record the golden run of `workload` and locate the target cycle.
    ///
    /// # Errors
    ///
    /// Fails with [`EvalError::NoViolationInGoldenRun`] when the workload
    /// never trips the security mechanism (nothing to attack).
    pub fn new(workload: Workload) -> Result<Self, EvalError> {
        let golden = GoldenRun::record(&workload.program, 20_000, CHECKPOINT_INTERVAL);
        // The combinational violation fires one cycle before the access
        // resolves; the resolution cycle is where the verdict acts.
        let target_cycle = golden
            .first_violation_cycle()
            .ok_or(EvalError::NoViolationInGoldenRun)?
            + 1;
        let max_cycles = golden.cycles + 500;
        Ok(Self {
            workload,
            golden,
            target_cycle,
            max_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlmc_soc::workloads;

    #[test]
    fn model_builds_with_defaults() {
        let m = SystemModel::with_defaults().unwrap();
        assert!(m.mpu.netlist().stats().combinational > 100);
        assert!(!m.placement.placeable().is_empty());
    }

    #[test]
    fn evaluation_finds_target_cycle_for_both_attacks() {
        for w in [workloads::illegal_write(), workloads::illegal_read()] {
            let name = w.name;
            let e = Evaluation::new(w).unwrap();
            assert!(e.target_cycle > 100, "{name}: T_t = {}", e.target_cycle);
            assert!(e.target_cycle < e.golden.cycles);
            assert!(e.max_cycles > e.golden.cycles);
        }
    }

    #[test]
    fn evaluation_rejects_violation_free_workloads() {
        use xlmc_soc::asm::assemble;
        use xlmc_soc::AttackGoal;
        let w = Workload {
            name: "benign",
            description: "no violation",
            program: assemble("li r1, 1\nhalt").unwrap().words,
            goal: AttackGoal::IllegalWrite,
        };
        assert!(matches!(
            Evaluation::new(w),
            Err(EvalError::NoViolationInGoldenRun)
        ));
    }
}
