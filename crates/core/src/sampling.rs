//! Sampling strategies: random, fanin-cone, and the paper's importance
//! sampling distribution `g_{T,P} = g_T · g_{P|T}` (§4).
//!
//! Every strategy draws attack samples and reports the importance weight
//! `f(s) / g(s)` against the attacker distribution `f_{T,P}`, so the
//! estimator `ŜSF = (1/N) Σ w_i · e_i` stays unbiased. The importance
//! distribution follows the paper exactly:
//!
//! ```text
//! g_T(t = i)        ∝ ω_i = Σ_{g ∈ Ω_i} (1 + α · Corr_i(g, rs) · δ(L(g) ≥ β·i))
//! g_{P|T}(g, r | i) ∝ (1 + α · Corr_i(g, rs) · δ(L(g) ≥ β·i)) · Unif(r)
//! ```
//!
//! with `Ω_i` the sample-space cells of timing distance `t` (unrolled frame
//! `i = t − 1`), `Corr_i` the bit-flip correlation and `L(g)` the error
//! lifetime from the pre-characterization.

use crate::model::SystemModel;
use crate::precharacterize::Precharacterization;
use rand::Rng;
use xlmc_fault::sample::PHASE_BINS;
use xlmc_fault::{AttackDistribution, AttackSample, RadiusDist, SpatialDist, TemporalDist};
use xlmc_netlist::GateId;

/// Parameters of the evaluation experiments (paper §6 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Timing-distance range: `t ∈ [1, t_max]` ("the range of t is 50
    /// cycles").
    pub t_max: i64,
    /// Discrete radius options of the radiated spot.
    pub radius_options: Vec<f64>,
    /// Correlation amplification `α` of the sampling distribution.
    pub alpha: f64,
    /// Lifetime threshold slope `β` of the sampling distribution.
    pub beta: f64,
    /// Fraction of the MPU cells in the attacker's target sub-block ("a
    /// sub-block of gates of around 1/8 of MPU").
    pub subblock_fraction: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            t_max: 50,
            radius_options: vec![0.0, 1.0],
            alpha: 40.0,
            beta: 1.0,
            subblock_fraction: 0.125,
        }
    }
}

impl ExperimentConfig {
    /// The largest radius option (drives the sample-space halo).
    pub fn max_radius(&self) -> f64 {
        self.radius_options.iter().cloned().fold(0.0, f64::max)
    }
}

/// The attacker's target sub-block: the `fraction` of placed cells closest
/// to the centroid of the security-critical block (the fanin cone of the
/// responding signal) — the paper's "sub-block of gates of around 1/8 of
/// MPU identified following \[18\]". Centering on the cone centroid reflects
/// the attack model: the attacker knows the physical implementation and
/// aims at the protection logic, which spans the configuration bank, the
/// comparators and the responding-signal register.
pub fn subblock_cells(model: &SystemModel, fraction: f64) -> Vec<GateId> {
    let rs = model.mpu.responding_signal();
    let cone = xlmc_netlist::cones::cone_set(model.mpu.netlist(), rs, 0, 1);
    let mut cx = 0.0;
    let mut cy = 0.0;
    let mut count = 0usize;
    for (_, frame) in cone.iter() {
        for &g in frame.iter() {
            if let Some(p) = model.placement.position(g) {
                cx += p.x;
                cy += p.y;
                count += 1;
            }
        }
    }
    assert!(count > 0, "responding-signal cone has no placed cells");
    let center = xlmc_netlist::Point {
        x: cx / count as f64,
        y: cy / count as f64,
    };
    let mut cells: Vec<(f64, GateId)> = model
        .placement
        .placeable()
        .iter()
        .map(|&g| {
            let p = model.placement.position(g).expect("placeable cell");
            (p.distance(center), g)
        })
        .collect();
    cells.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let take = ((cells.len() as f64 * fraction).ceil() as usize).clamp(1, cells.len());
    let mut out: Vec<GateId> = cells.into_iter().take(take).map(|(_, g)| g).collect();
    out.sort_unstable();
    out
}

/// The attacker distribution `f_{T,P}` of the experiments: uniform timing
/// distance, uniform center over the sub-block, uniform radius.
pub fn baseline_distribution(model: &SystemModel, cfg: &ExperimentConfig) -> AttackDistribution {
    AttackDistribution {
        temporal: TemporalDist::uniform(1, cfg.t_max),
        spatial: SpatialDist::UniformOverCells(subblock_cells(model, cfg.subblock_fraction)),
        radius: RadiusDist::uniform(cfg.radius_options.clone()),
    }
}

/// The sorted spatial support of the attacker distribution: the strategies
/// restrict their proposals to it. Proposing cells the attacker cannot
/// target wastes samples (`f = 0` forces `w = 0`) and starves the overlap
/// region, which is exactly the importance-sampling failure mode.
fn spatial_support(f: &AttackDistribution) -> Vec<GateId> {
    let mut cells = match &f.spatial {
        SpatialDist::UniformOverCells(cells) => cells.clone(),
        SpatialDist::Delta(g) => vec![*g],
    };
    cells.sort_unstable();
    cells
}

/// A sampling strategy: draws attack samples and reports importance
/// weights against the attacker distribution.
///
/// `Send + Sync` so the campaign engine can share one strategy across its
/// worker threads; strategies are immutable once built, so every
/// implementation in this crate satisfies the bound structurally.
pub trait SamplingStrategy: Send + Sync {
    /// Human-readable strategy name for reports.
    fn name(&self) -> &'static str;
    /// Draw one sample from the strategy's distribution `g`.
    fn draw(&self, rng: &mut dyn rand::RngCore) -> AttackSample;
    /// The importance weight `f(s) / g(s)` of a drawn sample.
    fn weight(&self, sample: &AttackSample) -> f64;
}

/// Plain Monte Carlo: sample the attacker distribution itself.
#[derive(Debug, Clone)]
pub struct RandomSampling {
    f: AttackDistribution,
}

impl RandomSampling {
    /// Sample straight from `f_{T,P}`.
    pub fn new(f: AttackDistribution) -> Self {
        Self { f }
    }
}

impl SamplingStrategy for RandomSampling {
    fn name(&self) -> &'static str {
        "random"
    }

    fn draw(&self, rng: &mut dyn rand::RngCore) -> AttackSample {
        // Re-borrow as a sized `&mut dyn RngCore` so the generic sampler
        // can take it by `impl Rng`.
        let mut rng = rng;
        self.f.sample(&mut rng)
    }

    fn weight(&self, _sample: &AttackSample) -> f64 {
        1.0
    }
}

/// One timing distance of a cone-restricted strategy.
#[derive(Debug, Clone)]
struct Frame {
    t: i64,
    /// Sorted candidate cells.
    cells: Vec<GateId>,
    /// Per-cell weights aligned with `cells` (uniform strategies use 1.0).
    weights: Vec<f64>,
    /// Cumulative weights for sampling.
    cum: Vec<f64>,
    total: f64,
}

impl Frame {
    fn uniform(t: i64, mut cells: Vec<GateId>) -> Self {
        cells.sort_unstable();
        let weights = vec![1.0; cells.len()];
        Self::from_weights(t, cells, weights)
    }

    fn from_weights(cells_t: i64, cells: Vec<GateId>, weights: Vec<f64>) -> Self {
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cum.push(acc);
        }
        Self {
            t: cells_t,
            cells,
            weights,
            cum,
            total: acc,
        }
    }

    fn cell_weight(&self, g: GateId) -> Option<f64> {
        self.cells.binary_search(&g).ok().map(|i| self.weights[i])
    }

    fn draw_cell(&self, mut rng: &mut dyn rand::RngCore) -> GateId {
        // Reborrow: `Rng`'s generic methods need a `Sized` receiver.
        let x = (&mut rng).gen_range(0.0..self.total);
        let idx = self
            .cum
            .partition_point(|&c| c <= x)
            .min(self.cells.len() - 1);
        self.cells[idx]
    }
}

/// Shared machinery of the cone-restricted strategies.
#[derive(Debug, Clone)]
struct FramedStrategy {
    f: AttackDistribution,
    /// Sorted copy of `f`'s spatial support: the per-run weight path needs
    /// `f`'s center mass, and [`SpatialDist::pmf`] is a linear scan over
    /// the sub-block — a binary search here keeps `weight` O(log n).
    f_support: Vec<GateId>,
    /// Ascending by `t` (asserted in [`FramedStrategy::new`]).
    frames: Vec<Frame>,
    frame_cum: Vec<f64>,
    grand_total: f64,
    radius: RadiusDist,
}

impl FramedStrategy {
    fn new(f: AttackDistribution, frames: Vec<Frame>, radius: RadiusDist) -> Self {
        let mut frame_cum = Vec::with_capacity(frames.len());
        let mut acc = 0.0;
        for fr in &frames {
            acc += fr.total;
            frame_cum.push(acc);
        }
        assert!(
            acc > 0.0,
            "strategy support is empty: the cones do not intersect the attacker's sub-block"
        );
        assert!(
            frames.windows(2).all(|w| w[0].t < w[1].t),
            "frames must be ascending by t"
        );
        let f_support = spatial_support(&f);
        Self {
            f,
            f_support,
            frames,
            frame_cum,
            grand_total: acc,
            radius,
        }
    }

    /// `f_{T,P}(s)`, bit-identical to [`AttackDistribution::pmf`] but with
    /// the spatial mass answered by the sorted support copy.
    fn f_pmf(&self, s: &AttackSample) -> f64 {
        if s.phase >= PHASE_BINS {
            return 0.0;
        }
        let spatial = if self.f_support.binary_search(&s.center).is_ok() {
            match &self.f.spatial {
                SpatialDist::UniformOverCells(cells) => 1.0 / cells.len() as f64,
                SpatialDist::Delta(_) => 1.0,
            }
        } else {
            0.0
        };
        self.f.temporal.pmf(s.t) * spatial * self.f.radius.pmf(s.radius) / f64::from(PHASE_BINS)
    }

    /// `g(s)` of the strategy.
    fn pmf(&self, s: &AttackSample) -> f64 {
        let Ok(idx) = self.frames.binary_search_by_key(&s.t, |fr| fr.t) else {
            return 0.0;
        };
        let frame = &self.frames[idx];
        let Some(w) = frame.cell_weight(s.center) else {
            return 0.0;
        };
        if s.phase >= PHASE_BINS {
            return 0.0;
        }
        w / self.grand_total * self.radius.pmf(s.radius) / f64::from(PHASE_BINS)
    }

    fn draw(&self, mut rng: &mut dyn rand::RngCore) -> AttackSample {
        let x = (&mut rng).gen_range(0.0..self.grand_total);
        let idx = self
            .frame_cum
            .partition_point(|&c| c <= x)
            .min(self.frames.len() - 1);
        let frame = &self.frames[idx];
        AttackSample {
            t: frame.t,
            center: frame.draw_cell(rng),
            radius: self.radius.sample(&mut rng),
            phase: (&mut rng).gen_range(0..PHASE_BINS),
        }
    }

    fn weight(&self, s: &AttackSample) -> f64 {
        let g = self.pmf(s);
        if g < f64::MIN_POSITIVE {
            // Zero mass means a foreign sample off the strategy's support;
            // a denormal g would survive the old `g <= 0` check and turn
            // `f/g` into an inf/NaN weight that poisons the Welford
            // accumulator. Either way the sample carries no usable mass:
            // skip it with weight 0.
            return 0.0;
        }
        self.f_pmf(s) / g
    }

    /// The marginal `g_T` over timing distances (paper Figure 8(a)).
    fn t_marginal(&self) -> Vec<(i64, f64)> {
        self.frames
            .iter()
            .map(|fr| (fr.t, fr.total / self.grand_total))
            .collect()
    }
}

/// Importance sampling restricted to the responding-signal cones, with
/// uniform weights (the paper's middle baseline, "fanin cone sampling").
#[derive(Debug, Clone)]
pub struct ConeSampling {
    inner: FramedStrategy,
}

impl ConeSampling {
    /// Uniform sampling over the sample-space cells of each timing
    /// distance.
    pub fn new(
        f: AttackDistribution,
        prechar: &Precharacterization,
        radius_options: Vec<f64>,
    ) -> Self {
        let support = spatial_support(&f);
        let frames = prechar
            .space
            .frames()
            .iter()
            .map(|fr| {
                let cells: Vec<GateId> = fr
                    .cells
                    .iter()
                    .copied()
                    .filter(|g| support.binary_search(g).is_ok())
                    .collect();
                Frame::uniform(fr.t, cells)
            })
            .filter(|fr| !fr.cells.is_empty())
            .collect();
        Self {
            inner: FramedStrategy::new(f, frames, RadiusDist::uniform(radius_options)),
        }
    }

    /// The marginal over timing distances.
    pub fn t_marginal(&self) -> Vec<(i64, f64)> {
        self.inner.t_marginal()
    }
}

impl SamplingStrategy for ConeSampling {
    fn name(&self) -> &'static str {
        "fanin_cone"
    }

    fn draw(&self, rng: &mut dyn rand::RngCore) -> AttackSample {
        self.inner.draw(rng)
    }

    fn weight(&self, sample: &AttackSample) -> f64 {
        self.inner.weight(sample)
    }
}

/// The paper's full importance-sampling strategy.
#[derive(Debug, Clone)]
pub struct ImportanceSampling {
    inner: FramedStrategy,
}

impl ImportanceSampling {
    /// Build `g_{T,P}` from the pre-characterization with parameters `α`
    /// and `β`.
    pub fn new(
        f: AttackDistribution,
        model: &SystemModel,
        prechar: &Precharacterization,
        alpha: f64,
        beta: f64,
        radius_options: Vec<f64>,
    ) -> Self {
        let support = spatial_support(&f);
        let smoothing_radius = radius_options.iter().cloned().fold(0.0, f64::max);
        let frames = prechar
            .space
            .frames()
            .iter()
            .map(|fr| {
                // Raw per-cell weight over the whole frame (not just the
                // support): 1 + α · Corr_i(g, rs) · δ(L(g) ≥ β·i), with the
                // correlation of registers taken as the larger of the
                // signature-measured and injection-measured values
                // (persistent state rarely toggles, so signatures alone
                // under-weight it).
                let raw_weight = |g: GateId| {
                    let mut corr = prechar.correlation.corr(g, fr.frame);
                    // The injection-measured suppression correlation is a
                    // persistence signal: an error latched into a register
                    // acts from the *next* cycle on, so it only applies to
                    // frames i >= 1 (t >= 2). At frame 0 the verdict has
                    // already latched and only the signature correlation of
                    // the combinational path matters.
                    if fr.frame >= 1 {
                        corr = corr.max(prechar.cell_suppress(g));
                    }
                    let lifetime_ok = f64::from(prechar.cell_lifetime(g)) >= beta * fr.frame as f64;
                    1.0 + alpha * corr * f64::from(u8::from(lifetime_ok))
                };
                // Each cell's raw weight depends only on (cell, frame), but
                // the smoothing pass below reads it once per (cell, radius,
                // neighbor) triple — precompute the whole frame once. The
                // map also answers frame membership, replacing the separate
                // `in_frame` set.
                let raw: std::collections::HashMap<GateId, f64> =
                    fr.cells.iter().map(|&g| (g, raw_weight(g))).collect();
                let mut cells: Vec<GateId> = fr
                    .cells
                    .iter()
                    .copied()
                    .filter(|g| support.binary_search(g).is_ok())
                    .collect();
                cells.sort_unstable();
                // Spatial smoothing: a strike at center c impacts every
                // cell within the sampled spot radius, so the importance of
                // c is the radius-distribution average of the best raw
                // importance its spot can cover. Unlike a plain max this
                // keeps a gradient toward the high-importance cells instead
                // of flattening the whole neighborhood.
                let weights: Vec<f64> = cells
                    .iter()
                    .map(|&c| {
                        let raw_c = raw[&c];
                        if smoothing_radius <= 0.0 {
                            return raw_c;
                        }
                        let mut acc = 0.0;
                        for &r in &radius_options {
                            let mut best = raw_c;
                            if r > 0.0 {
                                for g in model.placement.cells_within(c, r) {
                                    if let Some(&w) = raw.get(&g) {
                                        best = best.max(w);
                                    }
                                }
                            }
                            acc += best;
                        }
                        acc / radius_options.len() as f64
                    })
                    .collect();
                Frame::from_weights(fr.t, cells, weights)
            })
            .filter(|fr| !fr.cells.is_empty())
            .collect();
        Self {
            inner: FramedStrategy::new(f, frames, RadiusDist::uniform(radius_options)),
        }
    }

    /// The marginal `g_T` over timing distances (paper Figure 8(a)).
    pub fn t_marginal(&self) -> Vec<(i64, f64)> {
        self.inner.t_marginal()
    }

    /// The probability mass of a sample under `g_{T,P}`.
    pub fn pmf(&self, s: &AttackSample) -> f64 {
        self.inner.pmf(s)
    }
}

impl SamplingStrategy for ImportanceSampling {
    fn name(&self) -> &'static str {
        "importance"
    }

    fn draw(&self, rng: &mut dyn rand::RngCore) -> AttackSample {
        self.inner.draw(rng)
    }

    fn weight(&self, sample: &AttackSample) -> f64 {
        self.inner.weight(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SystemModel, Precharacterization, ExperimentConfig) {
        let model = SystemModel::with_defaults().unwrap();
        let cfg = ExperimentConfig {
            t_max: 6,
            ..Default::default()
        };
        let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
        (model, prechar, cfg)
    }

    #[test]
    fn subblock_has_requested_size_and_contains_rs() {
        let model = SystemModel::with_defaults().unwrap();
        let cells = subblock_cells(&model, 0.125);
        let expect = (model.placement.placeable().len() as f64 * 0.125).ceil() as usize;
        assert_eq!(cells.len(), expect);
        // The sub-block must cover security-critical state: at least some
        // configuration registers or the responding-signal cone.
        let in_cone =
            xlmc_netlist::cones::fanin_cone(model.mpu.netlist(), model.mpu.responding_signal(), 0);
        let overlap = cells
            .iter()
            .filter(|&&g| in_cone.frame(0).contains(g))
            .count();
        assert!(overlap > cells.len() / 4, "cone overlap {overlap}");
    }

    #[test]
    fn random_sampling_has_unit_weight() {
        let (model, _, cfg) = setup();
        let f = baseline_distribution(&model, &cfg);
        let strat = RandomSampling::new(f);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = strat.draw(&mut rng);
            assert_eq!(strat.weight(&s), 1.0);
            assert!((1..=cfg.t_max).contains(&s.t));
        }
    }

    #[test]
    fn importance_pmf_sums_to_one() {
        let (model, prechar, cfg) = setup();
        let f = baseline_distribution(&model, &cfg);
        let is = ImportanceSampling::new(
            f,
            &model,
            &prechar,
            cfg.alpha,
            cfg.beta,
            cfg.radius_options.clone(),
        );
        let mut total = 0.0;
        for fr in prechar.space.frames() {
            for &g in &fr.cells {
                for &r in &cfg.radius_options {
                    for phase in 0..PHASE_BINS {
                        total += is.pmf(&AttackSample {
                            t: fr.t,
                            center: g,
                            radius: r,
                            phase,
                        });
                    }
                }
            }
        }
        assert!((total - 1.0).abs() < 1e-9, "total mass {total}");
    }

    #[test]
    fn importance_marginal_prefers_small_t() {
        // Frame 0 (t = 1) holds the whole comparator cone; deep frames only
        // the config loop: ω_1 must dominate (paper Figure 8(a) shape).
        let (model, prechar, cfg) = setup();
        let f = baseline_distribution(&model, &cfg);
        let is = ImportanceSampling::new(
            f,
            &model,
            &prechar,
            cfg.alpha,
            cfg.beta,
            cfg.radius_options.clone(),
        );
        let marg = is.t_marginal();
        let p1 = marg.iter().find(|&&(t, _)| t == 1).unwrap().1;
        let pmax = marg.iter().map(|&(_, p)| p).fold(0.0, f64::max);
        assert!((p1 - pmax).abs() < 1e-12, "g_T(1) = {p1} is not the mode");
        let plast = marg.last().unwrap().1;
        assert!(p1 > plast, "g_T(1) = {p1} vs tail {plast}");
        let total: f64 = marg.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn drawn_samples_have_positive_weight_and_mass() {
        let (model, prechar, cfg) = setup();
        let f = baseline_distribution(&model, &cfg);
        for strat in [
            Box::new(ConeSampling::new(
                f.clone(),
                &prechar,
                cfg.radius_options.clone(),
            )) as Box<dyn SamplingStrategy>,
            Box::new(ImportanceSampling::new(
                f.clone(),
                &model,
                &prechar,
                cfg.alpha,
                cfg.beta,
                cfg.radius_options.clone(),
            )),
        ] {
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..200 {
                let s = strat.draw(&mut rng);
                let w = strat.weight(&s);
                assert!(w >= 0.0, "{}: negative weight", strat.name());
                assert!(w.is_finite(), "{}: infinite weight", strat.name());
            }
        }
    }

    #[test]
    fn weight_guards_against_off_support_and_denormal_mass() {
        let (model, prechar, cfg) = setup();
        let f = baseline_distribution(&model, &cfg);
        let is = ImportanceSampling::new(
            f.clone(),
            &model,
            &prechar,
            cfg.alpha,
            cfg.beta,
            cfg.radius_options.clone(),
        );
        // A foreign sample off the support (a timing distance no frame
        // covers) has zero mass and must be skipped with weight 0.
        let off = AttackSample {
            t: 9_999,
            center: model.placement.placeable()[0],
            radius: 0.0,
            phase: 0,
        };
        assert_eq!(is.pmf(&off), 0.0);
        assert_eq!(is.weight(&off), 0.0);

        // Regression: a *denormal* g survived the old `g <= 0` check and
        // `f/g` overflowed to inf. Build a frame that gives one in-support
        // cell essentially zero mass and check the weight skips instead.
        let support = spatial_support(&f);
        let pair = vec![support[0], support[1]];
        let f2 = AttackDistribution {
            temporal: TemporalDist::uniform(1, 1),
            spatial: SpatialDist::UniformOverCells(pair.clone()),
            radius: RadiusDist::uniform(vec![0.0]),
        };
        let frame = Frame::from_weights(1, pair.clone(), vec![f64::MIN_POSITIVE * 1e-6, 1.0]);
        let strat = FramedStrategy::new(f2, vec![frame], RadiusDist::uniform(vec![0.0]));
        let s = AttackSample {
            t: 1,
            center: pair[0],
            radius: 0.0,
            phase: 0,
        };
        let g = strat.pmf(&s);
        assert!(
            g > 0.0 && g < f64::MIN_POSITIVE,
            "fixture must produce a denormal g, got {g:e}"
        );
        assert!(strat.f_pmf(&s) > 0.0);
        assert!(!(strat.f_pmf(&s) / g).is_finite(), "fixture must overflow");
        assert_eq!(strat.weight(&s), 0.0, "denormal g must skip, not blow up");
    }

    #[test]
    fn importance_weights_are_unbiased_on_indicator_functions() {
        // E_g[w · 1{A}] must equal f(A) for any event A; check the event
        // "t == 2" by Monte Carlo.
        let (model, prechar, cfg) = setup();
        let f = baseline_distribution(&model, &cfg);
        let is = ImportanceSampling::new(
            f.clone(),
            &model,
            &prechar,
            cfg.alpha,
            cfg.beta,
            cfg.radius_options.clone(),
        );
        let mut rng = StdRng::seed_from_u64(5);
        let n = 60_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let s = is.draw(&mut rng);
            if s.t == 2 {
                acc += is.weight(&s);
            }
        }
        let estimate = acc / n as f64;
        // Under f, P(t = 2, center in Ω(2) support) = (1/t_max) · |Ω(2) ∩
        // subblock| / |subblock|.
        let subblock = subblock_cells(&model, cfg.subblock_fraction);
        let frame2 = prechar.space.frame_for(2).unwrap();
        let overlap = frame2.cells.iter().filter(|g| subblock.contains(g)).count();
        let truth = (1.0 / cfg.t_max as f64) * overlap as f64 / subblock.len() as f64;
        assert!(
            (estimate - truth).abs() < 0.2 * truth.max(1e-3),
            "estimate {estimate} vs truth {truth}"
        );
    }

    #[test]
    fn cone_sampling_is_uniform_within_a_frame() {
        let (model, prechar, cfg) = setup();
        let f = baseline_distribution(&model, &cfg);
        let support = subblock_cells(&model, cfg.subblock_fraction);
        let cone = ConeSampling::new(f, &prechar, cfg.radius_options.clone());
        let marg = cone.t_marginal();
        // Uniform cell weights: marginal proportional to the sizes of the
        // support-restricted frames.
        let size = |t: i64| {
            prechar
                .space
                .frame_for(t)
                .unwrap()
                .cells
                .iter()
                .filter(|g| support.contains(g))
                .count() as f64
        };
        let (t_a, t_b) = (marg[0].0, marg[1].0);
        let pa = marg[0].1;
        let pb = marg[1].1;
        assert!((pa / pb - size(t_a) / size(t_b)).abs() < 1e-9);
    }
}
