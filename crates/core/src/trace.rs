//! Structured span tracing, hot-path counters and per-run provenance.
//!
//! Three faces, all zero-dependency (the JSON writer reuses the hand-rolled
//! escaping/number helpers from [`crate::telemetry`]):
//!
//! 1. **Hierarchical spans** — a [`TraceSink`] hands out RAII
//!    [`SpanGuard`]s; each records one complete (`ph: "X"`) Chrome
//!    trace-event on drop. The file written by [`write_trace`] opens
//!    directly in Perfetto / `chrome://tracing`, and
//!    [`TraceSink::print_self_time`] prints a self-time summary table
//!    (duration minus immediate children) to stderr.
//! 2. **Hot-path counters** — [`CampaignCounters`] (kernel-invariant) and
//!    [`KernelCounters`] (kernel-shape-specific) accumulated per chunk and
//!    merged in chunk order. To keep results and counters bit-identical
//!    across kernels and thread counts, the memo counters are defined
//!    *chunk-locally* via [`CounterScratch`]: the first occurrence of a key
//!    within a chunk is a miss, every repeat a hit. Totals then depend only
//!    on the multiset of per-run keys inside each chunk — independent of
//!    batch order, worker schedule, and cross-chunk cache warmth — so they
//!    are schedule-invariant lower bounds the real caches (which persist
//!    across chunks and workers) only improve on.
//! 3. **Per-run provenance** — a [`ProvenanceRecord`] per run (ring buffer
//!    of the last [`PROVENANCE_RING_CAP`] plus every successful run) written
//!    into the trace file, and re-derivable solo from
//!    `SplitMix64::for_run(seed, i)` by `estimator::replay_run`.
//!
//! The hard contract: tracing on or off never changes a single result bit.
//! Spans only read the clock; counters are pure functions of per-run
//! outcomes; provenance is copied out of the fold, never fed back in.

use crate::flow::StrikeClass;
use crate::json::{json_escape, json_num, JsonValue};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;
use xlmc_netlist::GateId;
use xlmc_soc::MpuBit;

/// Format tag of the trace file (top-level `"format"` key; extra top-level
/// keys are ignored by Perfetto, which only reads `"traceEvents"`).
pub const TRACE_FORMAT: &str = "xlmc-trace-v1";

/// How many trailing runs the provenance ring keeps (successful runs are
/// kept separately and never evicted).
pub const PROVENANCE_RING_CAP: usize = 256;

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One complete span, in Chrome trace-event terms a `ph: "X"` event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (`"chunk"`, `"cones"`, ...).
    pub name: &'static str,
    /// Category (`"prechar"`, `"campaign"`, `"replay"`, ...).
    pub cat: &'static str,
    /// Virtual thread id: 0 for the driver, `1..=threads` for workers.
    pub tid: u32,
    /// Start, in microseconds since the sink was created.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Numeric annotations (chunk index, run index, ...).
    pub args: Vec<(&'static str, f64)>,
}

struct Inner {
    t0: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

/// A sink for trace spans. A disabled sink records nothing and costs one
/// branch per span, so the same code path runs traced and untraced.
pub struct TraceSink {
    inner: Option<Inner>,
}

impl TraceSink {
    /// A sink that records spans.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Inner {
                t0: Instant::now(),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A sink that records nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span on the driver track (`tid` 0); it closes when the guard
    /// drops.
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        self.span_args(0, cat, name, &[])
    }

    /// Open a span on the given virtual thread.
    pub fn span_on(&self, tid: u32, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        self.span_args(tid, cat, name, &[])
    }

    /// Open a span with numeric annotations.
    pub fn span_args(
        &self,
        tid: u32,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, f64)],
    ) -> SpanGuard<'_> {
        SpanGuard {
            open: self.inner.as_ref().map(|inner| OpenSpan {
                inner,
                start: Instant::now(),
                name,
                cat,
                tid,
                args: args.to_vec(),
            }),
        }
    }

    /// A snapshot of every recorded event, in completion order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.events.lock().unwrap().clone(),
            None => Vec::new(),
        }
    }

    /// Aggregate self time (duration minus immediate children) per
    /// `(cat, name)`, sorted by self time descending.
    pub fn self_time_summary(&self) -> Vec<SpanSummary> {
        summarize(&self.events())
    }

    /// Print the self-time table to stderr, one row per `(cat, name)`.
    pub fn print_self_time(&self, label: &str) {
        let rows = self.self_time_summary();
        if rows.is_empty() {
            return;
        }
        eprintln!("[{label}] span self-time summary:");
        eprintln!(
            "[{label}]   {:<28} {:>7} {:>12} {:>12}",
            "span", "count", "total ms", "self ms"
        );
        for r in rows {
            eprintln!(
                "[{label}]   {:<28} {:>7} {:>12.3} {:>12.3}",
                format!("{}/{}", r.cat, r.name),
                r.count,
                r.total_us / 1_000.0,
                r.self_us / 1_000.0
            );
        }
    }
}

struct OpenSpan<'a> {
    inner: &'a Inner,
    start: Instant,
    name: &'static str,
    cat: &'static str,
    tid: u32,
    args: Vec<(&'static str, f64)>,
}

/// RAII guard returned by [`TraceSink::span`]; records the event on drop.
pub struct SpanGuard<'a> {
    open: Option<OpenSpan<'a>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let ts_us = open.start.duration_since(open.inner.t0).as_secs_f64() * 1e6;
            let dur_us = open.start.elapsed().as_secs_f64() * 1e6;
            open.inner.events.lock().unwrap().push(TraceEvent {
                name: open.name,
                cat: open.cat,
                tid: open.tid,
                ts_us,
                dur_us,
                args: open.args,
            });
        }
    }
}

/// One row of the self-time table.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span category.
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// How many spans carried this `(cat, name)`.
    pub count: usize,
    /// Total duration across all instances, microseconds.
    pub total_us: f64,
    /// Total duration minus time spent in immediate children on the same
    /// virtual thread, microseconds.
    pub self_us: f64,
}

/// Per-tid sorted sweep: a span's immediate children are the spans nested
/// directly inside it on the same virtual thread; self time is duration
/// minus the children's durations.
fn summarize(events: &[TraceEvent]) -> Vec<SpanSummary> {
    let mut per_tid: HashMap<u32, Vec<&TraceEvent>> = HashMap::new();
    for ev in events {
        per_tid.entry(ev.tid).or_default().push(ev);
    }
    type SpanKey = (&'static str, &'static str);
    let mut acc: Vec<(SpanKey, (usize, f64, f64))> = Vec::new();
    let mut index: HashMap<SpanKey, usize> = HashMap::new();
    for evs in per_tid.values_mut() {
        // Parents start no later and end no earlier than their children;
        // sort ties so parents come first.
        evs.sort_by(|a, b| {
            a.ts_us
                .partial_cmp(&b.ts_us)
                .unwrap()
                .then(b.dur_us.partial_cmp(&a.dur_us).unwrap())
        });
        // Stack of (end_us, accumulated child time); pop when a span ends
        // before the next one starts.
        let mut stack: Vec<(f64, f64, &TraceEvent)> = Vec::new();
        let mut flush = |(_, child_us, ev): (f64, f64, &TraceEvent)| {
            let slot = *index.entry((ev.cat, ev.name)).or_insert_with(|| {
                acc.push(((ev.cat, ev.name), (0, 0.0, 0.0)));
                acc.len() - 1
            });
            let (count, total, self_t) = &mut acc[slot].1;
            *count += 1;
            *total += ev.dur_us;
            *self_t += (ev.dur_us - child_us).max(0.0);
        };
        for ev in evs.iter() {
            while let Some(&(end, _, _)) = stack.last() {
                if end <= ev.ts_us {
                    flush(stack.pop().unwrap());
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last_mut() {
                top.1 += ev.dur_us;
            }
            stack.push((ev.ts_us + ev.dur_us, 0.0, ev));
        }
        while let Some(frame) = stack.pop() {
            flush(frame);
        }
    }
    let mut rows: Vec<SpanSummary> = acc
        .into_iter()
        .map(|((cat, name), (count, total_us, self_us))| SpanSummary {
            cat,
            name,
            count,
            total_us,
            self_us,
        })
        .collect();
    rows.sort_by(|a, b| b.self_us.partial_cmp(&a.self_us).unwrap());
    rows
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Kernel-invariant hot-path counters, defined chunk-locally (see the
/// module docs) so scalar and batched kernels at any thread count produce
/// identical totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignCounters {
    /// Runs whose injection cycle repeated within the chunk (the
    /// cycle-values memo serves them).
    pub cycle_memo_hits: usize,
    /// Runs striking a cycle first seen in the chunk (golden cycle values
    /// must be materialized).
    pub cycle_memo_misses: usize,
    /// Non-masked runs whose `(T_e, faulty bits)` key repeated within the
    /// chunk (the conclusion memo serves them).
    pub conclusion_memo_hits: usize,
    /// Non-masked runs with a chunk-first `(T_e, faulty bits)` key (a
    /// conclusion must be computed).
    pub conclusion_memo_misses: usize,
    /// Conclusion misses settled by the analytical shortcut.
    pub conclusions_analytic: usize,
    /// Conclusion misses that resumed RTL simulation.
    pub conclusions_rtl: usize,
    /// Chunks that had to clone a resident Soc for RTL resume (first RTL
    /// conclusion in the chunk).
    pub soc_clones: usize,
    /// RTL conclusions served by restoring the resident Soc instead of
    /// cloning a fresh one.
    pub soc_restores: usize,
    /// Transient pulses propagated through the combinational network,
    /// summed per lane (identical between kernels by the lane-equivalence
    /// property tests).
    pub pulses_propagated: usize,
    /// Samples injecting before the start of the benchmark (no strike).
    pub out_of_run: usize,
}

impl CampaignCounters {
    /// Accumulate another chunk's counters.
    pub fn add(&mut self, o: &CampaignCounters) {
        self.cycle_memo_hits += o.cycle_memo_hits;
        self.cycle_memo_misses += o.cycle_memo_misses;
        self.conclusion_memo_hits += o.conclusion_memo_hits;
        self.conclusion_memo_misses += o.conclusion_memo_misses;
        self.conclusions_analytic += o.conclusions_analytic;
        self.conclusions_rtl += o.conclusions_rtl;
        self.soc_clones += o.soc_clones;
        self.soc_restores += o.soc_restores;
        self.pulses_propagated += o.pulses_propagated;
        self.out_of_run += o.out_of_run;
    }

    /// Conclusion-memo hit rate in `[0, 1]`, 0 before any lookup.
    pub fn conclusion_hit_rate(&self) -> f64 {
        let lookups = self.conclusion_memo_hits + self.conclusion_memo_misses;
        if lookups == 0 {
            0.0
        } else {
            self.conclusion_memo_hits as f64 / lookups as f64
        }
    }

    /// Cycle-values-memo hit rate in `[0, 1]`, 0 before any lookup.
    pub fn cycle_hit_rate(&self) -> f64 {
        let lookups = self.cycle_memo_hits + self.cycle_memo_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cycle_memo_hits as f64 / lookups as f64
        }
    }
}

/// Kernel-shape counters: lane occupancy and frame stratification only
/// exist for the batched kernel, and the gate-visit count depends on how
/// strikes are grouped. These are *not* part of the cross-kernel equality
/// contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// 64-lane batches dispatched (batched kernel only).
    pub lane_batches: usize,
    /// Lanes occupied across all batches; mean occupancy is
    /// `lanes_occupied / lane_batches`.
    pub lanes_occupied: usize,
    /// Frame strata (distinct injection cycles per batch) encountered.
    pub frame_groups: usize,
    /// Gates popped from the transient-propagation worklist.
    pub gates_visited: usize,
}

impl KernelCounters {
    /// Accumulate another chunk's counters.
    pub fn add(&mut self, o: &KernelCounters) {
        self.lane_batches += o.lane_batches;
        self.lanes_occupied += o.lanes_occupied;
        self.frame_groups += o.frame_groups;
        self.gates_visited += o.gates_visited;
    }

    /// Mean lanes occupied per batch, 0 before any batch (scalar kernel).
    pub fn mean_lane_occupancy(&self) -> f64 {
        if self.lane_batches == 0 {
            0.0
        } else {
            self.lanes_occupied as f64 / self.lane_batches as f64
        }
    }
}

/// Per-worker scratch implementing the chunk-local counter model: reset at
/// each chunk start, then fed every run in fold order. First occurrence of
/// a key within the chunk is a miss, repeats are hits — a pure function of
/// the chunk's run outcomes, so scalar (run-index order) and batched
/// (lane-batch order folded back to run-index order) agree exactly.
#[derive(Default)]
pub(crate) struct CounterScratch {
    seen_te: HashSet<u64>,
    /// Campaign-lifetime intern table: each distinct error pattern pays one
    /// `Box<[MpuBit]>` allocation ever; the per-chunk membership set below
    /// stores only `(te, pattern id)` pairs, so the hot path is
    /// allocation-free once the pattern vocabulary is warm.
    interner: HashMap<Box<[MpuBit]>, u32>,
    /// Conclusion keys seen this chunk, as `(te, interned pattern id)`.
    seen: HashSet<(u64, u32)>,
    rtl_seen: bool,
}

impl CounterScratch {
    /// Reset for a new chunk (keeps allocations — and the intern table,
    /// which is chunk-independent).
    pub(crate) fn begin_chunk(&mut self) {
        self.seen_te.clear();
        self.seen.clear();
        self.rtl_seen = false;
    }

    /// Fold one run's outcome into the chunk's counters.
    pub(crate) fn record_run(
        &mut self,
        c: &mut CampaignCounters,
        te: Option<u64>,
        bits: &[MpuBit],
        analytic: bool,
        pulses: usize,
    ) {
        let Some(te) = te else {
            c.out_of_run += 1;
            return;
        };
        if self.seen_te.insert(te) {
            c.cycle_memo_misses += 1;
        } else {
            c.cycle_memo_hits += 1;
        }
        c.pulses_propagated += pulses;
        if bits.is_empty() {
            // Masked after hardening: the conclusion memo is never consulted.
            return;
        }
        let id = match self.interner.get(bits) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.interner.len()).expect("< 2^32 distinct patterns");
                self.interner.insert(bits.into(), id);
                id
            }
        };
        if !self.seen.insert((te, id)) {
            c.conclusion_memo_hits += 1;
            return;
        }
        c.conclusion_memo_misses += 1;
        if analytic {
            c.conclusions_analytic += 1;
        } else {
            c.conclusions_rtl += 1;
            if self.rtl_seen {
                c.soc_restores += 1;
            } else {
                self.rtl_seen = true;
                c.soc_clones += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

/// Everything needed to name, reproduce and audit one campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Run index `i`; the run's RNG is `SplitMix64::for_run(seed, i)`.
    pub run_index: u64,
    /// Timing distance `t = T_t − T_e` of the sampled attack.
    pub t: i64,
    /// Center of the radiated spot.
    pub center: GateId,
    /// Radius of the radiated spot.
    pub radius: f64,
    /// Strike-phase bin within the injection cycle.
    pub phase: u8,
    /// The injection cycle `T_e`, `None` when the sample fell before the
    /// start of the benchmark.
    pub te: Option<u64>,
    /// Importance weight `w(t, p)`.
    pub weight: f64,
    /// Where the errors landed.
    pub class: StrikeClass,
    /// The verdict `e(t, p)`.
    pub success: bool,
    /// Whether the verdict came from the analytical shortcut.
    pub analytic: bool,
}

/// Stable string name of a strike class, shared by the trace writer and
/// its schema.
pub fn class_str(class: StrikeClass) -> &'static str {
    match class {
        StrikeClass::Masked => "masked",
        StrikeClass::MemoryOnly => "memory_only",
        StrikeClass::Mixed => "mixed",
    }
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

/// The counters as a JSON object (`"kernel"` nested), shared between the
/// metrics document and the trace file.
pub(crate) fn counters_json(c: &CampaignCounters, k: &KernelCounters) -> String {
    format!(
        concat!(
            "{{\"cycle_memo_hits\": {}, \"cycle_memo_misses\": {}, ",
            "\"conclusion_memo_hits\": {}, \"conclusion_memo_misses\": {}, ",
            "\"conclusions_analytic\": {}, \"conclusions_rtl\": {}, ",
            "\"soc_clones\": {}, \"soc_restores\": {}, ",
            "\"pulses_propagated\": {}, \"out_of_run\": {}, ",
            "\"kernel\": {{\"lane_batches\": {}, \"lanes_occupied\": {}, ",
            "\"frame_groups\": {}, \"gates_visited\": {}}}}}"
        ),
        c.cycle_memo_hits,
        c.cycle_memo_misses,
        c.conclusion_memo_hits,
        c.conclusion_memo_misses,
        c.conclusions_analytic,
        c.conclusions_rtl,
        c.soc_clones,
        c.soc_restores,
        c.pulses_propagated,
        c.out_of_run,
        k.lane_batches,
        k.lanes_occupied,
        k.frame_groups,
        k.gates_visited,
    )
}

fn u_field(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .map(|x| x as usize)
        .ok_or_else(|| format!("counters: missing or non-integer {key:?}"))
}

/// Parse the `"counters"` object written by [`counters_json`] (checkpoint
/// round-trip).
pub(crate) fn counters_from_json(
    v: &JsonValue,
) -> Result<(CampaignCounters, KernelCounters), String> {
    let c = CampaignCounters {
        cycle_memo_hits: u_field(v, "cycle_memo_hits")?,
        cycle_memo_misses: u_field(v, "cycle_memo_misses")?,
        conclusion_memo_hits: u_field(v, "conclusion_memo_hits")?,
        conclusion_memo_misses: u_field(v, "conclusion_memo_misses")?,
        conclusions_analytic: u_field(v, "conclusions_analytic")?,
        conclusions_rtl: u_field(v, "conclusions_rtl")?,
        soc_clones: u_field(v, "soc_clones")?,
        soc_restores: u_field(v, "soc_restores")?,
        pulses_propagated: u_field(v, "pulses_propagated")?,
        out_of_run: u_field(v, "out_of_run")?,
    };
    let kv = v
        .get("kernel")
        .ok_or_else(|| "counters: missing \"kernel\"".to_string())?;
    let k = KernelCounters {
        lane_batches: u_field(kv, "lane_batches")?,
        lanes_occupied: u_field(kv, "lanes_occupied")?,
        frame_groups: u_field(kv, "frame_groups")?,
        gates_visited: u_field(kv, "gates_visited")?,
    };
    Ok((c, k))
}

fn provenance_json(rec: &ProvenanceRecord) -> String {
    format!(
        concat!(
            "{{\"run_index\": {}, \"t\": {}, \"center\": {}, \"radius\": {}, ",
            "\"phase\": {}, \"te\": {}, \"weight\": {}, \"class\": \"{}\", ",
            "\"success\": {}, \"analytic\": {}}}"
        ),
        rec.run_index,
        rec.t,
        rec.center.index(),
        json_num(rec.radius),
        rec.phase,
        match rec.te {
            Some(te) => te.to_string(),
            None => "null".to_string(),
        },
        json_num(rec.weight),
        class_str(rec.class),
        rec.success,
        rec.analytic,
    )
}

/// Serialize the whole trace document: Chrome trace events plus the
/// counters and provenance sections.
pub fn trace_json(
    sink: &TraceSink,
    counters: &CampaignCounters,
    kernel: &KernelCounters,
    ring: &[ProvenanceRecord],
    successes: &[ProvenanceRecord],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"format\": \"{TRACE_FORMAT}\",");
    let _ = writeln!(s, "  \"traceEvents\": [");
    let events = sink.events();
    for (i, ev) in events.iter().enumerate() {
        let comma = if i + 1 == events.len() { "" } else { "," };
        let mut args = String::new();
        for (j, (key, val)) in ev.args.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(args, "{sep}\"{}\": {}", json_escape(key), json_num(*val));
        }
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{{args}}}}}{comma}",
            json_escape(ev.name),
            json_escape(ev.cat),
            json_num(ev.ts_us),
            json_num(ev.dur_us),
            ev.tid,
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"counters\": {},", counters_json(counters, kernel));
    let _ = writeln!(s, "  \"provenance\": {{");
    for (key, records, comma) in [("ring", ring, ","), ("successes", successes, "")] {
        let _ = writeln!(s, "    \"{key}\": [");
        for (i, rec) in records.iter().enumerate() {
            let rc = if i + 1 == records.len() { "" } else { "," };
            let _ = writeln!(s, "      {}{rc}", provenance_json(rec));
        }
        let _ = writeln!(s, "    ]{comma}");
    }
    let _ = writeln!(s, "  }}");
    let _ = write!(s, "}}");
    s
}

/// Write the trace document atomically (`.tmp` then rename), like the
/// metrics and checkpoint writers.
pub fn write_trace(
    path: &Path,
    sink: &TraceSink,
    counters: &CampaignCounters,
    kernel: &KernelCounters,
    ring: &[ProvenanceRecord],
    successes: &[ProvenanceRecord],
) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, trace_json(sink, counters, kernel, ring, successes))?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        {
            let _a = sink.span("cat", "a");
            let _b = sink.span_on(3, "cat", "b");
        }
        assert!(!sink.is_enabled());
        assert!(sink.events().is_empty());
        assert!(sink.self_time_summary().is_empty());
    }

    #[test]
    fn spans_nest_and_self_time_excludes_children() {
        let sink = TraceSink::enabled();
        {
            let _outer = sink.span("t", "outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = sink.span("t", "inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        // Drop order: inner completes first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert!(events[1].dur_us >= events[0].dur_us);

        let rows = sink.self_time_summary();
        let outer = rows.iter().find(|r| r.name == "outer").unwrap();
        let inner = rows.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(outer.count, 1);
        assert!(outer.total_us >= inner.total_us);
        assert!(
            outer.self_us <= outer.total_us - inner.total_us + 1.0,
            "self time should exclude the nested span: outer self {} total {} inner {}",
            outer.self_us,
            outer.total_us,
            inner.total_us
        );
    }

    #[test]
    fn counter_scratch_models_chunk_local_memos() {
        let mut ctr = CounterScratch::default();
        let mut c = CampaignCounters::default();
        let bits_a = [MpuBit::Enable];
        let bits_b = [MpuBit::Base(0, 1)];
        ctr.begin_chunk();
        // Out of run.
        ctr.record_run(&mut c, None, &[], false, 0);
        // First strike at cycle 7, masked after hardening.
        ctr.record_run(&mut c, Some(7), &[], false, 3);
        // Same cycle, distinct bits -> conclusion miss (rtl) + soc clone.
        ctr.record_run(&mut c, Some(7), &bits_a, false, 2);
        // Repeat key -> conclusion hit.
        ctr.record_run(&mut c, Some(7), &bits_a, false, 2);
        // New bits, same cycle -> miss, analytic.
        ctr.record_run(&mut c, Some(7), &bits_b, true, 1);
        // New cycle, rtl -> restore (soc already resident this chunk).
        ctr.record_run(&mut c, Some(9), &bits_a, false, 4);
        assert_eq!(c.out_of_run, 1);
        assert_eq!(c.cycle_memo_misses, 2);
        assert_eq!(c.cycle_memo_hits, 3);
        assert_eq!(c.conclusion_memo_misses, 3);
        assert_eq!(c.conclusion_memo_hits, 1);
        assert_eq!(c.conclusions_analytic, 1);
        assert_eq!(c.conclusions_rtl, 2);
        assert_eq!(c.soc_clones, 1);
        assert_eq!(c.soc_restores, 1);
        assert_eq!(c.pulses_propagated, 3 + 2 + 2 + 1 + 4);

        // A new chunk forgets everything.
        let mut c2 = CampaignCounters::default();
        ctr.begin_chunk();
        ctr.record_run(&mut c2, Some(7), &bits_a, false, 2);
        assert_eq!(c2.cycle_memo_misses, 1);
        assert_eq!(c2.conclusion_memo_misses, 1);
        assert_eq!(c2.soc_clones, 1);
    }

    #[test]
    fn counter_totals_are_order_independent_within_a_chunk() {
        // The multiset of (te, bits, analytic) keys determines the totals;
        // permuting the fold order must not change them.
        let runs: Vec<(Option<u64>, Vec<MpuBit>, bool, usize)> = vec![
            (Some(3), vec![], false, 1),
            (Some(3), vec![MpuBit::Enable], false, 2),
            (Some(5), vec![MpuBit::Enable], true, 3),
            (None, vec![], false, 0),
            (Some(3), vec![MpuBit::Enable], false, 2),
            (Some(5), vec![MpuBit::Base(1, 2)], false, 4),
        ];
        let fold = |order: &[usize]| {
            let mut ctr = CounterScratch::default();
            let mut c = CampaignCounters::default();
            ctr.begin_chunk();
            for &i in order {
                let (te, bits, analytic, pulses) = &runs[i];
                ctr.record_run(&mut c, *te, bits, *analytic, *pulses);
            }
            c
        };
        let forward = fold(&[0, 1, 2, 3, 4, 5]);
        let reversed = fold(&[5, 4, 3, 2, 1, 0]);
        let shuffled = fold(&[2, 5, 0, 3, 1, 4]);
        assert_eq!(forward, reversed);
        assert_eq!(forward, shuffled);
    }

    #[test]
    fn trace_json_is_parseable_and_carries_all_sections() {
        let sink = TraceSink::enabled();
        {
            let _s = sink.span_args(2, "campaign", "chunk", &[("chunk", 4.0)]);
        }
        let c = CampaignCounters {
            cycle_memo_hits: 10,
            conclusion_memo_misses: 3,
            ..Default::default()
        };
        let k = KernelCounters {
            lane_batches: 8,
            lanes_occupied: 512,
            ..Default::default()
        };
        let rec = ProvenanceRecord {
            run_index: 42,
            t: -3,
            center: GateId(7),
            radius: 1.5,
            phase: 6,
            te: Some(19),
            weight: 0.25,
            class: StrikeClass::Mixed,
            success: true,
            analytic: false,
        };
        let none_te = ProvenanceRecord {
            te: None,
            class: StrikeClass::Masked,
            success: false,
            ..rec.clone()
        };
        let json = trace_json(&sink, &c, &k, &[none_te], &[rec]);
        let doc = JsonValue::parse(&json).expect("trace json parses");
        assert_eq!(
            doc.get("format").and_then(JsonValue::as_str),
            Some(TRACE_FORMAT)
        );
        let events = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("name").and_then(JsonValue::as_str),
            Some("chunk")
        );
        assert_eq!(events[0].get("tid").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(
            events[0]
                .get("args")
                .and_then(|a| a.get("chunk"))
                .and_then(JsonValue::as_u64),
            Some(4)
        );
        let counters = doc.get("counters").unwrap();
        assert_eq!(
            counters.get("cycle_memo_hits").and_then(JsonValue::as_u64),
            Some(10)
        );
        let (rc, rk) = counters_from_json(counters).expect("counters round-trip");
        assert_eq!(rc, c);
        assert_eq!(rk, k);
        let prov = doc.get("provenance").unwrap();
        let succ = prov.get("successes").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(
            succ[0].get("run_index").and_then(JsonValue::as_u64),
            Some(42)
        );
        assert_eq!(
            succ[0].get("class").and_then(JsonValue::as_str),
            Some("mixed")
        );
        let ring = prov.get("ring").and_then(JsonValue::as_arr).unwrap();
        assert!(ring[0].get("te").is_some());
    }

    #[test]
    fn mean_occupancy_and_hit_rates_handle_zero() {
        assert_eq!(KernelCounters::default().mean_lane_occupancy(), 0.0);
        assert_eq!(CampaignCounters::default().conclusion_hit_rate(), 0.0);
        assert_eq!(CampaignCounters::default().cycle_hit_rate(), 0.0);
        let k = KernelCounters {
            lane_batches: 4,
            lanes_occupied: 200,
            ..Default::default()
        };
        assert_eq!(k.mean_lane_occupancy(), 50.0);
    }
}
