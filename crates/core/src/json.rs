//! The hand-rolled JSON layer shared by every serialized artifact —
//! checkpoints, metrics, traces, the events JSONL and the scenario
//! reports: a parsed [`JsonValue`] tree, a recursive-descent parser,
//! writer helpers, and the mini schema validator CI runs over all of
//! them.
//!
//! The vendored `serde` is a no-op stub (no format crate in the offline
//! build), so everything here is written by hand and kept deliberately
//! small: the parser accepts exactly the JSON the writers emit plus
//! standard interchange documents, and the validator covers the
//! JSON-Schema subset the checked-in `schemas/*.json` use.
//!
//! Two encodings matter for reproducibility:
//!
//! * [`json_num`] prints an `f64` with Rust's shortest-roundtrip
//!   formatting, so parsing the number back yields the identical bits —
//!   metrics files and events can be diffed and replayed exactly.
//! * [`bits_str`] / [`f64_from_bits_str`] store an `f64` as its IEEE-754
//!   bit pattern in hex, the belt-and-braces encoding checkpoints use.

// ---------------------------------------------------------------------------
// Minimal JSON value, parser, and writer helpers
// ---------------------------------------------------------------------------

/// A parsed JSON document (object keys keep file order).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<JsonValue, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The JSON type name used by the schema validator.
    fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Num(x) if x.fract() == 0.0 => "integer",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} of JSON input",
            b as char, *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("invalid number {text:?} at byte {start}"))
        }
        None => Err("unexpected end of JSON input".to_owned()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a valid &str).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
            None => return Err("unterminated string".to_owned()),
        }
    }
}

/// Escape a string for embedding in JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite `f64` as a round-trippable JSON number, non-finite as `null`.
/// Rust's `{}` formatting picks the shortest decimal that parses back to
/// the identical bit pattern, so consumers can rebuild exact values.
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// The IEEE-754 bit pattern of an `f64` as a hex JSON string (quotes
/// included) — the bit-exact encoding every checkpoint float and every
/// `*_bits` event field goes through.
pub fn bits_str(x: f64) -> String {
    format!("\"{:#018x}\"", x.to_bits())
}

/// Decode a [`bits_str`]-encoded hex bit pattern back into its `f64`.
pub fn f64_from_bits_str(v: &JsonValue, what: &str) -> Result<f64, String> {
    let s = v
        .as_str()
        .ok_or_else(|| format!("{what}: expected a hex bit string"))?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("{what}: missing 0x prefix in {s:?}"))?;
    u64::from_str_radix(digits, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("{what}: {e}"))
}

/// Fetch a required non-negative integer member of an object.
pub fn get_u64(obj: &JsonValue, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

// ---------------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------------

/// Validate `doc` against a JSON-Schema-style document supporting the
/// subset the checked-in `schemas/*.json` use: `type` (string or array
/// of strings, with `integer` ⊂ `number`), `required`, `properties`,
/// `items`, and `enum` (of strings). Returns the first violation found,
/// with a path.
pub fn validate_against_schema(doc: &JsonValue, schema: &JsonValue) -> Result<(), String> {
    validate_at(doc, schema, "$")
}

fn validate_at(doc: &JsonValue, schema: &JsonValue, path: &str) -> Result<(), String> {
    if let Some(ty) = schema.get("type") {
        let allowed: Vec<&str> = match ty {
            JsonValue::Str(s) => vec![s.as_str()],
            JsonValue::Arr(items) => items.iter().filter_map(JsonValue::as_str).collect(),
            _ => return Err(format!("{path}: malformed schema type")),
        };
        let actual = doc.type_name();
        let ok = allowed
            .iter()
            .any(|&t| t == actual || (t == "number" && actual == "integer"));
        if !ok {
            return Err(format!("{path}: expected type {allowed:?}, got {actual}"));
        }
    }
    if let Some(JsonValue::Arr(options)) = schema.get("enum") {
        if !options.contains(doc) {
            return Err(format!("{path}: value not in schema enum"));
        }
    }
    // Like draft-07, `required` constrains objects only — a nullable
    // object field (`"type": ["object", "null"]`) passes as `null`.
    if let (Some(JsonValue::Arr(required)), JsonValue::Obj(_)) = (schema.get("required"), doc) {
        for key in required.iter().filter_map(JsonValue::as_str) {
            if doc.get(key).is_none() {
                return Err(format!("{path}: missing required field {key:?}"));
            }
        }
    }
    if let (Some(JsonValue::Obj(props)), JsonValue::Obj(members)) = (schema.get("properties"), doc)
    {
        for (key, value) in members {
            if let Some((_, sub)) = props.iter().find(|(k, _)| k == key) {
                validate_at(value, sub, &format!("{path}.{key}"))?;
            }
        }
    }
    if let (Some(items), JsonValue::Arr(elems)) = (schema.get("items"), doc) {
        for (i, elem) in elems.iter().enumerate() {
            validate_at(elem, items, &format!("{path}[{i}]"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let doc =
            JsonValue::parse(r#"{"a": [1, -2.5e3, "x\n\"y\"", true, null], "b": {"c": 0.125}}"#)
                .unwrap();
        let arr = doc.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\n\"y\""));
        assert_eq!(arr[3], JsonValue::Bool(true));
        assert_eq!(arr[4], JsonValue::Null);
        assert_eq!(
            doc.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_f64),
            Some(0.125)
        );
        assert!(JsonValue::parse("{\"a\": 1} trailing").is_err());
        assert!(JsonValue::parse("{\"a\": }").is_err());
    }

    #[test]
    fn schema_validator_accepts_and_rejects() {
        let schema = JsonValue::parse(
            r#"{
                "type": "object",
                "required": ["name", "count"],
                "properties": {
                    "name": {"type": "string", "enum": ["a", "b"]},
                    "count": {"type": "integer"},
                    "extra": {"type": ["number", "null"]},
                    "list": {"type": "array", "items": {"type": "number"}}
                }
            }"#,
        )
        .unwrap();
        let ok = JsonValue::parse(r#"{"name": "a", "count": 3, "extra": null, "list": [1, 2.5]}"#)
            .unwrap();
        assert_eq!(validate_against_schema(&ok, &schema), Ok(()));
        let missing = JsonValue::parse(r#"{"name": "a"}"#).unwrap();
        assert!(validate_against_schema(&missing, &schema)
            .unwrap_err()
            .contains("count"));
        let bad_enum = JsonValue::parse(r#"{"name": "z", "count": 3}"#).unwrap();
        assert!(validate_against_schema(&bad_enum, &schema).is_err());
        let bad_type = JsonValue::parse(r#"{"name": "a", "count": 3.5}"#).unwrap();
        assert!(validate_against_schema(&bad_type, &schema).is_err());
        let bad_item = JsonValue::parse(r#"{"name": "a", "count": 3, "list": ["x"]}"#).unwrap();
        assert!(validate_against_schema(&bad_item, &schema).is_err());
    }

    #[test]
    fn bits_str_round_trips_every_float() {
        for x in [0.0, -0.0, 0.1 + 0.2, f64::MIN_POSITIVE, 1.0 / 3.0, -7e300] {
            let encoded = bits_str(x);
            let v = JsonValue::parse(&encoded).unwrap();
            let back = f64_from_bits_str(&v, "test").unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn deep_nesting_parses_and_unbalanced_nesting_is_rejected() {
        // 200 levels of arrays — deep enough to prove recursion handles
        // real documents, shallow enough to stay off any stack limit.
        let depth = 200;
        let src = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        let mut v = &JsonValue::parse(&src).unwrap();
        for _ in 0..depth {
            v = &v.as_arr().unwrap()[0];
        }
        assert_eq!(v.as_u64(), Some(0));
        assert!(JsonValue::parse(&format!("{}0{}", "[".repeat(5), "]".repeat(4))).is_err());
        assert!(JsonValue::parse(&format!("{}0{}", "[".repeat(4), "]".repeat(5))).is_err());
    }

    proptest! {
        /// Any string survives escape → embed → parse unchanged —
        /// including quotes, backslashes, control characters, BMP text
        /// and astral-plane scalars.
        #[test]
        fn escape_round_trips_arbitrary_strings(s in arb_string(24)) {
            let doc = format!("{{\"k\": \"{}\"}}", json_escape(&s));
            let parsed = JsonValue::parse(&doc).unwrap();
            prop_assert_eq!(parsed.get("k").and_then(JsonValue::as_str), Some(s.as_str()));
        }

        /// Explicit unicode coverage: embedded control characters plus a
        /// guaranteed astral-plane scalar next to arbitrary text.
        #[test]
        fn escape_round_trips_unicode_and_controls(
            head in arb_string(16),
            ctrl in 0u32..0x20,
        ) {
            let mut s = head;
            s.push(char::from_u32(ctrl).unwrap());
            s.push('\u{1F980}');
            let doc = format!("[\"{}\"]", json_escape(&s));
            let parsed = JsonValue::parse(&doc).unwrap();
            prop_assert_eq!(parsed.as_arr().unwrap()[0].as_str(), Some(s.as_str()));
        }

        /// `json_num` is shortest-roundtrip: the printed decimal parses
        /// back to the identical IEEE-754 bits.
        #[test]
        fn json_num_round_trips_finite_floats(bits in any::<u64>()) {
            let x = f64::from_bits(bits);
            prop_assume!(x.is_finite());
            let parsed = JsonValue::parse(&json_num(x)).unwrap();
            let back = parsed.as_f64().unwrap();
            prop_assert_eq!(back.to_bits(), x.to_bits());
        }

        /// A render → parse cycle of random nested documents is the
        /// identity (object order and all values preserved).
        #[test]
        fn parse_render_parse_is_a_fixpoint(v in arb_json(3)) {
            let rendered = render(&v);
            let parsed = JsonValue::parse(&rendered).unwrap();
            prop_assert_eq!(parsed, v);
        }

        /// Truncating a valid document anywhere strictly inside it must
        /// produce an error, never a panic or a silent success.
        #[test]
        fn truncated_documents_are_rejected(v in arb_json(2), cut_sel in 0u32..1000) {
            let rendered = render(&v);
            let mut cut = rendered.len() * cut_sel as usize / 1000;
            while cut > 0 && !rendered.is_char_boundary(cut) {
                cut -= 1;
            }
            if cut < rendered.len() && cut > 0 {
                // A prefix can stay valid only if it is a complete value
                // (e.g. a number losing trailing digits); anything
                // structurally open must fail.
                let prefix = &rendered[..cut];
                let _ = JsonValue::parse(prefix); // must not panic
                if matches!(v, JsonValue::Obj(_) | JsonValue::Arr(_)) {
                    prop_assert!(JsonValue::parse(prefix).is_err());
                }
            }
        }

        /// Random structural soup is handled without panicking, and a
        /// few known-bad shapes always fail.
        #[test]
        fn malformed_inputs_error_not_panic(
            picks in prop::collection::vec(0usize..SOUP.len(), 0..40),
        ) {
            let s: String = picks.into_iter().map(|i| SOUP[i]).collect();
            let _ = JsonValue::parse(&s); // must not panic
            prop_assert!(JsonValue::parse("{,}").is_err());
            prop_assert!(JsonValue::parse("[1,]").is_err());
            prop_assert!(JsonValue::parse("\"\\q\"").is_err());
            prop_assert!(JsonValue::parse("{\"a\" 1}").is_err());
            prop_assert!(JsonValue::parse("01x").is_err());
        }
    }

    /// The character soup malformed inputs are built from.
    const SOUP: [char; 20] = [
        '{', '}', '[', ']', ',', ':', '"', '\\', ' ', '\n', '0', '1', '9', '.', '-', 'e', 't', 'n',
        'a', 'z',
    ];

    /// A strategy for arbitrary unicode strings of at most `max` scalars
    /// (surrogate code points are skipped; everything else — controls,
    /// quotes, astral planes — is fair game).
    fn arb_string(max: usize) -> impl Strategy<Value = String> {
        prop::collection::vec(0u32..0x11_0000, 0..max)
            .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
    }

    /// A strategy for short lowercase object keys.
    fn arb_key() -> impl Strategy<Value = String> {
        prop::collection::vec(0u8..26, 1..7)
            .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
    }

    /// A strategy for small nested JSON documents (recursion depth
    /// bounded by `depth` — the stub proptest has no `prop_recursive`,
    /// so the tree is built by explicit recursion at construction time).
    fn arb_json(depth: u32) -> BoxedStrategy<JsonValue> {
        let leaf = prop_oneof![
            Just(JsonValue::Null),
            any::<bool>().prop_map(JsonValue::Bool),
            (-1_000_000_000i64..1_000_000_000).prop_map(|i| JsonValue::Num(i as f64 / 64.0)),
            arb_string(12).prop_map(JsonValue::Str),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        prop_oneof![
            2 => leaf,
            1 => prop::collection::vec(arb_json(depth - 1), 0..4).prop_map(JsonValue::Arr),
            1 => prop::collection::vec((arb_key(), arb_json(depth - 1)), 0..4).prop_map(|kv| {
                // JSON objects with duplicate keys are ambiguous under
                // `get`; keep the first occurrence only.
                let mut seen = std::collections::BTreeSet::new();
                JsonValue::Obj(
                    kv.into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
        .boxed()
    }

    /// Render a [`JsonValue`] back to text with the writer helpers.
    fn render(v: &JsonValue) -> String {
        match v {
            JsonValue::Null => "null".to_owned(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::Num(x) => json_num(*x),
            JsonValue::Str(s) => format!("\"{}\"", json_escape(s)),
            JsonValue::Arr(items) => {
                let inner: Vec<String> = items.iter().map(render).collect();
                format!("[{}]", inner.join(", "))
            }
            JsonValue::Obj(members) => {
                let inner: Vec<String> = members
                    .iter()
                    .map(|(k, v)| format!("\"{}\": {}", json_escape(k), render(v)))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }
}
