//! Error lifetime and contamination characterization
//! (pre-characterization step 3, Observation 3).
//!
//! For every register in the responding-signal cones, single bit errors are
//! injected at several points of the synthetic golden run; the faulty RTL
//! simulation is compared against the recorded golden states cycle by
//! cycle. The **error lifetime** is the number of cycles until the MPU
//! state re-converges (capped); the **error contamination number** is how
//! many *other* registers the error ever spreads to. Long-lived,
//! non-contaminating registers are **memory-type** (evaluated analytically
//! by the flow); the rest are **computation-type** (sampled).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xlmc_soc::golden::GoldenRun;
use xlmc_soc::{MpuBit, Soc};

/// Censoring cap for the lifetime measurement, in cycles.
pub const LIFETIME_CAP: u32 = 200;
/// Lifetime at or above which a register counts as long-lived.
pub const MEMORY_LIFETIME_MIN: u32 = 100;
/// Maximum contamination for the memory-type classification.
pub const MEMORY_CONTAMINATION_MAX: u32 = 0;

/// The paper's register classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegisterKind {
    /// Errors persist locally: long lifetime, no contamination. Evaluated
    /// analytically.
    Memory,
    /// Errors propagate or get masked quickly. Evaluated by sampling.
    Computation,
}

/// Measured characterization of one register bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BitCharacter {
    /// Error lifetime: the *maximum* over the injection samples (capped at
    /// [`LIFETIME_CAP`]). The maximum measures persistence potential — an
    /// error that survives long whenever nothing overwrites it must be
    /// treated as long-lived by the sampler, even if some injections
    /// happened shortly before a reconfiguration.
    pub lifetime: u32,
    /// Median error contamination number.
    pub contamination: u32,
    /// Raw `(lifetime, contamination)` per injection.
    pub samples: Vec<(u32, u32)>,
    /// Fraction of injections whose error propagated to the responding
    /// signal register — the injection-measured bit-flip correlation of
    /// Observation 2, which captures *persistent* registers that the
    /// switching-signature correlation cannot see (they rarely toggle).
    pub rs_flip_fraction: f64,
    /// Fraction of injections whose error *suppressed* responding-signal
    /// activity (the faulty run raised strictly fewer violations over the
    /// observation window than the golden run). Per the paper's attack
    /// analysis, suppression is exactly what the attacker needs: "prevent
    /// the security-critical modules from setting the responding signals".
    pub rs_suppress_fraction: f64,
    /// The derived classification.
    pub kind: RegisterKind,
}

/// Characterization of every MPU register bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterCharacterization {
    per_bit: HashMap<MpuBit, BitCharacter>,
}

fn median(values: &mut [u32]) -> u32 {
    values.sort_unstable();
    values[values.len() / 2]
}

/// Measure lifetime, contamination and responding-signal propagation of
/// one bit flipped at the start of `cycle` of the golden run.
fn measure_one(golden: &GoldenRun, bit: MpuBit, cycle: u64) -> (u32, u32, bool, bool) {
    let mut soc: Soc = golden.nearest_checkpoint(cycle).clone();
    while soc.cycle < cycle {
        soc.step();
    }
    soc.mpu.toggle_bit(bit);
    let mut contaminated: std::collections::HashSet<MpuBit> = std::collections::HashSet::new();
    let mut reached_rs = false;
    let mut golden_viols = 0u32;
    let mut faulty_viols = 0u32;
    let mut lifetime = LIFETIME_CAP;
    let mut converged = false;
    let all_bits = MpuBit::all();
    for k in 1..=LIFETIME_CAP {
        let golden_idx = cycle + u64::from(k);
        if golden_idx >= golden.cycles {
            // Golden run ended; the error outlived the benchmark.
            break;
        }
        soc.step();
        let golden_state = &golden.mpu_states[golden_idx as usize];
        // Violation activity is counted over the whole window (alignment-
        // insensitive): fewer faulty violations = suppression.
        if golden_state.bit(MpuBit::Violation) {
            golden_viols += 1;
        }
        if soc.mpu.bit(MpuBit::Violation) {
            faulty_viols += 1;
        }
        if !converged {
            let mut any_diff = false;
            for &b in &all_bits {
                if soc.mpu.bit(b) != golden_state.bit(b) {
                    any_diff = true;
                    if b != bit {
                        contaminated.insert(b);
                    }
                    if b == MpuBit::Violation {
                        reached_rs = true;
                    }
                }
            }
            if !any_diff {
                lifetime = k;
                converged = true;
            }
        }
    }
    let suppressed_rs = faulty_viols < golden_viols;
    (
        lifetime,
        contaminated.len() as u32,
        reached_rs,
        suppressed_rs,
    )
}

impl RegisterCharacterization {
    /// Characterize every MPU register bit by injection at `sample_cycles`
    /// of the synthetic golden run.
    ///
    /// # Panics
    ///
    /// Panics when `sample_cycles` is empty or reaches past the run.
    pub fn measure(golden: &GoldenRun, sample_cycles: &[u64]) -> Self {
        assert!(!sample_cycles.is_empty(), "need at least one sample cycle");
        assert!(
            sample_cycles.iter().all(|&c| c < golden.cycles),
            "sample cycle beyond the golden run"
        );
        let mut per_bit = HashMap::new();
        for bit in MpuBit::all() {
            let raw: Vec<(u32, u32, bool, bool)> = sample_cycles
                .iter()
                .map(|&c| measure_one(golden, bit, c))
                .collect();
            let samples: Vec<(u32, u32)> = raw.iter().map(|&(l, c, _, _)| (l, c)).collect();
            let rs_flip_fraction =
                raw.iter().filter(|&&(_, _, r, _)| r).count() as f64 / raw.len() as f64;
            let rs_suppress_fraction =
                raw.iter().filter(|&&(_, _, _, su)| su).count() as f64 / raw.len() as f64;
            let lifetime = samples.iter().map(|s| s.0).max().unwrap_or(0);
            let mut contams: Vec<u32> = samples.iter().map(|s| s.1).collect();
            let contamination = median(&mut contams);
            let kind =
                if lifetime >= MEMORY_LIFETIME_MIN && contamination == MEMORY_CONTAMINATION_MAX {
                    RegisterKind::Memory
                } else {
                    RegisterKind::Computation
                };
            per_bit.insert(
                bit,
                BitCharacter {
                    lifetime,
                    contamination,
                    samples,
                    rs_flip_fraction,
                    rs_suppress_fraction,
                    kind,
                },
            );
        }
        Self { per_bit }
    }

    /// The characterization of one bit.
    ///
    /// # Panics
    ///
    /// Panics for bits outside [`MpuBit::all`] (cannot happen).
    pub fn bit(&self, bit: MpuBit) -> &BitCharacter {
        &self.per_bit[&bit]
    }

    /// The classification of one bit.
    pub fn kind(&self, bit: MpuBit) -> RegisterKind {
        self.per_bit[&bit].kind
    }

    /// Iterate `(bit, character)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&MpuBit, &BitCharacter)> {
        self.per_bit.iter()
    }

    /// Fraction of registers classified memory-type.
    pub fn memory_fraction(&self) -> f64 {
        let mem = self
            .per_bit
            .values()
            .filter(|c| c.kind == RegisterKind::Memory)
            .count();
        mem as f64 / self.per_bit.len() as f64
    }
}

/// Evenly spaced sample cycles across the middle of a golden run.
pub fn default_sample_cycles(golden: &GoldenRun, count: usize) -> Vec<u64> {
    let lo = golden.cycles / 5;
    let hi = golden.cycles * 4 / 5;
    (0..count)
        .map(|i| lo + (hi - lo) * i as u64 / count.max(1) as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlmc_soc::workloads;

    fn golden() -> GoldenRun {
        let w = workloads::synthetic_precharacterization();
        GoldenRun::record(&w.program, 20_000, 64)
    }

    #[test]
    fn pipe_registers_are_computation_type() {
        let g = golden();
        let chars = RegisterCharacterization::measure(&g, &default_sample_cycles(&g, 4));
        // Pipeline registers are overwritten every cycle: tiny lifetime.
        for bit in [MpuBit::PipeAddr(3), MpuBit::PipeValid, MpuBit::PipeUser] {
            let c = chars.bit(bit);
            assert!(c.lifetime <= 5, "{bit:?} lifetime {}", c.lifetime);
            assert_eq!(chars.kind(bit), RegisterKind::Computation, "{bit:?}");
        }
    }

    #[test]
    fn unused_config_registers_are_memory_type() {
        let g = golden();
        let chars = RegisterCharacterization::measure(&g, &default_sample_cycles(&g, 4));
        // Region 2 is never configured or matched: flips persist silently.
        for bit in [MpuBit::Base(2, 7), MpuBit::Limit(2, 3), MpuBit::Perms(2, 0)] {
            let c = chars.bit(bit);
            assert_eq!(c.lifetime, LIFETIME_CAP, "{bit:?}");
            assert_eq!(c.contamination, 0, "{bit:?}");
            assert_eq!(chars.kind(bit), RegisterKind::Memory, "{bit:?}");
        }
    }

    #[test]
    fn a_majority_of_registers_are_memory_type() {
        // The paper's Figure 4: "more than half of the total registers have
        // long lifetime and 0 contamination number".
        let g = golden();
        let chars = RegisterCharacterization::measure(&g, &default_sample_cycles(&g, 4));
        let frac = chars.memory_fraction();
        assert!(frac > 0.5, "memory-type fraction {frac}");
    }

    #[test]
    fn contaminating_config_bits_are_detected() {
        let g = golden();
        let chars = RegisterCharacterization::measure(&g, &default_sample_cycles(&g, 4));
        // Flipping limit bit 14 of region 0 (0x5fff -> 0x1fff) makes the
        // synthetic sweep's legal accesses violate, which shows up in the
        // violation/sticky registers: contamination > 0 on some sample.
        let c = chars.bit(MpuBit::Limit(0, 14));
        assert!(
            c.samples.iter().any(|&(_, contam)| contam > 0),
            "exercised limit bit should contaminate: {:?}",
            c.samples
        );
    }

    #[test]
    fn lifetimes_are_capped() {
        let g = golden();
        let chars = RegisterCharacterization::measure(&g, &[g.cycles / 2]);
        for (bit, c) in chars.iter() {
            assert!(c.lifetime <= LIFETIME_CAP, "{bit:?}");
            for &(l, _) in &c.samples {
                assert!(l >= 1, "{bit:?} lifetime 0 impossible");
            }
        }
    }

    #[test]
    fn default_sample_cycles_are_in_range() {
        let g = golden();
        let cycles = default_sample_cycles(&g, 6);
        assert_eq!(cycles.len(), 6);
        for &c in &cycles {
            assert!(c > 0 && c < g.cycles);
        }
    }
}
