//! `xlmc` — Cross-level Monte Carlo framework for system vulnerability
//! evaluation against fault attack.
//!
//! A reproduction of Li, Lai, Chandra & Pan (DAC 2017). The crate estimates
//! the **System Security Factor** — `SSF = E_{T,P}[E]`, the probability
//! that a fault attack with random timing distance `T` and technique
//! parameters `P` creates the illegal state transition that defeats a
//! security mechanism — on a gate-accurate model of the system under
//! attack.
//!
//! # Pipeline
//!
//! 1. [`SystemModel`] — the elaborated, placed MPU netlist with its cached
//!    simulators (from [`xlmc_soc`] / [`xlmc_gatesim`]).
//! 2. [`Evaluation`] — the benchmark's recorded golden run and target cycle.
//! 3. [`Precharacterization`] — the paper's three preparation steps:
//!    responding-signal cones ([`space`]), bit-flip correlation
//!    ([`correlation`]) and register lifetime/contamination classification
//!    ([`lifetime`]).
//! 4. [`sampling`] — the attacker distribution `f_{T,P}` and the
//!    random / fanin-cone / importance sampling strategies.
//! 5. [`flow`] — one attack run end to end: gate-level injection,
//!    cross-level error write-back, analytical evaluation
//!    ([`analytic`]) or RTL resume.
//! 6. [`estimator`] — the Monte Carlo campaign with convergence statistics
//!    and per-register SSF attribution; [`harden`] — the countermeasure
//!    model built on that attribution.
//!
//! # Example
//!
//! ```no_run
//! use xlmc::estimator::run_campaign;
//! use xlmc::flow::FaultRunner;
//! use xlmc::sampling::{baseline_distribution, ExperimentConfig, ImportanceSampling};
//! use xlmc::{Evaluation, Precharacterization, SystemModel};
//! use xlmc_soc::workloads;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = SystemModel::with_defaults()?;
//! let eval = Evaluation::new(workloads::illegal_write())?;
//! let cfg = ExperimentConfig::default();
//! let prechar = Precharacterization::run(&model, cfg.t_max, cfg.max_radius());
//!
//! let f = baseline_distribution(&model, &cfg);
//! let strategy = ImportanceSampling::new(
//!     f, &model, &prechar, cfg.alpha, cfg.beta, cfg.radius_options.clone(),
//! );
//! let runner = FaultRunner {
//!     model: &model,
//!     eval: &eval,
//!     prechar: &prechar,
//!     hardening: None,
//!     multi_fault: None,
//! };
//! let result = run_campaign(&runner, &strategy, 2_000, 42);
//! println!("SSF = {:.5} (variance {:.3e})", result.ssf, result.sample_variance);
//! # Ok(())
//! # }
//! ```
//!
//! See the repository's `README.md` for the architecture overview,
//! `DESIGN.md` for the substitution and refinement notes, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub mod analytic;
mod batch;
pub mod correlation;
pub mod estimator;
pub mod fastforward;
pub mod flow;
pub mod harden;
pub mod json;
pub mod lifetime;
pub mod metrics;
pub mod model;
pub mod multilevel;
pub mod precharacterize;
pub mod rng;
pub mod sampling;
pub mod space;
pub mod stats;
pub mod telemetry;
pub mod trace;

pub use model::{EvalError, Evaluation, SystemModel};
pub use precharacterize::Precharacterization;
