//! The memory protection unit: functional (RTL-level) model.
//!
//! The MPU is the security-critical module of the evaluated policy (paper
//! Figure 1): every data access from the core and the DMA peripheral is
//! checked against a set of configured regions; user-mode accesses that no
//! region allows raise the `access_violation` responding signal, which the
//! core turns into a trap that isolates the offending process.
//!
//! # Microarchitecture
//!
//! The check is a short pipeline, which is what gives the fault attack its
//! temporal structure:
//!
//! * end of cycle `c`:   the request issued in `c` is captured into the
//!   *pipeline registers* (`pipe_*`),
//! * during cycle `c+1`: the pipeline registers are compared against the
//!   *configuration registers* combinationally (`viol_comb`),
//! * end of cycle `c+1`: `viol_comb` is captured into the `violation`
//!   output register (the responding signal), and the sticky status
//!   registers record the offending request,
//! * during cycle `c+2`: the access **resolves** — the SoC commits the
//!   memory effect only if the registered `violation` is clear, and traps
//!   the core when it is set. Every consumer reads the *registered*
//!   signal, which is what makes a latched gate-level fault act on RTL
//!   exactly like the corresponding architectural bit flip.
//!
//! Configuration registers are *memory-type* in the paper's classification
//! (bit errors persist indefinitely and contaminate nothing); the pipeline
//! and violation registers are *computation-type* (overwritten every cycle).
//!
//! This functional model is kept cycle-exact with the gate-level
//! elaboration in [`crate::mpu_synth`]; an equivalence test cross-checks
//! the two on random stimulus.

use serde::{Deserialize, Serialize};

/// Number of protection regions.
pub const NUM_REGIONS: usize = 4;
/// Width of the checked address in bits.
pub const ADDR_BITS: usize = 16;
/// Configuration-word index of the global enable bit (see [`CfgWrite`]).
pub const CFG_ENABLE_INDEX: u8 = (NUM_REGIONS * 3) as u8;

/// Kind of a memory access presented to the MPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

impl AccessKind {
    /// 2-bit hardware encoding.
    pub fn code(self) -> u8 {
        match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::Exec => 2,
        }
    }

    /// Decode the 2-bit encoding; code 3 is reserved and decodes to `None`.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            2 => AccessKind::Exec,
            _ => return None,
        })
    }
}

/// Permission bits of a region.
pub mod perm {
    /// Read allowed.
    pub const R: u8 = 1 << 0;
    /// Write allowed.
    pub const W: u8 = 1 << 1;
    /// Execute allowed.
    pub const X: u8 = 1 << 2;
    /// Region applies to user-mode masters.
    pub const USER: u8 = 1 << 3;
    /// All four bits.
    pub const MASK: u8 = 0xf;
}

/// One protection region: an inclusive address range plus permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MpuRegion {
    /// Inclusive lower bound.
    pub base: u16,
    /// Inclusive upper bound.
    pub limit: u16,
    /// Permission bits (see [`perm`]).
    pub perms: u8,
}

impl MpuRegion {
    /// Whether this region allows a user-mode access of `kind` at `addr`.
    pub fn allows(&self, addr: u16, kind: AccessKind) -> bool {
        if self.perms & perm::USER == 0 {
            return false;
        }
        if addr < self.base || addr > self.limit {
            return false;
        }
        let needed = match kind {
            AccessKind::Read => perm::R,
            AccessKind::Write => perm::W,
            AccessKind::Exec => perm::X,
        };
        self.perms & needed != 0
    }
}

/// The MPU configuration: global enable plus [`NUM_REGIONS`] regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MpuConfig {
    /// Global enable; a disabled MPU allows everything.
    pub enable: bool,
    /// The protection regions.
    pub regions: [MpuRegion; NUM_REGIONS],
}

impl MpuConfig {
    /// The pure protection predicate: does this configuration allow a
    /// (`user`-mode) access of `kind` at `addr`?
    ///
    /// Privileged accesses and accesses under a disabled MPU are always
    /// allowed. This is the function the analytical memory-type evaluation
    /// of the cross-level flow queries directly.
    pub fn allows(&self, addr: u16, kind: AccessKind, user: bool) -> bool {
        if !self.enable || !user {
            return true;
        }
        self.regions.iter().any(|r| r.allows(addr, kind))
    }
}

/// A memory access request presented to the MPU this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessReq {
    /// The accessed address.
    pub addr: u16,
    /// The access kind.
    pub kind: AccessKind,
    /// Whether the requesting master runs in user mode (the DMA peripheral
    /// is always treated as user mode).
    pub user: bool,
}

/// A configuration write applied at the end of the cycle.
///
/// `index` selects the word: `region * 3 + 0/1/2` for base/limit/perms, or
/// [`CFG_ENABLE_INDEX`] for the enable bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CfgWrite {
    /// Configuration word index.
    pub index: u8,
    /// Data (low bits used for perms/enable).
    pub data: u16,
}

/// Identifies one architectural bit of the MPU's register state.
///
/// Fault injection flips these bits; the gate-level [`crate::mpu_synth`]
/// elaboration names its DFFs so that [`MpuBit::dff_name`] matches exactly,
/// giving the cross-level register map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MpuBit {
    /// Global enable flip-flop.
    Enable,
    /// Region base register bit `(region, bit)`.
    Base(u8, u8),
    /// Region limit register bit `(region, bit)`.
    Limit(u8, u8),
    /// Region permission register bit `(region, bit)`.
    Perms(u8, u8),
    /// Pipeline address register bit.
    PipeAddr(u8),
    /// Pipeline kind register bit (2 bits).
    PipeKind(u8),
    /// Pipeline user-mode flag.
    PipeUser,
    /// Pipeline request-valid flag.
    PipeValid,
    /// The registered `access_violation` responding signal.
    Violation,
    /// Sticky violation flag.
    StickyViol,
    /// Sticky captured violating address bit.
    StickyAddr(u8),
    /// Sticky captured violating kind bit.
    StickyKind(u8),
}

impl MpuBit {
    /// Every architectural bit, in a fixed canonical order.
    pub fn all() -> Vec<MpuBit> {
        let mut bits = Vec::new();
        bits.push(MpuBit::Enable);
        for r in 0..NUM_REGIONS as u8 {
            for b in 0..ADDR_BITS as u8 {
                bits.push(MpuBit::Base(r, b));
            }
            for b in 0..ADDR_BITS as u8 {
                bits.push(MpuBit::Limit(r, b));
            }
            for b in 0..4 {
                bits.push(MpuBit::Perms(r, b));
            }
        }
        for b in 0..ADDR_BITS as u8 {
            bits.push(MpuBit::PipeAddr(b));
        }
        bits.push(MpuBit::PipeKind(0));
        bits.push(MpuBit::PipeKind(1));
        bits.push(MpuBit::PipeUser);
        bits.push(MpuBit::PipeValid);
        bits.push(MpuBit::Violation);
        bits.push(MpuBit::StickyViol);
        for b in 0..ADDR_BITS as u8 {
            bits.push(MpuBit::StickyAddr(b));
        }
        bits.push(MpuBit::StickyKind(0));
        bits.push(MpuBit::StickyKind(1));
        bits
    }

    /// Whether this bit belongs to the (memory-type) configuration state.
    pub fn is_config(self) -> bool {
        matches!(
            self,
            MpuBit::Enable | MpuBit::Base(_, _) | MpuBit::Limit(_, _) | MpuBit::Perms(_, _)
        )
    }

    /// Whether this bit belongs to the sticky status state.
    pub fn is_sticky(self) -> bool {
        matches!(
            self,
            MpuBit::StickyViol | MpuBit::StickyAddr(_) | MpuBit::StickyKind(_)
        )
    }

    /// The DFF instance name used by the gate-level elaboration.
    pub fn dff_name(self) -> String {
        match self {
            MpuBit::Enable => "cfg_enable[0]".to_owned(),
            MpuBit::Base(r, b) => format!("cfg_base{r}[{b}]"),
            MpuBit::Limit(r, b) => format!("cfg_limit{r}[{b}]"),
            MpuBit::Perms(r, b) => format!("cfg_perms{r}[{b}]"),
            MpuBit::PipeAddr(b) => format!("pipe_addr[{b}]"),
            MpuBit::PipeKind(b) => format!("pipe_kind[{b}]"),
            MpuBit::PipeUser => "pipe_user".to_owned(),
            MpuBit::PipeValid => "pipe_valid".to_owned(),
            MpuBit::Violation => "access_violation_q".to_owned(),
            MpuBit::StickyViol => "sticky_viol".to_owned(),
            MpuBit::StickyAddr(b) => format!("sticky_addr[{b}]"),
            MpuBit::StickyKind(b) => format!("sticky_kind[{b}]"),
        }
    }
}

/// The full register state of the MPU (one instance per SoC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MpuState {
    /// Configuration registers (memory-type).
    pub config: MpuConfig,
    /// Pipeline: captured request address.
    pub pipe_addr: u16,
    /// Pipeline: captured request kind code.
    pub pipe_kind: u8,
    /// Pipeline: captured user-mode flag.
    pub pipe_user: bool,
    /// Pipeline: captured request-valid flag.
    pub pipe_valid: bool,
    /// The registered responding signal.
    pub violation: bool,
    /// Sticky violation flag (set one cycle after `violation`).
    pub sticky_violation: bool,
    /// Sticky captured violating address.
    pub sticky_addr: u16,
    /// Sticky captured violating kind code.
    pub sticky_kind: u8,
}

impl MpuState {
    /// The combinational violation signal of the current cycle: the
    /// pipelined request checked against the configuration.
    pub fn viol_comb(&self) -> bool {
        if !self.pipe_valid || !self.pipe_user || !self.config.enable {
            return false;
        }
        let Some(kind) = AccessKind::from_code(self.pipe_kind) else {
            // Reserved kind code: no permission bit matches -> violation.
            return true;
        };
        !self
            .config
            .regions
            .iter()
            .any(|r| r.allows(self.pipe_addr, kind))
    }

    /// Advance one clock cycle: latch the violation, update sticky status,
    /// apply an optional configuration write, and capture the next request
    /// into the pipeline registers.
    pub fn step(&mut self, req: Option<AccessReq>, cfg_write: Option<CfgWrite>) {
        let viol = self.viol_comb();
        if viol {
            self.sticky_addr = self.pipe_addr;
            self.sticky_kind = self.pipe_kind;
        }
        // Matches the netlist: sticky_viol.D = sticky_viol | violation_q.
        self.sticky_violation = self.sticky_violation || self.violation;
        self.violation = viol;
        if let Some(w) = cfg_write {
            self.apply_cfg_write(w);
        }
        match req {
            Some(r) => {
                self.pipe_addr = r.addr;
                self.pipe_kind = r.kind.code();
                self.pipe_user = r.user;
                self.pipe_valid = true;
            }
            None => {
                self.pipe_addr = 0;
                self.pipe_kind = 0;
                self.pipe_user = false;
                self.pipe_valid = false;
            }
        }
    }

    fn apply_cfg_write(&mut self, w: CfgWrite) {
        if w.index == CFG_ENABLE_INDEX {
            self.config.enable = w.data & 1 == 1;
            return;
        }
        let region = (w.index / 3) as usize;
        if region >= NUM_REGIONS {
            return;
        }
        match w.index % 3 {
            0 => self.config.regions[region].base = w.data,
            1 => self.config.regions[region].limit = w.data,
            _ => self.config.regions[region].perms = (w.data & 0xf) as u8,
        }
    }

    /// Read a configuration word by [`CfgWrite`] index (bus reads).
    pub fn cfg_read(&self, index: u8) -> u16 {
        if index == CFG_ENABLE_INDEX {
            return u16::from(self.config.enable);
        }
        let region = (index / 3) as usize;
        if region >= NUM_REGIONS {
            return 0;
        }
        match index % 3 {
            0 => self.config.regions[region].base,
            1 => self.config.regions[region].limit,
            _ => u16::from(self.config.regions[region].perms),
        }
    }

    /// Read one architectural bit.
    pub fn bit(&self, bit: MpuBit) -> bool {
        match bit {
            MpuBit::Enable => self.config.enable,
            MpuBit::Base(r, b) => self.config.regions[r as usize].base >> b & 1 == 1,
            MpuBit::Limit(r, b) => self.config.regions[r as usize].limit >> b & 1 == 1,
            MpuBit::Perms(r, b) => self.config.regions[r as usize].perms >> b & 1 == 1,
            MpuBit::PipeAddr(b) => self.pipe_addr >> b & 1 == 1,
            MpuBit::PipeKind(b) => self.pipe_kind >> b & 1 == 1,
            MpuBit::PipeUser => self.pipe_user,
            MpuBit::PipeValid => self.pipe_valid,
            MpuBit::Violation => self.violation,
            MpuBit::StickyViol => self.sticky_violation,
            MpuBit::StickyAddr(b) => self.sticky_addr >> b & 1 == 1,
            MpuBit::StickyKind(b) => self.sticky_kind >> b & 1 == 1,
        }
    }

    /// Write one architectural bit.
    pub fn set_bit(&mut self, bit: MpuBit, v: bool) {
        fn set16(word: &mut u16, b: u8, v: bool) {
            if v {
                *word |= 1 << b;
            } else {
                *word &= !(1 << b);
            }
        }
        fn set8(word: &mut u8, b: u8, v: bool) {
            if v {
                *word |= 1 << b;
            } else {
                *word &= !(1 << b);
            }
        }
        match bit {
            MpuBit::Enable => self.config.enable = v,
            MpuBit::Base(r, b) => set16(&mut self.config.regions[r as usize].base, b, v),
            MpuBit::Limit(r, b) => set16(&mut self.config.regions[r as usize].limit, b, v),
            MpuBit::Perms(r, b) => set8(&mut self.config.regions[r as usize].perms, b, v),
            MpuBit::PipeAddr(b) => set16(&mut self.pipe_addr, b, v),
            MpuBit::PipeKind(b) => set8(&mut self.pipe_kind, b, v),
            MpuBit::PipeUser => self.pipe_user = v,
            MpuBit::PipeValid => self.pipe_valid = v,
            MpuBit::Violation => self.violation = v,
            MpuBit::StickyViol => self.sticky_violation = v,
            MpuBit::StickyAddr(b) => set16(&mut self.sticky_addr, b, v),
            MpuBit::StickyKind(b) => set8(&mut self.sticky_kind, b, v),
        }
    }

    /// Flip one architectural bit (fault injection).
    pub fn toggle_bit(&mut self, bit: MpuBit) {
        let v = self.bit(bit);
        self.set_bit(bit, !v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_config() -> MpuConfig {
        MpuConfig {
            enable: true,
            regions: [
                MpuRegion {
                    base: 0x0000,
                    limit: 0x5fff,
                    perms: perm::R | perm::W | perm::X | perm::USER,
                },
                MpuRegion::default(),
                MpuRegion::default(),
                MpuRegion::default(),
            ],
        }
    }

    #[test]
    fn region_bounds_are_inclusive() {
        let r = MpuRegion {
            base: 0x100,
            limit: 0x1ff,
            perms: perm::R | perm::USER,
        };
        assert!(r.allows(0x100, AccessKind::Read));
        assert!(r.allows(0x1ff, AccessKind::Read));
        assert!(!r.allows(0xff, AccessKind::Read));
        assert!(!r.allows(0x200, AccessKind::Read));
    }

    #[test]
    fn permission_bits_gate_kinds() {
        let r = MpuRegion {
            base: 0,
            limit: 0xffff,
            perms: perm::R | perm::USER,
        };
        assert!(r.allows(5, AccessKind::Read));
        assert!(!r.allows(5, AccessKind::Write));
        assert!(!r.allows(5, AccessKind::Exec));
    }

    #[test]
    fn non_user_region_never_matches_user_access() {
        let r = MpuRegion {
            base: 0,
            limit: 0xffff,
            perms: perm::R | perm::W | perm::X,
        };
        assert!(!r.allows(5, AccessKind::Read));
    }

    #[test]
    fn privileged_and_disabled_always_allowed() {
        let mut cfg = open_config();
        assert!(cfg.allows(0x9000, AccessKind::Write, false));
        cfg.enable = false;
        assert!(cfg.allows(0x9000, AccessKind::Write, true));
    }

    #[test]
    fn user_access_outside_regions_is_denied() {
        let cfg = open_config();
        assert!(cfg.allows(0x1000, AccessKind::Write, true));
        assert!(!cfg.allows(0x7000, AccessKind::Write, true));
    }

    #[test]
    fn pipeline_delays_violation_by_one_cycle() {
        let mut mpu = MpuState {
            config: open_config(),
            ..Default::default()
        };
        // Cycle 0: illegal request issued.
        mpu.step(
            Some(AccessReq {
                addr: 0x7000,
                kind: AccessKind::Write,
                user: true,
            }),
            None,
        );
        assert!(!mpu.violation, "not yet latched");
        assert!(mpu.viol_comb(), "combinational check fires in cycle 1");
        // Cycle 1: no new request; violation latches at the end.
        mpu.step(None, None);
        assert!(mpu.violation);
        assert!(!mpu.sticky_violation, "sticky lags one more cycle");
        assert_eq!(mpu.sticky_addr, 0x7000);
        assert_eq!(mpu.sticky_kind, AccessKind::Write.code());
        mpu.step(None, None);
        assert!(mpu.sticky_violation);
        assert!(!mpu.violation, "violation register clears");
    }

    #[test]
    fn legal_request_raises_nothing() {
        let mut mpu = MpuState {
            config: open_config(),
            ..Default::default()
        };
        mpu.step(
            Some(AccessReq {
                addr: 0x1000,
                kind: AccessKind::Read,
                user: true,
            }),
            None,
        );
        assert!(!mpu.viol_comb());
        mpu.step(None, None);
        assert!(!mpu.violation);
    }

    #[test]
    fn cfg_write_applies_next_cycle() {
        let mut mpu = MpuState::default();
        mpu.step(
            None,
            Some(CfgWrite {
                index: CFG_ENABLE_INDEX,
                data: 1,
            }),
        );
        assert!(mpu.config.enable);
        mpu.step(
            None,
            Some(CfgWrite {
                index: 0,
                data: 0x1234,
            }),
        );
        assert_eq!(mpu.config.regions[0].base, 0x1234);
        mpu.step(
            None,
            Some(CfgWrite {
                index: 1,
                data: 0x2222,
            }),
        );
        assert_eq!(mpu.config.regions[0].limit, 0x2222);
        mpu.step(
            None,
            Some(CfgWrite {
                index: 2,
                data: 0xffff,
            }),
        );
        assert_eq!(mpu.config.regions[0].perms, 0xf, "perms masked to 4 bits");
        mpu.step(
            None,
            Some(CfgWrite {
                index: 5,
                data: 0x9,
            }),
        );
        assert_eq!(mpu.config.regions[1].perms, 0x9);
    }

    #[test]
    fn cfg_read_matches_writes() {
        let mut mpu = MpuState::default();
        for (index, data) in [(0u8, 0x1111u16), (1, 0x2222), (2, 0xf), (12, 1)] {
            mpu.apply_cfg_write(CfgWrite { index, data });
        }
        assert_eq!(mpu.cfg_read(0), 0x1111);
        assert_eq!(mpu.cfg_read(1), 0x2222);
        assert_eq!(mpu.cfg_read(2), 0xf);
        assert_eq!(mpu.cfg_read(CFG_ENABLE_INDEX), 1);
        assert_eq!(mpu.cfg_read(50), 0);
    }

    #[test]
    fn bit_access_roundtrips_every_bit() {
        let mut mpu = MpuState::default();
        for bit in MpuBit::all() {
            assert!(!mpu.bit(bit), "{bit:?} should start clear");
            mpu.set_bit(bit, true);
            assert!(mpu.bit(bit), "{bit:?} set failed");
            mpu.toggle_bit(bit);
            assert!(!mpu.bit(bit), "{bit:?} toggle failed");
        }
    }

    #[test]
    fn bit_count_matches_architecture() {
        // enable + 4 regions * (16 + 16 + 4) + pipe (16+2+1+1) + violation
        // + sticky (1 + 16 + 2)
        let expect = 1 + NUM_REGIONS * 36 + 20 + 1 + 19;
        assert_eq!(MpuBit::all().len(), expect);
    }

    #[test]
    fn config_bits_are_flagged() {
        assert!(MpuBit::Enable.is_config());
        assert!(MpuBit::Base(3, 15).is_config());
        assert!(!MpuBit::PipeAddr(0).is_config());
        assert!(!MpuBit::Violation.is_config());
        assert!(MpuBit::StickyViol.is_sticky());
        assert!(!MpuBit::Enable.is_sticky());
    }

    #[test]
    fn flipping_a_limit_bit_opens_a_hole() {
        // The canonical config-register attack: extend region 0 to cover the
        // protected address by flipping a high limit bit.
        let mut mpu = MpuState {
            config: open_config(),
            ..Default::default()
        };
        assert!(!mpu.config.allows(0x7000, AccessKind::Write, true));
        // limit 0x5fff -> flip bit 13 -> 0x7fff
        mpu.toggle_bit(MpuBit::Limit(0, 13));
        assert!(mpu.config.allows(0x7000, AccessKind::Write, true));
    }

    #[test]
    fn reserved_kind_code_violates() {
        let mut mpu = MpuState {
            config: open_config(),
            ..Default::default()
        };
        mpu.pipe_valid = true;
        mpu.pipe_user = true;
        mpu.pipe_addr = 0x1000;
        mpu.pipe_kind = 3;
        assert!(mpu.viol_comb());
    }

    #[test]
    fn dff_names_are_unique() {
        let names: std::collections::HashSet<String> =
            MpuBit::all().iter().map(|b| b.dff_name()).collect();
        assert_eq!(names.len(), MpuBit::all().len());
    }
}
