//! The processor substrate of the `xlmc` framework: a from-scratch
//! microcontroller SoC with both RTL-level and gate-level views of its
//! security-critical module.
//!
//! The DAC 2017 paper evaluates its cross-level Monte Carlo flow on a
//! commercial processor whose MPU enforces a memory-access policy. This
//! crate is the open substitute (see DESIGN.md for the substitution
//! argument): a 32-bit core with privilege modes and traps ([`core`]), a
//! bus shared with a DMA peripheral ([`dma`]), and a multi-region MPU that
//! checks every data access — modeled twice, functionally ([`mpu`]) and as
//! an elaborated gate netlist ([`mpu_synth`]), kept provably consistent by
//! an equivalence test.
//!
//! * [`isa`] / [`asm`] — the instruction set and a small assembler,
//! * [`core`] — the CPU core,
//! * [`mpu`] — the functional MPU (configuration, pipeline, responding
//!   signal, sticky status) with bit-granular state access for fault
//!   injection,
//! * [`mpu_synth`] — the gate-level elaboration plus the DFF ↔ architectural
//!   bit map (the cross-level register map),
//! * [`dma`] — the DMA bus master,
//! * [`soc`] — the composed system with checkpoint/restore,
//! * [`golden`] — golden-run recording (checkpoints, MPU state and stimulus
//!   traces, access trace),
//! * [`workloads`] — the illegal-write / illegal-read attack benchmarks and
//!   the synthetic pre-characterization stimulus.
//!
//! # Example
//!
//! Run the illegal-write benchmark and observe the security mechanism catch
//! it:
//!
//! ```
//! use xlmc_soc::golden::GoldenRun;
//! use xlmc_soc::workloads;
//!
//! let w = workloads::illegal_write();
//! let run = GoldenRun::record(&w.program, 5_000, 32);
//! assert!(run.first_violation_cycle().is_some());
//! assert!(!w.goal.succeeded(&run.final_soc));
//! ```

pub mod asm;
pub mod core;
pub mod dma;
pub mod golden;
pub mod isa;
pub mod mpu;
pub mod mpu_synth;
pub mod soc;
pub mod workloads;

pub use golden::GoldenRun;
pub use mpu::{AccessKind, AccessReq, CfgWrite, MpuBit, MpuConfig, MpuState};
pub use mpu_synth::MpuNetlist;
pub use soc::{AccessRecord, Master, Soc, StepEvents};
pub use workloads::{AttackGoal, Workload};
