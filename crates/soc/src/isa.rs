//! Instruction set of the `xlmc` microcontroller core.
//!
//! A deliberately small 32-bit RISC ISA: 16 general registers (`r0` is
//! hardwired to zero), fixed 32-bit instruction words, 18-bit signed
//! immediates. It exists to drive realistic workloads through the memory
//! system so the MPU sees genuine traffic; it is not meant to be a complete
//! application ISA.
//!
//! # Encoding
//!
//! ```text
//! [31:26] opcode
//! [25:22] rd   (or rs1 for branches/stores)
//! [21:18] rs1  (or rs2 for branches/stores)
//! [17:0]  imm18 (sign-extended) -- R-type ops use [17:14] as rs2
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// A general-purpose register index (`r0`..`r15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The always-zero register.
    pub const ZERO: Reg = Reg(0);

    /// Index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Control and status registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Csr {
    /// Machine status (bit 0: privileged mode).
    Status,
    /// Exception PC: return address for `Mret`.
    Epc,
    /// Trap cause (see [`crate::core::TrapCause`]).
    Cause,
    /// Trap vector: the handler address.
    Tvec,
    /// Security response flag: set by the handler when it isolates the
    /// offending process. The attack-outcome checks read this.
    Isolated,
    /// Scratch register for handler use.
    Scratch,
}

impl Csr {
    /// Numeric CSR id used in the encoding.
    pub fn id(self) -> u8 {
        match self {
            Csr::Status => 0,
            Csr::Epc => 1,
            Csr::Cause => 2,
            Csr::Tvec => 3,
            Csr::Isolated => 4,
            Csr::Scratch => 5,
        }
    }

    /// Decode a CSR id.
    pub fn from_id(id: u8) -> Option<Csr> {
        Some(match id {
            0 => Csr::Status,
            1 => Csr::Epc,
            2 => Csr::Cause,
            3 => Csr::Tvec,
            4 => Csr::Isolated,
            5 => Csr::Scratch,
            _ => return None,
        })
    }
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `rd = rs1 + rs2`
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2`
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 31)`
    Sll(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 31)` (logical)
    Srl(Reg, Reg, Reg),
    /// `rd = (rs1 < rs2) ? 1 : 0` (unsigned)
    Sltu(Reg, Reg, Reg),
    /// `rd = rs1 + imm`
    Addi(Reg, Reg, i32),
    /// `rd = rs1 & imm`
    Andi(Reg, Reg, i32),
    /// `rd = rs1 | imm`
    Ori(Reg, Reg, i32),
    /// `rd = rs1 ^ imm`
    Xori(Reg, Reg, i32),
    /// `rd = imm` (load immediate; sign-extended 18-bit)
    Li(Reg, i32),
    /// `rd = mem[rs1 + imm]` (word)
    Lw(Reg, Reg, i32),
    /// `mem[rs1 + imm] = rs2` (word); fields `(rs2, rs1, imm)`
    Sw(Reg, Reg, i32),
    /// Branch if equal: `(rs1, rs2, byte_offset)`
    Beq(Reg, Reg, i32),
    /// Branch if not equal.
    Bne(Reg, Reg, i32),
    /// Branch if unsigned less-than.
    Bltu(Reg, Reg, i32),
    /// `rd = pc + 4; pc += imm`
    Jal(Reg, i32),
    /// `rd = pc + 4; pc = rs1 + imm`
    Jalr(Reg, Reg, i32),
    /// Read CSR into `rd`, then write `rs1` into the CSR: `(rd, csr, rs1)`.
    Csrrw(Reg, Csr, Reg),
    /// Environment call: trap to the handler with [`Csr::Cause`] = ecall.
    Ecall,
    /// Return from trap: clears privilege, `pc = EPC`.
    Mret,
    /// Stop the core.
    Halt,
    /// No operation.
    Nop,
}

const OP_ADD: u32 = 1;
const OP_SUB: u32 = 2;
const OP_AND: u32 = 3;
const OP_OR: u32 = 4;
const OP_XOR: u32 = 5;
const OP_SLL: u32 = 6;
const OP_SRL: u32 = 7;
const OP_SLTU: u32 = 8;
const OP_ADDI: u32 = 9;
const OP_ANDI: u32 = 10;
const OP_ORI: u32 = 11;
const OP_XORI: u32 = 12;
const OP_LI: u32 = 13;
const OP_LW: u32 = 14;
const OP_SW: u32 = 15;
const OP_BEQ: u32 = 16;
const OP_BNE: u32 = 17;
const OP_BLTU: u32 = 18;
const OP_JAL: u32 = 19;
const OP_JALR: u32 = 20;
const OP_CSRRW: u32 = 21;
const OP_ECALL: u32 = 22;
const OP_MRET: u32 = 23;
const OP_HALT: u32 = 24;
const OP_NOP: u32 = 0;

const IMM_BITS: u32 = 18;
const IMM_MASK: u32 = (1 << IMM_BITS) - 1;

/// Errors from instruction decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field is not a known instruction.
    UnknownOpcode(u32),
    /// The CSR id field does not name a CSR.
    UnknownCsr(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op}"),
            DecodeError::UnknownCsr(id) => write!(f, "unknown csr id {id}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn sext18(raw: u32) -> i32 {
    let v = raw & IMM_MASK;
    if v & (1 << (IMM_BITS - 1)) != 0 {
        (v | !IMM_MASK) as i32
    } else {
        v as i32
    }
}

/// The valid range of 18-bit signed immediates.
pub fn imm_in_range(imm: i32) -> bool {
    (-(1 << (IMM_BITS - 1))..(1 << (IMM_BITS - 1))).contains(&imm)
}

impl Instr {
    /// Encode to a 32-bit instruction word.
    ///
    /// # Panics
    ///
    /// Panics when an immediate is outside the 18-bit signed range; the
    /// assembler validates immediates before encoding.
    pub fn encode(self) -> u32 {
        fn word(op: u32, a: Reg, b: Reg, imm: i32) -> u32 {
            assert!(imm_in_range(imm), "immediate {imm} out of range");
            op << 26
                | u32::from(a.0 & 0xf) << 22
                | u32::from(b.0 & 0xf) << 18
                | (imm as u32 & IMM_MASK)
        }
        fn rword(op: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
            op << 26
                | u32::from(rd.0 & 0xf) << 22
                | u32::from(rs1.0 & 0xf) << 18
                | u32::from(rs2.0 & 0xf) << 14
        }
        match self {
            Instr::Add(d, a, b) => rword(OP_ADD, d, a, b),
            Instr::Sub(d, a, b) => rword(OP_SUB, d, a, b),
            Instr::And(d, a, b) => rword(OP_AND, d, a, b),
            Instr::Or(d, a, b) => rword(OP_OR, d, a, b),
            Instr::Xor(d, a, b) => rword(OP_XOR, d, a, b),
            Instr::Sll(d, a, b) => rword(OP_SLL, d, a, b),
            Instr::Srl(d, a, b) => rword(OP_SRL, d, a, b),
            Instr::Sltu(d, a, b) => rword(OP_SLTU, d, a, b),
            Instr::Addi(d, a, i) => word(OP_ADDI, d, a, i),
            Instr::Andi(d, a, i) => word(OP_ANDI, d, a, i),
            Instr::Ori(d, a, i) => word(OP_ORI, d, a, i),
            Instr::Xori(d, a, i) => word(OP_XORI, d, a, i),
            Instr::Li(d, i) => word(OP_LI, d, Reg::ZERO, i),
            Instr::Lw(d, a, i) => word(OP_LW, d, a, i),
            Instr::Sw(s, a, i) => word(OP_SW, s, a, i),
            Instr::Beq(a, b, i) => word(OP_BEQ, a, b, i),
            Instr::Bne(a, b, i) => word(OP_BNE, a, b, i),
            Instr::Bltu(a, b, i) => word(OP_BLTU, a, b, i),
            Instr::Jal(d, i) => word(OP_JAL, d, Reg::ZERO, i),
            Instr::Jalr(d, a, i) => word(OP_JALR, d, a, i),
            Instr::Csrrw(d, csr, s) => rword(OP_CSRRW, d, s, Reg(csr.id())),
            Instr::Ecall => OP_ECALL << 26,
            Instr::Mret => OP_MRET << 26,
            Instr::Halt => OP_HALT << 26,
            Instr::Nop => OP_NOP << 26,
        }
    }

    /// Decode a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on unknown opcodes or CSR ids.
    pub fn decode(w: u32) -> Result<Instr, DecodeError> {
        let op = w >> 26;
        let ra = Reg((w >> 22 & 0xf) as u8);
        let rb = Reg((w >> 18 & 0xf) as u8);
        let rc = Reg((w >> 14 & 0xf) as u8);
        let imm = sext18(w);
        Ok(match op {
            OP_ADD => Instr::Add(ra, rb, rc),
            OP_SUB => Instr::Sub(ra, rb, rc),
            OP_AND => Instr::And(ra, rb, rc),
            OP_OR => Instr::Or(ra, rb, rc),
            OP_XOR => Instr::Xor(ra, rb, rc),
            OP_SLL => Instr::Sll(ra, rb, rc),
            OP_SRL => Instr::Srl(ra, rb, rc),
            OP_SLTU => Instr::Sltu(ra, rb, rc),
            OP_ADDI => Instr::Addi(ra, rb, imm),
            OP_ANDI => Instr::Andi(ra, rb, imm),
            OP_ORI => Instr::Ori(ra, rb, imm),
            OP_XORI => Instr::Xori(ra, rb, imm),
            OP_LI => Instr::Li(ra, imm),
            OP_LW => Instr::Lw(ra, rb, imm),
            OP_SW => Instr::Sw(ra, rb, imm),
            OP_BEQ => Instr::Beq(ra, rb, imm),
            OP_BNE => Instr::Bne(ra, rb, imm),
            OP_BLTU => Instr::Bltu(ra, rb, imm),
            OP_JAL => Instr::Jal(ra, imm),
            OP_JALR => Instr::Jalr(ra, rb, imm),
            OP_CSRRW => {
                let csr = Csr::from_id(rc.0).ok_or(DecodeError::UnknownCsr(rc.0))?;
                Instr::Csrrw(ra, csr, rb)
            }
            OP_ECALL => Instr::Ecall,
            OP_MRET => Instr::Mret,
            OP_HALT => Instr::Halt,
            OP_NOP => Instr::Nop,
            other => return Err(DecodeError::UnknownOpcode(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let w = i.encode();
        assert_eq!(Instr::decode(w), Ok(i), "word {w:#010x}");
    }

    #[test]
    fn all_instruction_forms_roundtrip() {
        let r = |i| Reg(i);
        for i in [
            Instr::Add(r(1), r(2), r(3)),
            Instr::Sub(r(15), r(0), r(7)),
            Instr::And(r(4), r(4), r(4)),
            Instr::Or(r(1), r(9), r(10)),
            Instr::Xor(r(2), r(3), r(5)),
            Instr::Sll(r(6), r(7), r(8)),
            Instr::Srl(r(9), r(10), r(11)),
            Instr::Sltu(r(12), r(13), r(14)),
            Instr::Addi(r(1), r(2), -4),
            Instr::Andi(r(1), r(2), 0xff),
            Instr::Ori(r(1), r(2), 0x1ff),
            Instr::Xori(r(1), r(2), 1),
            Instr::Li(r(5), -131072),
            Instr::Li(r(5), 131071),
            Instr::Lw(r(3), r(4), 16),
            Instr::Sw(r(3), r(4), -16),
            Instr::Beq(r(1), r(2), -8),
            Instr::Bne(r(1), r(2), 8),
            Instr::Bltu(r(1), r(2), 100),
            Instr::Jal(r(1), 4096),
            Instr::Jalr(r(1), r(2), 0),
            Instr::Csrrw(r(1), Csr::Tvec, r(2)),
            Instr::Csrrw(r(0), Csr::Isolated, r(3)),
            Instr::Ecall,
            Instr::Mret,
            Instr::Halt,
            Instr::Nop,
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn sign_extension_is_correct() {
        assert_eq!(sext18(0x3ffff), -1);
        assert_eq!(sext18(0x20000), -131072);
        assert_eq!(sext18(0x1ffff), 131071);
        assert_eq!(sext18(0), 0);
    }

    #[test]
    fn imm_range_check() {
        assert!(imm_in_range(0));
        assert!(imm_in_range(131071));
        assert!(imm_in_range(-131072));
        assert!(!imm_in_range(131072));
        assert!(!imm_in_range(-131073));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_rejects_oversized_imm() {
        let _ = Instr::Li(Reg(1), 1 << 20).encode();
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        assert_eq!(Instr::decode(63 << 26), Err(DecodeError::UnknownOpcode(63)));
    }

    #[test]
    fn unknown_csr_is_an_error() {
        // CSRRW with csr field 15.
        let w = OP_CSRRW << 26 | 15 << 14;
        assert_eq!(Instr::decode(w), Err(DecodeError::UnknownCsr(15)));
    }

    #[test]
    fn csr_ids_roundtrip() {
        for csr in [
            Csr::Status,
            Csr::Epc,
            Csr::Cause,
            Csr::Tvec,
            Csr::Isolated,
            Csr::Scratch,
        ] {
            assert_eq!(Csr::from_id(csr.id()), Some(csr));
        }
        assert_eq!(Csr::from_id(9), None);
    }
}
