//! A small two-pass assembler for the `xlmc` ISA.
//!
//! The benchmark workloads (paper §6: "the benchmark we use ... includes
//! illegal memory write and read operations") are written in this assembly
//! dialect and assembled to memory images at build time.
//!
//! # Syntax
//!
//! ```text
//! ; comment            # comment
//! label:
//!     li    r1, 0x8100
//!     addi  r2, r2, -1
//!     lw    r3, 8(r2)
//!     sw    r3, -4(r2)
//!     beq   r1, r2, label
//!     jal   r1, label
//!     csrrw r1, tvec, r2
//!     ecall
//!     .word 0xdeadbeef
//! ```
//!
//! Branch and jump targets may be labels (PC-relative offsets are computed)
//! or literal numeric offsets.

use crate::isa::{imm_in_range, Csr, Instr, Reg};
use std::collections::HashMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// The output of [`assemble`]: a word image plus the resolved label map.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instruction/data words, loaded from address 0.
    pub words: Vec<u32>,
    /// Label name to byte address.
    pub labels: HashMap<String, u32>,
}

impl Program {
    /// The byte address of a label.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Size of the image in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }
}

enum Item {
    Instr { line: usize, text: String },
    Word(u32),
}

fn strip_comment(line: &str) -> &str {
    let end = line.find([';', '#']).unwrap_or(line.len());
    line[..end].trim()
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim();
    let err = || AsmError {
        line,
        message: format!("expected register, got `{t}`"),
    };
    let num = t.strip_prefix('r').ok_or_else(err)?;
    let n: u8 = num.parse().map_err(|_| err())?;
    if n > 15 {
        return Err(err());
    }
    Ok(Reg(n))
}

fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| AsmError {
        line,
        message: format!("expected integer, got `{tok}`"),
    })?;
    Ok(if neg { -v } else { v })
}

fn parse_csr(tok: &str, line: usize) -> Result<Csr, AsmError> {
    match tok.trim().to_ascii_lowercase().as_str() {
        "status" => Ok(Csr::Status),
        "epc" => Ok(Csr::Epc),
        "cause" => Ok(Csr::Cause),
        "tvec" => Ok(Csr::Tvec),
        "isolated" => Ok(Csr::Isolated),
        "scratch" => Ok(Csr::Scratch),
        other => Err(AsmError {
            line,
            message: format!("unknown csr `{other}`"),
        }),
    }
}

/// Parse `imm(reg)` memory operands.
fn parse_mem(tok: &str, line: usize) -> Result<(i64, Reg), AsmError> {
    let t = tok.trim();
    let open = t.find('(').ok_or_else(|| AsmError {
        line,
        message: format!("expected `imm(reg)`, got `{t}`"),
    })?;
    if !t.ends_with(')') {
        return Err(AsmError {
            line,
            message: format!("expected `imm(reg)`, got `{t}`"),
        });
    }
    let imm = if open == 0 {
        0
    } else {
        parse_int(&t[..open], line)?
    };
    let reg = parse_reg(&t[open + 1..t.len() - 1], line)?;
    Ok((imm, reg))
}

fn check_imm(imm: i64, line: usize) -> Result<i32, AsmError> {
    let v = i32::try_from(imm).ok().filter(|&v| imm_in_range(v));
    v.ok_or_else(|| AsmError {
        line,
        message: format!("immediate {imm} out of 18-bit signed range"),
    })
}

/// Resolve a token as either a label (PC-relative offset) or a literal.
fn branch_target(
    tok: &str,
    labels: &HashMap<String, u32>,
    pc: u32,
    line: usize,
) -> Result<i32, AsmError> {
    let t = tok.trim();
    if let Some(&addr) = labels.get(t) {
        return check_imm(i64::from(addr) - i64::from(pc), line);
    }
    check_imm(parse_int(t, line)?, line)
}

/// Assemble a source text into a [`Program`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: bad mnemonics, malformed
/// operands, duplicate or unknown labels, out-of-range immediates.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pass 1: collect labels and items.
    let mut items: Vec<Item> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();
    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        let mut text = strip_comment(raw);
        // Multiple labels may precede an instruction on the same line.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(AsmError {
                    line,
                    message: format!("malformed label `{label}`"),
                });
            }
            let addr = (items.len() * 4) as u32;
            if labels.insert(label.to_owned(), addr).is_some() {
                return Err(AsmError {
                    line,
                    message: format!("duplicate label `{label}`"),
                });
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix(".word") {
            let v = parse_int(rest, line)?;
            items.push(Item::Word(v as u32));
        } else {
            items.push(Item::Instr {
                line,
                text: text.to_owned(),
            });
        }
    }

    // Pass 2: encode.
    let mut words = Vec::with_capacity(items.len());
    for (idx, item) in items.iter().enumerate() {
        let pc = (idx * 4) as u32;
        match item {
            Item::Word(w) => words.push(*w),
            Item::Instr { line, text } => {
                let line = *line;
                let (mnemonic, rest) = text
                    .split_once(char::is_whitespace)
                    .unwrap_or((text.as_str(), ""));
                let ops: Vec<&str> = if rest.trim().is_empty() {
                    Vec::new()
                } else {
                    rest.split(',').map(str::trim).collect()
                };
                let need = |n: usize| -> Result<(), AsmError> {
                    if ops.len() == n {
                        Ok(())
                    } else {
                        Err(AsmError {
                            line,
                            message: format!(
                                "`{mnemonic}` expects {n} operands, got {}",
                                ops.len()
                            ),
                        })
                    }
                };
                let instr = match mnemonic.to_ascii_lowercase().as_str() {
                    m @ ("add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sltu") => {
                        need(3)?;
                        let d = parse_reg(ops[0], line)?;
                        let a = parse_reg(ops[1], line)?;
                        let b = parse_reg(ops[2], line)?;
                        match m {
                            "add" => Instr::Add(d, a, b),
                            "sub" => Instr::Sub(d, a, b),
                            "and" => Instr::And(d, a, b),
                            "or" => Instr::Or(d, a, b),
                            "xor" => Instr::Xor(d, a, b),
                            "sll" => Instr::Sll(d, a, b),
                            "srl" => Instr::Srl(d, a, b),
                            _ => Instr::Sltu(d, a, b),
                        }
                    }
                    m @ ("addi" | "andi" | "ori" | "xori") => {
                        need(3)?;
                        let d = parse_reg(ops[0], line)?;
                        let a = parse_reg(ops[1], line)?;
                        let imm = check_imm(parse_int(ops[2], line)?, line)?;
                        match m {
                            "addi" => Instr::Addi(d, a, imm),
                            "andi" => Instr::Andi(d, a, imm),
                            "ori" => Instr::Ori(d, a, imm),
                            _ => Instr::Xori(d, a, imm),
                        }
                    }
                    "li" => {
                        need(2)?;
                        let d = parse_reg(ops[0], line)?;
                        // A label operand loads its absolute byte address.
                        let imm = if let Some(&addr) = labels.get(ops[1].trim()) {
                            check_imm(i64::from(addr), line)?
                        } else {
                            check_imm(parse_int(ops[1], line)?, line)?
                        };
                        Instr::Li(d, imm)
                    }
                    "lw" => {
                        need(2)?;
                        let d = parse_reg(ops[0], line)?;
                        let (imm, base) = parse_mem(ops[1], line)?;
                        Instr::Lw(d, base, check_imm(imm, line)?)
                    }
                    "sw" => {
                        need(2)?;
                        let s = parse_reg(ops[0], line)?;
                        let (imm, base) = parse_mem(ops[1], line)?;
                        Instr::Sw(s, base, check_imm(imm, line)?)
                    }
                    m @ ("beq" | "bne" | "bltu") => {
                        need(3)?;
                        let a = parse_reg(ops[0], line)?;
                        let b = parse_reg(ops[1], line)?;
                        let off = branch_target(ops[2], &labels, pc, line)?;
                        match m {
                            "beq" => Instr::Beq(a, b, off),
                            "bne" => Instr::Bne(a, b, off),
                            _ => Instr::Bltu(a, b, off),
                        }
                    }
                    "jal" => {
                        need(2)?;
                        let d = parse_reg(ops[0], line)?;
                        let off = branch_target(ops[1], &labels, pc, line)?;
                        Instr::Jal(d, off)
                    }
                    "jalr" => {
                        need(2)?;
                        let d = parse_reg(ops[0], line)?;
                        let (imm, base) = parse_mem(ops[1], line)?;
                        Instr::Jalr(d, base, check_imm(imm, line)?)
                    }
                    "csrrw" => {
                        need(3)?;
                        let d = parse_reg(ops[0], line)?;
                        let csr = parse_csr(ops[1], line)?;
                        let s = parse_reg(ops[2], line)?;
                        Instr::Csrrw(d, csr, s)
                    }
                    "ecall" => {
                        need(0)?;
                        Instr::Ecall
                    }
                    "mret" => {
                        need(0)?;
                        Instr::Mret
                    }
                    "halt" => {
                        need(0)?;
                        Instr::Halt
                    }
                    "nop" => {
                        need(0)?;
                        Instr::Nop
                    }
                    other => {
                        return Err(AsmError {
                            line,
                            message: format!("unknown mnemonic `{other}`"),
                        })
                    }
                };
                words.push(instr.encode());
            }
        }
    }
    Ok(Program { words, labels })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "
            ; setup
            li   r1, 0x40     # hex immediate
            li   r2, 10
        loop:
            addi r2, r2, -1
            bne  r2, r0, loop
            halt
            ",
        )
        .unwrap();
        assert_eq!(p.words.len(), 5);
        assert_eq!(p.label("loop"), Some(8));
        assert_eq!(Instr::decode(p.words[0]).unwrap(), Instr::Li(Reg(1), 0x40));
        // bne at pc=12, target 8 -> offset -4.
        assert_eq!(
            Instr::decode(p.words[3]).unwrap(),
            Instr::Bne(Reg(2), Reg(0), -4)
        );
    }

    #[test]
    fn memory_operands() {
        let p = assemble("lw r1, 8(r2)\nsw r3, -4(r2)\nlw r4, (r5)").unwrap();
        assert_eq!(
            Instr::decode(p.words[0]).unwrap(),
            Instr::Lw(Reg(1), Reg(2), 8)
        );
        assert_eq!(
            Instr::decode(p.words[1]).unwrap(),
            Instr::Sw(Reg(3), Reg(2), -4)
        );
        assert_eq!(
            Instr::decode(p.words[2]).unwrap(),
            Instr::Lw(Reg(4), Reg(5), 0)
        );
    }

    #[test]
    fn csr_and_system_instructions() {
        let p = assemble("csrrw r1, tvec, r2\necall\nmret\nhalt\nnop").unwrap();
        assert_eq!(
            Instr::decode(p.words[0]).unwrap(),
            Instr::Csrrw(Reg(1), Csr::Tvec, Reg(2))
        );
        assert_eq!(Instr::decode(p.words[1]).unwrap(), Instr::Ecall);
        assert_eq!(Instr::decode(p.words[2]).unwrap(), Instr::Mret);
        assert_eq!(Instr::decode(p.words[3]).unwrap(), Instr::Halt);
        assert_eq!(Instr::decode(p.words[4]).unwrap(), Instr::Nop);
    }

    #[test]
    fn word_directive_and_labels() {
        let p = assemble("data: .word 0xdeadbeef\n.word 42").unwrap();
        assert_eq!(p.words, vec![0xdeadbeef, 42]);
        assert_eq!(p.label("data"), Some(0));
        assert_eq!(p.size_bytes(), 8);
    }

    #[test]
    fn forward_references_resolve() {
        let p = assemble("jal r0, end\nnop\nend: halt").unwrap();
        assert_eq!(Instr::decode(p.words[0]).unwrap(), Instr::Jal(Reg(0), 8));
    }

    #[test]
    fn duplicate_label_is_error() {
        let e = assemble("a: nop\na: nop").unwrap_err();
        assert!(e.message.contains("duplicate"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_mnemonic_is_error() {
        let e = assemble("frobnicate r1, r2").unwrap_err();
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn bad_register_is_error() {
        assert!(assemble("add r1, r2, r16").is_err());
        assert!(assemble("add r1, r2, x3").is_err());
    }

    #[test]
    fn oversized_immediate_is_error() {
        let e = assemble("li r1, 0x40000").unwrap_err();
        assert!(e.message.contains("out of"));
    }

    #[test]
    fn wrong_operand_count_is_error() {
        let e = assemble("add r1, r2").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn li_accepts_label_addresses() {
        let p = assemble("nop\nnop\ntarget: halt\nli r1, target").unwrap();
        assert_eq!(Instr::decode(p.words[3]).unwrap(), Instr::Li(Reg(1), 8));
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let p = assemble("start: li r1, 1\njal r0, start").unwrap();
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(Instr::decode(p.words[1]).unwrap(), Instr::Jal(Reg(0), -4));
    }
}
