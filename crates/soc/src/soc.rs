//! The composed SoC: core + MPU + DMA + memory behind one bus.
//!
//! This is the RTL-level simulation substrate of the cross-level flow (the
//! stand-in for the paper's Synopsys VCS runs): a cycle-accurate model of
//! the whole system whose full state is cheap to checkpoint and restore.
//!
//! # Bus and MPU timing
//!
//! One data access can be issued per cycle (the core has priority; the DMA
//! engine uses free cycles). An access issued in cycle `c` flows through a
//! three-stage path:
//!
//! * end of `c`:   captured into the MPU pipeline registers,
//! * during `c+1`: checked combinationally against the configuration,
//! * end of `c+1`: the verdict latches into the `access_violation` register,
//! * during `c+2`: the access **resolves** — it commits only if the
//!   violation register is clear, and the core traps when it is set.
//!
//! Every downstream consumer (commit gating *and* trap) reads the
//! *registered* responding signal. This is what makes the cross-level
//! abstraction exact: a gate-level fault that flips a latched MPU register
//! changes RTL behavior in precisely the same way when the flip is written
//! back into [`MpuState`] and the RTL simulation resumes.
//!
//! Instruction fetches bypass the MPU (see DESIGN.md for this documented
//! simplification).

use crate::core::{Core, CoreAction, TrapCause};
use crate::dma::{Dma, DmaAction};
use crate::mpu::{AccessKind, AccessReq, CfgWrite, MpuState, CFG_ENABLE_INDEX};
use serde::{Deserialize, Serialize};

/// Bytes of RAM (word-granular, starting at address 0).
pub const RAM_BYTES: u32 = 0x8000;
/// Base byte address of the MPU configuration window.
pub const MPU_CFG_BASE: u16 = 0x8100;

/// Which bus master performed an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Master {
    /// The CPU core.
    Core,
    /// The DMA peripheral.
    Dma,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum PendingOp {
    Write(u32),
    ReadToCore,
    ReadToDma,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Pending {
    master: Master,
    req: AccessReq,
    op: PendingOp,
}

/// One resolved (committed or blocked) data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessRecord {
    /// Cycle in which the access resolved.
    pub cycle: u64,
    /// The requesting master.
    pub master: Master,
    /// The request as seen by the MPU.
    pub req: AccessReq,
    /// Whether the MPU allowed it.
    pub allowed: bool,
}

/// What happened during one [`Soc::step`].
#[derive(Debug, Clone, Default)]
pub struct StepEvents {
    /// The request issued this cycle (captured by the MPU at cycle end).
    pub issued: Option<(Master, AccessReq)>,
    /// Configuration write committed this cycle.
    pub cfg_write: Option<CfgWrite>,
    /// Value of the MPU's combinational violation signal this cycle.
    pub viol_comb: bool,
    /// The access resolved this cycle (issued two cycles earlier).
    pub resolved: Option<AccessRecord>,
    /// Whether the core entered the trap handler this cycle.
    pub trapped: bool,
}

/// The full simulated system. `Clone` is the checkpoint mechanism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Soc {
    /// The CPU core.
    pub core: Core,
    /// The MPU register state.
    pub mpu: MpuState,
    /// The DMA engine.
    pub dma: Dma,
    mem: Vec<u32>,
    /// Elapsed cycles since reset.
    pub cycle: u64,
    /// Access issued last cycle, now in the MPU pipeline.
    in_pipe: Option<Pending>,
    /// Access issued two cycles ago, resolving this cycle.
    resolving: Option<Pending>,
    /// Whether the DMA has a request in flight (prevents double-issue).
    dma_outstanding: bool,
}

impl Soc {
    /// A system in reset state with `program` loaded at address 0.
    ///
    /// # Panics
    ///
    /// Panics when the program does not fit in RAM.
    pub fn new(program: &[u32]) -> Self {
        let words = (RAM_BYTES / 4) as usize;
        assert!(program.len() <= words, "program does not fit in RAM");
        let mut mem = vec![0u32; words];
        mem[..program.len()].copy_from_slice(program);
        Self {
            core: Core::new(),
            mpu: MpuState::default(),
            dma: Dma::new(),
            mem,
            cycle: 0,
            in_pipe: None,
            resolving: None,
            dma_outstanding: false,
        }
    }

    /// Whether the core has halted (the SoC freezes then).
    pub fn halted(&self) -> bool {
        self.core.halted
    }

    /// Overwrite this system's state from a checkpoint without reallocating.
    ///
    /// Equivalent to `*self = src.clone()` except that RAM is copied into
    /// the resident buffer — the campaign hot path restores thousands of
    /// checkpoints per worker, so the allocation-free form matters.
    ///
    /// # Panics
    ///
    /// Panics when the two systems have different RAM sizes (they never do:
    /// every `Soc` allocates `RAM_BYTES`).
    pub fn restore_from(&mut self, src: &Soc) {
        self.core = src.core.clone();
        self.mpu = src.mpu;
        self.dma = src.dma;
        self.mem.copy_from_slice(&src.mem);
        self.cycle = src.cycle;
        self.in_pipe = src.in_pipe;
        self.resolving = src.resolving;
        self.dma_outstanding = src.dma_outstanding;
    }

    /// Read a RAM word by byte address (no MPU involvement; test/analysis
    /// access).
    pub fn mem_word(&self, addr: u16) -> u32 {
        let a = u32::from(addr) & !3;
        if a < RAM_BYTES {
            self.mem[(a >> 2) as usize]
        } else {
            0
        }
    }

    /// Write a RAM word by byte address (test/analysis access).
    pub fn set_mem_word(&mut self, addr: u16, value: u32) {
        let a = u32::from(addr) & !3;
        if a < RAM_BYTES {
            self.mem[(a >> 2) as usize] = value;
        }
    }

    fn fetch(&self, pc: u32) -> u32 {
        self.mem[((pc & (RAM_BYTES - 1)) >> 2) as usize]
    }

    fn bus_read(&self, addr: u16) -> u32 {
        let a = addr & !3;
        if u32::from(a) < RAM_BYTES {
            return self.mem[(a >> 2) as usize];
        }
        if let Some(v) = self.dma.reg_read(a) {
            return v;
        }
        if let Some(index) = cfg_index(a) {
            return u32::from(self.mpu.cfg_read(index));
        }
        0
    }

    /// Routes a committed write; returns an MPU configuration write when
    /// the address falls in the (privileged-only) configuration window.
    fn bus_write(&mut self, addr: u16, value: u32, user: bool) -> Option<CfgWrite> {
        let a = addr & !3;
        if u32::from(a) < RAM_BYTES {
            self.mem[(a >> 2) as usize] = value;
            return None;
        }
        if self.dma.reg_write(a, value) {
            return None;
        }
        if let Some(index) = cfg_index(a) {
            // Hardware backstop: configuration accepts privileged writes
            // only, independent of the MPU check outcome.
            if !user {
                return Some(CfgWrite {
                    index,
                    data: (value & 0xffff) as u16,
                });
            }
        }
        None
    }

    /// Advance the system by one clock cycle.
    pub fn step(&mut self) -> StepEvents {
        let mut ev = StepEvents::default();
        if self.core.halted {
            return ev;
        }

        // 1. Resolve the access issued two cycles ago. The MPU's *registered*
        //    violation is its verdict: it gates the commit and raises the
        //    trap, so latched faults act consistently on both.
        let violation = self.mpu.violation;
        ev.viol_comb = self.mpu.viol_comb();
        let mut cfg_write = None;
        if let Some(p) = self.resolving.take() {
            let allowed = !violation;
            ev.resolved = Some(AccessRecord {
                cycle: self.cycle,
                master: p.master,
                req: p.req,
                allowed,
            });
            match p.op {
                PendingOp::Write(v) => {
                    if allowed {
                        cfg_write = self.bus_write(p.req.addr, v, p.req.user);
                    }
                    if p.master == Master::Dma {
                        self.dma.write_done();
                        self.dma_outstanding = false;
                    }
                }
                PendingOp::ReadToCore => {
                    let v = if allowed {
                        self.bus_read(p.req.addr)
                    } else {
                        0
                    };
                    self.core.deliver_load(v);
                }
                PendingOp::ReadToDma => {
                    let v = if allowed {
                        self.bus_read(p.req.addr)
                    } else {
                        0
                    };
                    self.dma.deliver_read(v);
                    self.dma_outstanding = false;
                }
            }
        }

        // 2. The registered responding signal traps the core. Traps are
        //    masked while privileged (the handler runs with violations
        //    disabled, as real trap hardware does) — otherwise a second
        //    in-flight violation would re-enter the handler and clobber EPC.
        if violation && !self.core.privileged {
            self.core.trap(TrapCause::MpuFault, self.core.pc);
            ev.trapped = true;
        }

        // 3. Core executes one instruction (unless it trapped this cycle,
        //    is waiting on a load, or halted).
        let mut new_pending: Option<Pending> = None;
        if !ev.trapped && !self.core.load_pending() && !self.core.halted {
            let word = self.fetch(self.core.pc);
            let user = !self.core.privileged;
            match self.core.execute(word) {
                CoreAction::None => {}
                CoreAction::Read { addr, .. } => {
                    new_pending = Some(Pending {
                        master: Master::Core,
                        req: AccessReq {
                            addr: (addr & 0xffff) as u16,
                            kind: AccessKind::Read,
                            user,
                        },
                        op: PendingOp::ReadToCore,
                    });
                }
                CoreAction::Write { addr, value } => {
                    new_pending = Some(Pending {
                        master: Master::Core,
                        req: AccessReq {
                            addr: (addr & 0xffff) as u16,
                            kind: AccessKind::Write,
                            user,
                        },
                        op: PendingOp::Write(value),
                    });
                }
            }
        }

        // 4. DMA takes the bus when the core left it free and it has no
        //    request already in flight.
        if new_pending.is_none() && !self.dma_outstanding {
            match self.dma.action() {
                DmaAction::Idle => {}
                DmaAction::Read(req) => {
                    new_pending = Some(Pending {
                        master: Master::Dma,
                        req,
                        op: PendingOp::ReadToDma,
                    });
                    self.dma_outstanding = true;
                }
                DmaAction::Write(req, value) => {
                    new_pending = Some(Pending {
                        master: Master::Dma,
                        req,
                        op: PendingOp::Write(value),
                    });
                    self.dma_outstanding = true;
                }
            }
        }

        // 5. End of cycle: the MPU latches the new request, the violation
        //    verdict and any configuration write; the pipeline advances.
        let req = new_pending.as_ref().map(|p| p.req);
        self.mpu.step(req, cfg_write);
        ev.issued = new_pending.as_ref().map(|p| (p.master, p.req));
        ev.cfg_write = cfg_write;
        self.resolving = self.in_pipe.take();
        self.in_pipe = new_pending;
        self.cycle += 1;
        ev
    }

    /// Run until the core halts or `max_cycles` elapse; returns the cycle
    /// count reached.
    pub fn run_until_halt(&mut self, max_cycles: u64) -> u64 {
        while !self.core.halted && self.cycle < max_cycles {
            self.step();
        }
        self.cycle
    }

    /// A cheap fingerprint of the full architectural state **excluding RAM**.
    ///
    /// FNV-1a over every register-like field of the system: the core
    /// (including its load-wait latch), the MPU, the DMA engine (including
    /// its transfer latch), both bus pipeline slots, the DMA-outstanding
    /// flag and the cycle counter. RAM is deliberately left out — hashing
    /// 8 Ki words per cycle would cost more than the simulation step the
    /// fingerprint is meant to short-circuit — so equal fingerprints only
    /// make two systems *candidates* for equality and must be confirmed by
    /// an exact [`PartialEq`] compare (which does include RAM) before
    /// anything is concluded. Used by the campaign's golden-reconvergence
    /// early exit.
    pub fn arch_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |v: u64| h = (h ^ v).wrapping_mul(PRIME);
        self.core.fold_fingerprint(&mut fold);
        let m = &self.mpu;
        fold(u64::from(m.config.enable));
        for r in &m.config.regions {
            fold(u64::from(r.base) | u64::from(r.limit) << 16 | u64::from(r.perms) << 32);
        }
        fold(
            u64::from(m.pipe_addr)
                | u64::from(m.pipe_kind) << 16
                | u64::from(m.pipe_user) << 24
                | u64::from(m.pipe_valid) << 25
                | u64::from(m.violation) << 26
                | u64::from(m.sticky_violation) << 27,
        );
        fold(u64::from(m.sticky_addr) | u64::from(m.sticky_kind) << 16);
        self.dma.fold_fingerprint(&mut fold);
        fold_pending(self.in_pipe, &mut fold);
        fold_pending(self.resolving, &mut fold);
        fold(u64::from(self.dma_outstanding));
        fold(self.cycle);
        h
    }
}

/// Fold one bus pipeline slot into a fingerprint accumulator (two words:
/// tag+request and data, with empty slots distinguishable from any access).
fn fold_pending(p: Option<Pending>, fold: &mut impl FnMut(u64)) {
    let Some(p) = p else {
        fold(0);
        fold(0);
        return;
    };
    let (op, data) = match p.op {
        PendingOp::Write(v) => (1u64, u64::from(v)),
        PendingOp::ReadToCore => (2, 0),
        PendingOp::ReadToDma => (3, 0),
    };
    let master = match p.master {
        Master::Core => 0u64,
        Master::Dma => 1,
    };
    fold(
        op | master << 2
            | u64::from(p.req.addr) << 3
            | u64::from(p.req.kind.code()) << 19
            | u64::from(p.req.user) << 21,
    );
    fold(data | 1 << 32);
}

/// Map a byte address in the MPU configuration window to its word index.
fn cfg_index(addr: u16) -> Option<u8> {
    let a = addr & !3;
    if !(MPU_CFG_BASE..=MPU_CFG_BASE + 4 * u16::from(CFG_ENABLE_INDEX)).contains(&a) {
        return None;
    }
    Some(((a - MPU_CFG_BASE) / 4) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::dma::{DMA_CTRL, DMA_DST, DMA_LEN, DMA_SRC};

    fn soc_from(src: &str) -> Soc {
        Soc::new(&assemble(src).unwrap().words)
    }

    #[test]
    fn simple_program_runs_to_halt() {
        let mut soc = soc_from(
            "
            li r1, 5
            li r2, 0
        loop:
            addi r2, r2, 1
            bne r2, r1, loop
            halt
            ",
        );
        soc.run_until_halt(1000);
        assert!(soc.halted());
        assert_eq!(soc.core.regs[2], 5);
    }

    #[test]
    fn store_and_load_roundtrip_through_bus() {
        let mut soc = soc_from(
            "
            li r1, 0x4000
            li r2, 1234
            sw r2, 0(r1)
            lw r3, 0(r1)
            halt
            ",
        );
        soc.run_until_halt(100);
        assert_eq!(soc.mem_word(0x4000), 1234);
        assert_eq!(soc.core.regs[3], 1234, "load must see the earlier store");
    }

    #[test]
    fn load_costs_a_stall_cycle() {
        // lw stalls the core one extra cycle versus an ALU op (the access
        // resolves two cycles after issue).
        let mut a = soc_from("li r1, 0x4000\nlw r2, 0(r1)\nhalt");
        let mut b = soc_from("li r1, 0x4000\nnop\nhalt");
        a.run_until_halt(100);
        b.run_until_halt(100);
        assert_eq!(a.cycle, b.cycle + 1);
    }

    #[test]
    fn load_data_resolves_before_dependent_instruction() {
        let mut soc = soc_from(
            "
            li r1, 0x4000
            li r2, 21
            sw r2, 0(r1)
            lw r3, 0(r1)
            add r4, r3, r3
            halt
            ",
        );
        soc.run_until_halt(100);
        assert_eq!(soc.core.regs[4], 42);
    }

    /// Full end-to-end security scenario: privileged setup, user-mode
    /// illegal write, violation, trap, isolation.
    #[test]
    fn illegal_user_write_is_blocked_and_trapped() {
        let mut soc = soc_from(
            "
            ; region0: user RWX over [0x0000, 0x5fff]
            li r1, 0x8100
            li r2, 0
            sw r2, 0(r1)
            li r2, 0x5fff
            sw r2, 4(r1)
            li r2, 0xf
            sw r2, 8(r1)
            li r2, 1
            sw r2, 0x30(r1)     ; enable
            li r3, handler
            csrrw r0, tvec, r3
            li r4, user
            csrrw r0, epc, r4
            mret
        user:
            li r5, 0x7000
            li r6, 0xbeef
            sw r6, 0(r5)        ; illegal write
            nop
            nop
            nop
            nop
            halt                 ; should never get here
        handler:
            li r7, 1
            csrrw r0, isolated, r7
            halt
            ",
        );
        soc.run_until_halt(1000);
        assert!(soc.halted());
        assert_eq!(soc.mem_word(0x7000), 0, "write must be blocked");
        assert_eq!(soc.core.isolated, 1, "handler must have isolated");
        assert!(soc.mpu.sticky_violation);
        assert_eq!(soc.mpu.sticky_addr, 0x7000);
    }

    /// The cross-level abstraction check: flipping the latched violation
    /// register at exactly the right cycle lets the illegal write commit
    /// *and* suppresses the trap — the canonical computation-type attack.
    #[test]
    fn flipping_violation_register_defeats_detection() {
        let src = "
            li r1, 0x8100
            li r2, 0
            sw r2, 0(r1)
            li r2, 0x5fff
            sw r2, 4(r1)
            li r2, 0xf
            sw r2, 8(r1)
            li r2, 1
            sw r2, 0x30(r1)
            li r3, handler
            csrrw r0, tvec, r3
            li r4, user
            csrrw r0, epc, r4
            mret
        user:
            li r5, 0x7000
            li r6, 0xbeef
            sw r6, 0(r5)
            nop
            nop
            nop
            nop
            halt
        handler:
            li r7, 1
            csrrw r0, isolated, r7
            halt
            ";
        // Find the cycle where the violation register is first set.
        let mut probe = soc_from(src);
        let mut viol_set_at = None;
        while !probe.halted() {
            let before = probe.mpu.violation;
            probe.step();
            if !before && probe.mpu.violation {
                viol_set_at = Some(probe.cycle);
                break;
            }
        }
        let viol_set_at = viol_set_at.expect("violation must latch");

        // Replay; flip the violation register the moment it latches.
        let mut soc = soc_from(src);
        while soc.cycle < viol_set_at {
            soc.step();
        }
        assert!(soc.mpu.violation);
        soc.mpu.violation = false; // the injected fault
        soc.run_until_halt(1000);
        assert_eq!(soc.mem_word(0x7000), 0xbeef, "illegal write committed");
        assert_eq!(soc.core.isolated, 0, "trap suppressed");
    }

    #[test]
    fn legal_user_write_commits_without_trap() {
        let mut soc = soc_from(
            "
            li r1, 0x8100
            li r2, 0
            sw r2, 0(r1)
            li r2, 0x5fff
            sw r2, 4(r1)
            li r2, 0xf
            sw r2, 8(r1)
            li r2, 1
            sw r2, 0x30(r1)
            li r3, handler
            csrrw r0, tvec, r3
            li r4, user
            csrrw r0, epc, r4
            mret
        user:
            li r5, 0x4000
            li r6, 0x42
            sw r6, 0(r5)
            nop
            nop
            nop
            halt
        handler:
            li r7, 1
            csrrw r0, isolated, r7
            halt
            ",
        );
        soc.run_until_halt(1000);
        assert_eq!(soc.mem_word(0x4000), 0x42);
        assert_eq!(soc.core.isolated, 0);
        assert!(!soc.mpu.sticky_violation);
    }

    #[test]
    fn blocked_load_returns_zero() {
        let mut soc = soc_from(
            "
            li r1, 0x7000
            li r2, 0x5555
            sw r2, 0(r1)        ; privileged store of the secret
            li r3, 0x8100
            li r2, 0
            sw r2, 0(r3)
            li r2, 0x5fff
            sw r2, 4(r3)
            li r2, 0xf
            sw r2, 8(r3)
            li r2, 1
            sw r2, 0x30(r3)
            li r4, handler
            csrrw r0, tvec, r4
            li r4, user
            csrrw r0, epc, r4
            mret
        user:
            li r5, 0x7000
            lw r6, 0(r5)        ; illegal read
            sw r6, 0x4000(r0)   ; would leak it
            nop
            nop
            halt
        handler:
            li r7, 1
            csrrw r0, isolated, r7
            halt
            ",
        );
        soc.run_until_halt(1000);
        assert_eq!(soc.core.isolated, 1);
        assert_ne!(
            soc.mem_word(0x4000),
            0x5555,
            "secret must not reach the user buffer"
        );
    }

    #[test]
    fn privileged_access_everywhere_is_fine() {
        let mut soc = soc_from(
            "
            li r2, 1
            sw r2, 0x8130(r0)   ; enable MPU with no regions
            li r1, 0x7000
            li r2, 7
            sw r2, 0(r1)        ; privileged write outside all regions
            lw r3, 0(r1)
            halt
            ",
        );
        soc.run_until_halt(100);
        assert_eq!(soc.core.regs[3], 7);
        assert!(!soc.mpu.sticky_violation);
    }

    #[test]
    fn user_cannot_reconfigure_the_mpu() {
        let mut soc = soc_from(
            "
            ; region0 covers everything including the cfg window
            li r1, 0x8100
            li r2, 0
            sw r2, 0(r1)
            li r2, 0xffff
            sw r2, 4(r1)
            li r2, 0xf
            sw r2, 8(r1)
            li r2, 1
            sw r2, 0x30(r1)
            li r4, user
            csrrw r0, epc, r4
            mret
        user:
            li r5, 0x8130
            sw r0, 0(r5)        ; try to disable the MPU from user mode
            nop
            nop
            nop
            halt
            ",
        );
        soc.run_until_halt(1000);
        assert!(
            soc.mpu.config.enable,
            "user-mode config write must be ignored by the hardware backstop"
        );
    }

    #[test]
    fn dma_copies_when_bus_is_free() {
        let mut soc = soc_from(&format!(
            "
            li r1, 0x4000
            li r2, 0x1111
            sw r2, 0(r1)
            li r2, 0x2222
            sw r2, 4(r1)
            li r3, {DMA_SRC}
            li r4, 0x4000
            sw r4, 0(r3)
            li r4, 0x4800
            sw r4, {off_dst}(r3)
            li r4, 2
            sw r4, {off_len}(r3)
            li r4, 1
            sw r4, {off_ctrl}(r3)
        wait:
            lw r5, {off_ctrl}(r3)
            bne r5, r0, wait
            halt
            ",
            off_dst = DMA_DST - DMA_SRC,
            off_len = DMA_LEN - DMA_SRC,
            off_ctrl = DMA_CTRL - DMA_SRC,
        ));
        soc.run_until_halt(2000);
        assert!(soc.halted());
        assert_eq!(soc.mem_word(0x4800), 0x1111);
        assert_eq!(soc.mem_word(0x4804), 0x2222);
        assert!(!soc.dma.busy);
    }

    #[test]
    fn dma_writes_into_protected_memory_are_blocked() {
        // MPU on with a user region over [0x4000, 0x4fff]; DMA (always
        // user) tries to write to 0x7000. The trap handler resumes so the
        // privileged core can observe the aftermath.
        let mut soc = soc_from(&format!(
            "
            li r1, 0x8100
            li r2, 0x4000
            sw r2, 0(r1)
            li r2, 0x4fff
            sw r2, 4(r1)
            li r2, 0xf
            sw r2, 8(r1)
            li r2, 1
            sw r2, 0x30(r1)
            li r6, resume
            csrrw r0, tvec, r6
            li r3, {DMA_SRC}
            li r4, 0x4000
            sw r4, 0(r3)
            li r4, 0x7000
            sw r4, {off_dst}(r3)
            li r4, 1
            sw r4, {off_len}(r3)
            li r4, 1
            sw r4, {off_ctrl}(r3)
        wait:
            lw r5, {off_ctrl}(r3)
            bne r5, r0, wait
            halt
        resume:
            mret
            ",
            off_dst = DMA_DST - DMA_SRC,
            off_len = DMA_LEN - DMA_SRC,
            off_ctrl = DMA_CTRL - DMA_SRC,
        ));
        soc.run_until_halt(2000);
        assert_eq!(soc.mem_word(0x7000), 0, "DMA write must be blocked");
        assert!(soc.mpu.sticky_violation);
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let src = "
            li r1, 20
            li r2, 0
        loop:
            addi r2, r2, 1
            sw r2, 0x4000(r0)
            lw r3, 0x4000(r0)
            bne r2, r1, loop
            halt
            ";
        let mut a = soc_from(src);
        for _ in 0..30 {
            a.step();
        }
        let ckpt = a.clone();
        let mut b = ckpt.clone();
        a.run_until_halt(10_000);
        b.run_until_halt(10_000);
        assert_eq!(a, b, "restored run must be cycle-identical");
    }

    #[test]
    fn fingerprint_follows_state_and_detects_divergence() {
        let src = "
            li r1, 20
            li r2, 0
        loop:
            addi r2, r2, 1
            sw r2, 0x4000(r0)
            lw r3, 0x4000(r0)
            bne r2, r1, loop
            halt
            ";
        let mut a = soc_from(src);
        let mut b = soc_from(src);
        for _ in 0..40 {
            assert_eq!(a.arch_fingerprint(), b.arch_fingerprint());
            a.step();
            b.step();
        }
        // Any architectural flip must perturb the fingerprint, and undoing
        // it must restore the exact value.
        let clean = a.arch_fingerprint();
        a.core.regs[2] ^= 1;
        assert_ne!(a.arch_fingerprint(), clean);
        a.core.regs[2] ^= 1;
        assert_eq!(a.arch_fingerprint(), clean);
        a.mpu.violation = !a.mpu.violation;
        assert_ne!(a.arch_fingerprint(), clean);
        a.mpu.violation = !a.mpu.violation;
        a.dma.busy = !a.dma.busy;
        assert_ne!(a.arch_fingerprint(), clean);
    }

    #[test]
    fn cfg_window_reads_back() {
        let mut soc = soc_from(
            "
            li r1, 0x8100
            li r2, 0x1234
            sw r2, 0(r1)
            lw r3, 0(r1)
            halt
            ",
        );
        soc.run_until_halt(100);
        assert_eq!(soc.core.regs[3], 0x1234);
    }

    #[test]
    fn cfg_index_decoding() {
        assert_eq!(cfg_index(0x8100), Some(0));
        assert_eq!(cfg_index(0x8104), Some(1));
        assert_eq!(cfg_index(0x8130), Some(12));
        assert_eq!(cfg_index(0x8134), None);
        assert_eq!(cfg_index(0x80fc), None);
    }
}
